//! Property tests for the sweep determinism invariants.
//!
//! The sweep layer's contract is that *how* a plan executes — cached or
//! uncached, one shard or many, any thread count — never changes a number.
//! These properties drive random small plans through every execution path
//! and compare outcomes **bit for bit** on every field, using the shard
//! codec's canonical encoding (which covers each outcome field exactly)
//! as the comparison key.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use xsched_core::shard::encode_outcome;
use xsched_core::{
    combine_subruns, ArrivalSpec, BalanceMode, CheckpointJournal, CostModel, ExecSpec,
    FaultInjector, FaultPolicy, JournalReplay, MeasurementCache, MplSpec, PolicyKind, RunConfig,
    RunResult, Scenario, ScenarioOutcome, ScenarioResult, ShardResult, SweepExecutor, SweepPlan,
};
use xsched_workload::setup;

/// Build a small random plan from raw draws. Arrival shapes cover the
/// cache-relevant OpenLoad resolution as well as plain closed systems.
fn plan_from(setups: &[u8], mpls: &[u8], arrivals: &[u8], reps: u8, seed_base: u64) -> SweepPlan {
    let rc = RunConfig {
        warmup_txns: 10,
        measured_txns: 60,
        ..Default::default()
    };
    let scenarios: Vec<Scenario> = setups
        .iter()
        .zip(mpls)
        .zip(arrivals)
        .enumerate()
        .map(|(i, ((&s, &m), &a))| {
            let setup_id = [1u32, 2, 5][usize::from(s) % 3];
            let arrivals = match a % 3 {
                0 => ArrivalSpec::Saturated,
                1 => ArrivalSpec::OpenLoad(0.5 + 0.1 * f64::from(a % 4)),
                _ => ArrivalSpec::ClosedThink(0.05),
            };
            Scenario {
                row: format!("row {i}"),
                col: format!("cell {i}"),
                setup: setup(setup_id),
                exec: ExecSpec::Run {
                    mpl: MplSpec::Fixed(u32::from(m % 8) + 1),
                    policy: PolicyKind::Fifo,
                    arrivals,
                },
                rc: rc.clone(),
            }
        })
        .collect();
    SweepPlan::new(scenarios).replicated(usize::from(reps % 2) + 1, seed_base)
}

/// Canonical bitwise key of a result set: every outcome of every scenario
/// in replication order, plus the aggregate means the tables print.
fn bits(results: &[ScenarioResult]) -> Vec<String> {
    results
        .iter()
        .flat_map(|r| {
            r.outcomes
                .iter()
                .map(encode_outcome)
                .chain(std::iter::once(format!(
                    "tput={:016x} rt={:016x}",
                    r.mean("throughput").to_bits(),
                    r.mean("mean_rt").to_bits()
                )))
        })
        .collect()
}

/// The fixed plan the kill-point property resumes: 3 scenarios × 2
/// replication seeds = 6 journaled tasks.
fn kill_plan() -> SweepPlan {
    plan_from(&[0, 1, 2], &[2, 5, 7], &[0, 1, 2], 1, 777_001)
}

/// Baseline for the kill-point property, computed once: the complete
/// checkpoint journal of a full run of [`kill_plan`], plus the bitwise
/// key of the uninterrupted (journal-free) run. Each proptest case then
/// only pays for the *resumed* sweep.
fn kill_baseline() -> &'static (String, Vec<String>) {
    static BASELINE: OnceLock<(String, Vec<String>)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let plan = kill_plan();
        let direct = SweepExecutor::serial().run(&plan);
        let path =
            std::env::temp_dir().join(format!("xsched-props-journal-{}.log", std::process::id()));
        let journal = Arc::new(CheckpointJournal::create(&path).unwrap());
        SweepExecutor::parallel(2)
            .with_journal(Arc::clone(&journal))
            .run(&plan);
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.is_ascii(), "journal records are ASCII by construction");
        (text, bits(&direct))
    })
}

/// Unique-per-case scratch file suffix (proptest may repeat draws).
static KILL_FILE_SEQ: AtomicUsize = AtomicUsize::new(0);

proptest! {
    /// Kill-safety: truncating the checkpoint journal at *any* byte —
    /// every possible SIGKILL point, including mid-record — and resuming
    /// from the remains merges bit-identical to an uninterrupted run.
    #[test]
    fn any_kill_point_in_the_journal_resumes_bit_identically(cut in 0usize..100_000) {
        let (text, direct_bits) = kill_baseline();
        let cut = cut % (text.len() + 1);
        let seq = KILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "xsched-props-kill-{}-{seq}.log",
            std::process::id()
        ));
        std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();
        let replay = Arc::new(JournalReplay::load(&path).unwrap());
        let journal = Arc::new(CheckpointJournal::append(&path).unwrap());
        let resumed = SweepExecutor::parallel(2)
            .with_resume(replay)
            .with_journal(journal)
            .run(&kill_plan());
        std::fs::remove_file(&path).ok();
        prop_assert!(resumed.iter().all(|r| r.failures.is_empty()));
        prop_assert_eq!(&bits(&resumed), direct_bits);
    }

    /// Retry determinism: a cell that survives only through retries is
    /// bit-identical to the same cell in a fault-free run — the retry
    /// count never leaks into the simulation's RNG streams.
    #[test]
    fn retried_cells_are_bit_identical_to_first_try_cells(
        setups in collection::vec(any::<u8>(), 1..3),
        mpls in collection::vec(any::<u8>(), 3..4),
        arrivals in collection::vec(any::<u8>(), 3..4),
        seed_base in 0u64..1_000_000,
        p in 1u32..7,
        threads in 1usize..4,
    ) {
        let plan = plan_from(&setups, &mpls, &arrivals, 0, seed_base);
        let clean = SweepExecutor::serial().run_shard(&plan, 0, 1);
        let policy = FaultPolicy {
            keep_going: true,
            retries: 5,
            injector: Some(FaultInjector {
                p_panic: f64::from(p) / 10.0,
                p_stall: 0.0,
                stall_secs: 0.0,
            }),
            ..Default::default()
        };
        let faulty = SweepExecutor::parallel(threads)
            .with_faults(policy)
            .run_shard(&plan, 0, 1);
        let reference: BTreeMap<usize, String> = clean
            .entries
            .iter()
            .map(|(t, o)| (*t, encode_outcome(o)))
            .collect();
        // Every task is accounted for: survived bit-identically or
        // degraded to a typed failure (p^6 per cell), never dropped.
        prop_assert_eq!(
            faulty.entries.len() + faulty.failures.len(),
            plan.task_count()
        );
        for (t, o) in &faulty.entries {
            prop_assert_eq!(&encode_outcome(o), reference.get(t).unwrap());
        }
    }

    /// Cached execution (the executor's default) is bit-identical to the
    /// cache-free path, for any small plan.
    #[test]
    fn cached_equals_uncached(
        setups in collection::vec(any::<u8>(), 1..3),
        mpls in collection::vec(any::<u8>(), 3..4),
        arrivals in collection::vec(any::<u8>(), 3..4),
        reps in any::<u8>(),
        seed_base in 0u64..1_000_000,
    ) {
        let plan = plan_from(&setups, &mpls, &arrivals, reps, seed_base);
        let cache = MeasurementCache::shared();
        let cached = SweepExecutor::parallel(2)
            .with_cache(cache.clone())
            .run(&plan);
        // Uncached reference: every task through Scenario::run directly.
        let mut entries = Vec::new();
        for (t, (si, seed)) in plan.tasks().into_iter().enumerate() {
            entries.push((t, plan.scenarios[si].run(seed)));
        }
        let uncached: Vec<String> = entries
            .iter()
            .map(|(_, o)| encode_outcome(o))
            .collect();
        let cached_outcomes: Vec<String> = cached
            .iter()
            .flat_map(|r| r.outcomes.iter().map(encode_outcome))
            .collect();
        prop_assert_eq!(cached_outcomes, uncached);
        // The cache only ever *saves* measurements: misses count distinct
        // (setup, rc, seed) capacity keys, never more than one per task.
        prop_assert!(cache.misses() as usize <= plan.task_count());
    }

    /// Any shard partition, merged, is bit-identical to the unsharded
    /// run — including aggregate statistics.
    #[test]
    fn any_shard_partition_merges_to_the_unsharded_run(
        setups in collection::vec(any::<u8>(), 1..3),
        mpls in collection::vec(any::<u8>(), 3..4),
        arrivals in collection::vec(any::<u8>(), 3..4),
        reps in any::<u8>(),
        seed_base in 0u64..1_000_000,
        nshards in 1usize..5,
        threads in 1usize..4,
    ) {
        let plan = plan_from(&setups, &mpls, &arrivals, reps, seed_base);
        let direct = SweepExecutor::parallel(threads).run(&plan);
        let shards: Vec<ShardResult> = (0..nshards)
            .map(|i| SweepExecutor::parallel(threads).run_shard(&plan, i, nshards))
            .collect();
        let merged = ShardResult::merge(&plan, &shards).unwrap();
        prop_assert_eq!(bits(&direct), bits(&merged));
    }

    /// Cost-balanced slicing exactly partitions the task list for *any*
    /// cost model — including adversarial per-bucket scales of zero,
    /// astronomically large, negative, and non-finite values — at any
    /// shard count, and is deterministic in (plan, model).
    #[test]
    fn balanced_shards_partition_tasks_under_any_cost_model(
        setups in collection::vec(any::<u8>(), 1..3),
        mpls in collection::vec(any::<u8>(), 3..5),
        arrivals in collection::vec(any::<u8>(), 3..5),
        reps in any::<u8>(),
        seed_base in 0u64..1_000_000,
        nshards in 1usize..7,
        scale_picks in collection::vec(0usize..6, 0..8),
        default_pick in 0usize..6,
    ) {
        let plan = plan_from(&setups, &mpls, &arrivals, reps, seed_base);
        // Adversarial scales keyed to the buckets the plan actually uses.
        const SCALES: [f64; 6] =
            [0.0, 1.0, 1e300, -5.0, f64::INFINITY, f64::NAN];
        let buckets: Vec<String> =
            plan.scenarios.iter().map(CostModel::bucket).collect();
        let scales: BTreeMap<String, f64> = buckets
            .iter()
            .zip(&scale_picks)
            .map(|(b, &p)| (b.clone(), SCALES[p]))
            .collect();
        let model = CostModel::with_scales(scales, SCALES[default_pick]);

        let slices: Vec<Vec<usize>> = (0..nshards)
            .map(|i| plan.shard_balanced(i, nshards, &model))
            .collect();
        let mut all: Vec<usize> = slices.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..plan.task_count()).collect::<Vec<_>>());
        // Deterministic: re-slicing yields the same partition.
        for (i, s) in slices.iter().enumerate() {
            prop_assert_eq!(s, &plan.shard_balanced(i, nshards, &model));
        }
    }

    /// Cost-balanced shards executed independently and merged are
    /// bit-identical to the unsharded run — balancing moves work between
    /// shards, never numbers.
    #[test]
    fn cost_balanced_shards_merge_to_the_unsharded_run(
        setups in collection::vec(any::<u8>(), 1..3),
        mpls in collection::vec(any::<u8>(), 3..4),
        arrivals in collection::vec(any::<u8>(), 3..4),
        reps in any::<u8>(),
        seed_base in 0u64..1_000_000,
        nshards in 1usize..5,
        threads in 1usize..4,
    ) {
        let plan = plan_from(&setups, &mpls, &arrivals, reps, seed_base);
        let direct = SweepExecutor::parallel(threads).run(&plan);
        let model = Arc::new(CostModel::structural());
        let shards: Vec<ShardResult> = (0..nshards)
            .map(|i| {
                SweepExecutor::parallel(threads)
                    .with_cost_model(Arc::clone(&model))
                    .with_balance(BalanceMode::Cost)
                    .run_shard(&plan, i, nshards)
            })
            .collect();
        let merged = ShardResult::merge(&plan, &shards).unwrap();
        prop_assert_eq!(bits(&direct), bits(&merged));
    }

    /// The wire format round-trips every shard payload exactly, so
    /// cross-process merges see the same bits as in-process ones.
    #[test]
    fn shard_payloads_survive_the_wire(
        setups in collection::vec(any::<u8>(), 1..3),
        mpls in collection::vec(any::<u8>(), 3..4),
        arrivals in collection::vec(any::<u8>(), 3..4),
        seed_base in 0u64..1_000_000,
        nshards in 1usize..4,
    ) {
        let plan = plan_from(&setups, &mpls, &arrivals, 0, seed_base);
        let direct = SweepExecutor::serial().run(&plan);
        let decoded: Vec<ShardResult> = (0..nshards)
            .map(|i| {
                let s = SweepExecutor::serial().run_shard(&plan, i, nshards);
                ShardResult::decode(&s.encode()).unwrap()
            })
            .collect();
        let merged = ShardResult::merge(&plan, &decoded).unwrap();
        prop_assert_eq!(bits(&direct), bits(&merged));
    }

    /// Splitting one steady-state cell into K independently-seeded
    /// batch-means sub-runs and combining them yields a confidence
    /// interval that brackets the single whole-run mean, and conserves
    /// the counting statistics exactly. The test RNG is deterministic
    /// (name-seeded), so every case is a pinned regression rather than a
    /// random draw; the bracket uses the Student-t half-width widened 3×
    /// with a 25%-of-mean floor, so it trips on structural errors in the
    /// combine (wrong scale, wrong weighting, dropped parts) and not on
    /// the expected ~5% miss rate of a literal 95% interval.
    #[test]
    fn subrun_split_cis_bracket_the_single_run_mean(
        k in 2u32..6,
        mpl in 1u32..9,
        arrival in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        // Only cells with a steady state are quantified over: closed
        // shapes (saturated, think-time) are always stationary, and open
        // load is paired with an unlimited MPL so the offered 60% of
        // capacity is actually servable. Open load *behind a tight fixed
        // MPL* can be unstable — the queue and mean RT then grow with run
        // length by design, so a shorter sub-run measures a genuinely
        // different transient and no split estimator can bracket it.
        let (arrivals, mpl_spec) = match arrival {
            0 => (ArrivalSpec::Saturated, MplSpec::Fixed(mpl)),
            1 => (ArrivalSpec::OpenLoad(0.6), MplSpec::Unlimited),
            _ => (ArrivalSpec::ClosedThink(0.05), MplSpec::Fixed(mpl)),
        };
        let scenario = Scenario {
            row: "subrun".to_string(),
            col: "bracket".to_string(),
            setup: setup(1),
            exec: ExecSpec::Run {
                mpl: mpl_spec,
                policy: PolicyKind::Fifo,
                arrivals,
            },
            // Warmup must outlast the closed system's queue ramp: all
            // 100 clients arrive at t = 0, so under a tight MPL the
            // external wait climbs for ~clients completions before the
            // stationary backlog forms. Each sub-run re-warms in full.
            rc: RunConfig {
                warmup_txns: 150,
                measured_txns: 400,
                subruns: k,
                ..Default::default()
            },
        };
        // The whole-cell reference: pre-split semantics (Scenario::run
        // never splits; only the sweep executor expands sub-runs).
        let ScenarioOutcome::Run(single) = scenario.run(seed) else {
            panic!("a Run scenario yields a Run outcome");
        };
        // The same expansion the executor performs, combined in k order.
        let parts: Vec<RunResult> = (0..k)
            .map(|i| scenario.run_subrun(seed, i, k, None).0)
            .collect();
        let combined = combine_subruns(&parts);

        // Counting statistics are conserved exactly: each sub-run
        // measures ⌈measured/K⌉ completions, and the combine sums.
        let per_sub = 400u64.div_ceil(u64::from(k));
        prop_assert_eq!(
            combined.count_high + combined.count_low,
            per_sub * u64::from(k)
        );
        prop_assert_eq!(
            combined.metrics.commits,
            parts.iter().map(|p| p.metrics.commits).sum::<u64>()
        );

        // The bracket. K−1 degrees of freedom makes the t half-width
        // wide already; 3× covers far beyond 99.9%.
        let hw = combined.rt_bm_half_width;
        prop_assert!(hw.is_finite() && hw > 0.0, "half-width {hw} for k={k}");
        let band = (3.0 * hw).max(0.25 * single.mean_rt);
        prop_assert!(
            (combined.mean_rt - single.mean_rt).abs() <= band,
            "combined {} vs single {} exceeds band {} (hw {hw}, k={k}, mpl={mpl}, seed={seed})",
            combined.mean_rt,
            single.mean_rt,
            band
        );
        // Throughput agrees to the same coarse tolerance.
        prop_assert!(single.throughput > 0.0);
        let rel = (combined.throughput - single.throughput).abs() / single.throughput;
        prop_assert!(rel < 0.25, "throughput off by {rel} (k={k}, mpl={mpl})");
    }
}
