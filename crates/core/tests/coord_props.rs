//! Property tests for the coordinator wire codec.
//!
//! The coordinator reads lines from a TCP socket, so its decoders face
//! genuinely untrusted bytes: truncated frames (the wire-fault injector
//! cuts lines in half by design), corrupted payloads, or arbitrary
//! garbage from a stray client. The contract these properties pin:
//!
//! * every frame the encoder can produce decodes back bit-exactly
//!   (canonical re-encode equality, covering each field);
//! * malformed input of any shape yields a typed `DecodeError` carrying
//!   the offending text — **never** a panic;
//! * [`serve_line`] answers every possible input line, valid or not,
//!   with a well-formed response line.

use proptest::prelude::*;
use std::sync::OnceLock;
use xsched_core::shard::DecodeError;
use xsched_core::{
    serve_line, CoordConfig, Coordinator, Request, Response, RunConfig, Scenario, ScenarioOutcome,
    SweepPlan, TaskError, TaskFailure, TaskOutcome,
};
use xsched_workload::setup;

/// One real simulated outcome per index (memoized — the codec property
/// needs genuine payload shapes, not thousands of distinct simulations).
fn real_outcome(pick: u64) -> ScenarioOutcome {
    static CACHE: OnceLock<Vec<ScenarioOutcome>> = OnceLock::new();
    let pool = CACHE.get_or_init(|| {
        let rc = RunConfig {
            warmup_txns: 10,
            measured_txns: 60,
            ..Default::default()
        };
        (0..4)
            .map(|i| Scenario::tput("p", setup(1), 1 + i, rc.clone()).run(42 + u64::from(i)))
            .collect()
    });
    pool[(pick % pool.len() as u64) as usize].clone()
}

/// Map raw byte draws onto a worker name the line grammar allows: one
/// non-empty token without whitespace.
fn worker_from(draws: &[u8]) -> String {
    const CHARS: &[u8] = b"abcXYZ019_.:-";
    let name: String = draws
        .iter()
        .map(|&b| CHARS[usize::from(b) % CHARS.len()] as char)
        .collect();
    if name.is_empty() {
        "w".to_string()
    } else {
        name
    }
}

/// Map raw draws onto a task outcome: real simulated successes and typed
/// failures with arbitrary printable detail text (exercising escaping).
fn outcome_from(kind: u8, pick: u64, detail_draws: &[u8]) -> TaskOutcome {
    let detail: String = detail_draws
        .iter()
        .filter_map(|&b| {
            // Printable ASCII plus the escapes the codec must handle.
            let c = (b % 0x60) + 0x20;
            char::from_u32(u32::from(c))
        })
        .collect();
    match kind % 4 {
        0 | 1 => TaskOutcome::Ok(real_outcome(pick)),
        2 => TaskOutcome::Failed(TaskFailure {
            error: TaskError::Panic(detail),
            attempts: (kind as u32 % 5) + 1,
        }),
        _ => TaskOutcome::Failed(TaskFailure {
            error: if kind.is_multiple_of(2) {
                TaskError::Timeout(f64::from(kind) * 0.25)
            } else {
                TaskError::Injected(detail)
            },
            attempts: (pick as u32 % 9) + 1,
        }),
    }
}

/// Map raw draws onto a request frame, covering every variant.
fn request_from(kind: u8, worker_draws: &[u8], a: u64, b: u64, detail_draws: &[u8]) -> Request {
    let worker = worker_from(worker_draws);
    let epoch = a >> 32;
    match kind % 5 {
        0 => Request::Hello {
            worker,
            epoch,
            fingerprint: b,
            task_count: (a % 10_000) as usize,
        },
        1 => Request::Claim { worker, epoch },
        2 => Request::Heartbeat {
            worker,
            epoch,
            task: (b % 10_000) as usize,
        },
        3 => Request::Record {
            worker,
            epoch,
            task: (b % 10_000) as usize,
            outcome: outcome_from(kind.wrapping_add(a as u8), b, detail_draws),
        },
        _ => Request::Bye { worker, epoch },
    }
}

/// Map raw draws onto a response frame, covering every variant.
fn response_from(kind: u8, a: u64, b: u64, msg_draws: &[u8]) -> Response {
    match kind % 6 {
        0 => Response::Welcome {
            epoch: a >> 32,
            fingerprint: b,
            // Arbitrary bit patterns — NaNs and infinities must
            // round-trip too; floats travel as IEEE bits.
            lease_secs: f64::from_bits(a ^ b),
            task_count: (a % 10_000) as usize,
        },
        1 => Response::Lease {
            task: (b % 10_000) as usize,
        },
        2 => Response::Wait,
        3 => Response::Done,
        4 => Response::Ok,
        _ => Response::Error {
            msg: msg_draws
                .iter()
                .filter_map(|&m| char::from_u32(u32::from((m % 0x60) + 0x20)))
                .collect(),
        },
    }
}

/// Arbitrary ASCII (including control characters) from raw draws —
/// decoder fuzz input.
fn garbage_from(draws: &[u8]) -> String {
    draws.iter().map(|&b| (b & 0x7f) as char).collect()
}

/// Cut a string at (or before) byte `cut`, respecting char boundaries.
fn truncate_at(line: &str, cut: usize) -> &str {
    let mut cut = cut.min(line.len());
    while cut > 0 && !line.is_char_boundary(cut) {
        cut -= 1;
    }
    &line[..cut]
}

/// A coordinator with a couple of leases outstanding, for serve_line
/// fuzzing against live state.
fn busy_coordinator() -> Coordinator {
    let rc = RunConfig {
        warmup_txns: 10,
        measured_txns: 60,
        ..Default::default()
    };
    let plan = SweepPlan::new(vec![Scenario::tput("r", setup(1), 1, rc)]).replicated(4, 7);
    let mut coord = Coordinator::new(0, &plan, CoordConfig { lease_secs: 5.0 });
    let claim = Request::Claim {
        worker: "w0".into(),
        epoch: 0,
    };
    coord.handle(&claim, 0.0);
    coord.handle(&claim, 0.1);
    coord
}

fn assert_typed(err: &DecodeError, input: &str) {
    assert!(
        !err.msg.is_empty(),
        "error for `{input}` must carry a message"
    );
    assert!(
        !err.to_string().is_empty(),
        "error for `{input}` must render"
    );
}

proptest! {
    /// Every request frame round-trips bit-exactly: decode(encode(r))
    /// re-encodes to the identical line (the canonical form covers every
    /// field, including float bit patterns inside outcome payloads).
    #[test]
    fn request_frames_round_trip(
        kind in 0u8..5,
        worker in collection::vec(0u8..255, 1..24),
        a in any::<u64>(),
        b in any::<u64>(),
        detail in collection::vec(0u8..255, 0..40),
    ) {
        let req = request_from(kind, &worker, a, b, &detail);
        let line = req.encode();
        let back = Request::decode(&line).expect("encoded frame must decode");
        prop_assert_eq!(back.encode(), line);
    }

    /// Every response frame round-trips bit-exactly.
    #[test]
    fn response_frames_round_trip(
        kind in 0u8..6,
        a in any::<u64>(),
        b in any::<u64>(),
        msg in collection::vec(0u8..255, 0..60),
    ) {
        let resp = response_from(kind, a, b, &msg);
        let line = resp.encode();
        let back = Response::decode(&line).expect("encoded frame must decode");
        prop_assert_eq!(back.encode(), line);
    }

    /// Truncating a valid request at any byte never panics: the decoder
    /// returns either a typed error or a (shorter) valid frame — e.g.
    /// `claim w0 10` cut to `claim w0 1` still parses, by design.
    #[test]
    fn truncated_requests_never_panic(
        kind in 0u8..5,
        worker in collection::vec(0u8..255, 1..24),
        a in any::<u64>(),
        b in any::<u64>(),
        cut in 0usize..240,
    ) {
        let line = request_from(kind, &worker, a, b, b"detail text").encode();
        let cut_line = truncate_at(&line, cut);
        match Request::decode(cut_line) {
            Ok(shorter) => drop(shorter.encode()),
            Err(e) => assert_typed(&e, cut_line),
        }
    }

    /// Truncated responses never panic either (the worker-side decoder
    /// faces a coordinator dying mid-write).
    #[test]
    fn truncated_responses_never_panic(
        kind in 0u8..6,
        a in any::<u64>(),
        b in any::<u64>(),
        cut in 0usize..120,
    ) {
        let line = response_from(kind, a, b, b"message text").encode();
        let cut_line = truncate_at(&line, cut);
        match Response::decode(cut_line) {
            Ok(shorter) => drop(shorter.encode()),
            Err(e) => assert_typed(&e, cut_line),
        }
    }

    /// Arbitrary ASCII garbage (control characters included) decodes to
    /// a typed error (or, for the rare string that happens to be a
    /// frame, a valid one) — never a panic, on either decoder.
    #[test]
    fn garbage_decodes_to_typed_errors(draws in collection::vec(0u8..255, 0..120)) {
        let junk = garbage_from(&draws);
        match Request::decode(&junk) {
            Ok(req) => drop(req.encode()),
            Err(e) => assert_typed(&e, &junk),
        }
        match Response::decode(&junk) {
            Ok(resp) => drop(resp.encode()),
            Err(e) => assert_typed(&e, &junk),
        }
    }

    /// Corrupting one byte of a valid frame never panics the decoder.
    #[test]
    fn single_byte_corruption_never_panics(
        kind in 0u8..5,
        worker in collection::vec(0u8..255, 1..24),
        a in any::<u64>(),
        b in any::<u64>(),
        pos in any::<u64>(),
        byte in 0x20u8..0x7f,
    ) {
        let mut line = request_from(kind, &worker, a, b, b"x y z").encode().into_bytes();
        let pos = (pos % line.len() as u64) as usize;
        line[pos] = byte;
        let corrupted = String::from_utf8(line).expect("ascii stays ascii");
        match Request::decode(&corrupted) {
            Ok(r) => drop(r.encode()),
            Err(e) => assert_typed(&e, &corrupted),
        }
    }

    /// The server loop answers *every* line — valid frames, truncations,
    /// garbage — with a well-formed response that decodes. This is the
    /// property that makes the wire-fault injector's truncate mode safe.
    #[test]
    fn serve_line_always_answers_well_formed(
        draws in collection::vec(0u8..255, 0..120),
        now in 0.0f64..100.0,
    ) {
        let junk = garbage_from(&draws);
        let mut coord = busy_coordinator();
        let answer = serve_line(&mut coord, &junk, now);
        prop_assert!(
            Response::decode(&answer).is_ok(),
            "serve_line answered unparseable `{}` to `{}`", answer, junk
        );
    }
}
