//! Sweep planning and parallel execution.
//!
//! A [`SweepPlan`] is a list of [`Scenario`]s crossed with replication
//! seeds; the [`SweepExecutor`] fans the resulting `(scenario, seed)`
//! tasks across OS threads. Because every task is a pure function of its
//! inputs (see [`Scenario::run`]) and results land in slots indexed by
//! task id, the output is **bit-identical** regardless of thread count or
//! scheduling order — parallelism buys wall-clock time, never changes a
//! number. Replications of one scenario are aggregated into a
//! [`Replications`] accumulator so reports can print Student-t confidence
//! intervals next to every mean.

use crate::scenario::{Scenario, ScenarioOutcome};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use xsched_sim::{ConfidenceInterval, Replications};

/// Scenarios × replication seeds: the unit of execution.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPlan {
    /// The experiment cells.
    pub scenarios: Vec<Scenario>,
    /// Explicit replication seeds: every scenario runs once per seed, and
    /// sharing the list across scenarios keeps cross-scenario comparisons
    /// paired (common random numbers). **Empty** means each scenario runs
    /// once with its own configured `rc.seed`.
    pub seeds: Vec<u64>,
}

impl SweepPlan {
    /// A plan running each scenario once, with each scenario's own
    /// configured seed.
    pub fn new(scenarios: Vec<Scenario>) -> SweepPlan {
        SweepPlan {
            scenarios,
            seeds: Vec::new(),
        }
    }

    /// Replace the seed list (empty = revert to per-scenario seeds).
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> SweepPlan {
        self.seeds = seeds;
        self
    }

    /// `n` replications seeded `base, base+1, ...` — distinct consecutive
    /// seeds are independent because every consumer stream hashes
    /// `(seed, label)` through SplitMix64.
    pub fn replicated(self, n: usize, base: u64) -> SweepPlan {
        assert!(n > 0, "a sweep needs at least one replication");
        let seeds = (0..n as u64).map(|i| base.wrapping_add(i)).collect();
        self.with_seeds(seeds)
    }

    /// The `(scenario index, seed)` tasks this plan expands to.
    fn tasks(&self) -> Vec<(usize, u64)> {
        if self.seeds.is_empty() {
            self.scenarios
                .iter()
                .enumerate()
                .map(|(si, s)| (si, s.rc.seed))
                .collect()
        } else {
            self.scenarios
                .iter()
                .enumerate()
                .flat_map(|(si, _)| self.seeds.iter().map(move |&seed| (si, seed)))
                .collect()
        }
    }

    /// Number of `(scenario, seed)` tasks this plan expands to.
    pub fn task_count(&self) -> usize {
        self.scenarios.len() * self.seeds.len().max(1)
    }

    /// True when the plan has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// All replications of one scenario, plus aggregate statistics.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that produced these outcomes.
    pub scenario: Scenario,
    /// One outcome per plan seed, in seed order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Per-metric aggregates over the replications.
    pub reps: Replications,
}

impl ScenarioResult {
    /// The first replication's outcome (the representative run when the
    /// caller only wants point values).
    pub fn first(&self) -> &ScenarioOutcome {
        &self.outcomes[0]
    }

    /// Mean of a named metric over replications.
    pub fn mean(&self, metric: &str) -> f64 {
        self.reps.mean(metric)
    }

    /// 95% Student-t confidence interval for a named metric.
    pub fn ci95(&self, metric: &str) -> ConfidenceInterval {
        self.reps.ci(metric, 0.95)
    }
}

/// Fans a [`SweepPlan`]'s tasks across OS threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepExecutor {
    threads: usize,
}

impl SweepExecutor {
    /// Run everything on the calling thread, in plan order.
    pub fn serial() -> SweepExecutor {
        SweepExecutor { threads: 1 }
    }

    /// Use `threads` workers; `0` means one per available core.
    pub fn parallel(threads: usize) -> SweepExecutor {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        SweepExecutor { threads }
    }

    /// Worker count this executor will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute the plan and aggregate replications per scenario.
    ///
    /// Tasks are claimed from a shared counter and their outcomes stored
    /// by task index, so the assembled results — and every float in them —
    /// are identical whether `threads` is 1 or 64.
    pub fn run(&self, plan: &SweepPlan) -> Vec<ScenarioResult> {
        let tasks = plan.tasks();

        let slots: Vec<Mutex<Option<ScenarioOutcome>>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();

        if self.threads <= 1 || tasks.len() <= 1 {
            for (t, slot) in tasks.iter().zip(&slots) {
                let (si, seed) = *t;
                *slot.lock().unwrap() = Some(plan.scenarios[si].run(seed));
            }
        } else {
            let next = AtomicUsize::new(0);
            let workers = self.threads.min(tasks.len());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(si, seed)) = tasks.get(i) else {
                            break;
                        };
                        let outcome = plan.scenarios[si].run(seed);
                        *slots[i].lock().unwrap() = Some(outcome);
                    });
                }
            });
        }

        let mut outcomes: Vec<Vec<ScenarioOutcome>> =
            plan.scenarios.iter().map(|_| Vec::new()).collect();
        for (&(si, _), slot) in tasks.iter().zip(slots) {
            let outcome = slot
                .into_inner()
                .unwrap()
                .expect("every sweep task produces an outcome");
            outcomes[si].push(outcome);
        }

        plan.scenarios
            .iter()
            .zip(outcomes)
            .map(|(scenario, outcomes)| {
                let mut reps = Replications::new();
                for o in &outcomes {
                    for (k, v) in o.metrics() {
                        reps.push(k, v);
                    }
                }
                ScenarioResult {
                    scenario: scenario.clone(),
                    outcomes,
                    reps,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::RunConfig;
    use xsched_workload::setup;

    fn quick_plan() -> SweepPlan {
        let rc = RunConfig {
            warmup_txns: 50,
            measured_txns: 250,
            ..Default::default()
        };
        let scenarios = [1u32, 3, 7]
            .iter()
            .map(|&m| Scenario::tput("s1", setup(1), m, rc.clone()))
            .collect();
        SweepPlan::new(scenarios).replicated(3, 42)
    }

    /// The determinism regression test: parallel execution must be
    /// bit-identical to serial for the same `(scenario, seed)` grid.
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let plan = quick_plan();
        let serial = SweepExecutor::serial().run(&plan);
        let parallel = SweepExecutor::parallel(4).run(&plan);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.outcomes.len(), p.outcomes.len());
            for (a, b) in s.outcomes.iter().zip(&p.outcomes) {
                let (a, b) = (a.as_run().unwrap(), b.as_run().unwrap());
                assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
                assert_eq!(a.mean_rt.to_bits(), b.mean_rt.to_bits());
                assert_eq!(a.p95_rt.to_bits(), b.p95_rt.to_bits());
                assert_eq!(a.mean_lock_wait.to_bits(), b.mean_lock_wait.to_bits());
            }
            assert_eq!(
                s.mean("throughput").to_bits(),
                p.mean("throughput").to_bits()
            );
        }
    }

    #[test]
    fn replications_produce_finite_confidence_intervals() {
        let results = SweepExecutor::parallel(0).run(&quick_plan());
        for r in &results {
            assert_eq!(r.outcomes.len(), 3);
            let ci = r.ci95("throughput");
            assert!(ci.mean > 0.0);
            assert!(ci.half_width.is_finite(), "3 reps give a finite t CI");
        }
    }

    #[test]
    fn plan_expansion_counts_tasks() {
        let plan = quick_plan();
        assert_eq!(plan.task_count(), 9);
        assert!(!plan.is_empty());
        assert_eq!(plan.seeds, vec![42, 43, 44]);
    }

    #[test]
    fn empty_seed_list_uses_each_scenarios_own_seed() {
        let mut plan = quick_plan().with_seeds(vec![]);
        plan.scenarios[1].rc.seed = 7;
        assert_eq!(plan.task_count(), 3);
        let results = SweepExecutor::serial().run(&plan);
        // Scenario 1 ran under its own configured seed, not scenario 0's.
        let own = plan.scenarios[1].run(7);
        assert_eq!(
            results[1].first().as_run().unwrap().throughput.to_bits(),
            own.as_run().unwrap().throughput.to_bits()
        );
        // And differently-seeded scenarios really saw different streams.
        let other = plan.scenarios[1].run(plan.scenarios[0].rc.seed);
        assert_ne!(
            results[1].first().as_run().unwrap().throughput.to_bits(),
            other.as_run().unwrap().throughput.to_bits()
        );
    }
}
