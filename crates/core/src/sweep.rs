//! Sweep planning and parallel execution.
//!
//! A [`SweepPlan`] is a list of [`Scenario`]s crossed with replication
//! seeds; the [`SweepExecutor`] fans the resulting `(scenario, seed)`
//! tasks across OS threads. Because every task is a pure function of its
//! inputs (see [`Scenario::run`]) and results land in slots indexed by
//! task id, the output is **bit-identical** regardless of thread count or
//! scheduling order — parallelism buys wall-clock time, never changes a
//! number. Replications of one scenario are aggregated into a
//! [`Replications`] accumulator so reports can print Student-t confidence
//! intervals next to every mean.

use crate::cache::MeasurementCache;
use crate::cost::CostModel;
use crate::driver::{combine_subruns, RunResult};
use crate::fault::{
    classify_panic, relock, FaultPolicy, InjectedFault, InjectedPanic, TaskError, TaskFailure,
    TaskOutcome,
};
use crate::journal::{CheckpointJournal, JournalReplay};
use crate::observe::SweepObs;
use crate::scenario::{Scenario, ScenarioOutcome, UnitCost, UnitOutcome};
use crate::shard::ShardResult;
use serde::Serialize;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use xsched_obs::TraceEvent;
use xsched_sim::{ConfidenceInterval, Replications};

/// How a sweep's task grid is sliced into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalanceMode {
    /// Static striding: shard `i` of `n` takes tasks `i, i+n, i+2n, …`.
    /// Balanced only when neighbouring cells cost about the same.
    #[default]
    Stride,
    /// Cost-balanced LPT slices from [`SweepPlan::shard_balanced`], using
    /// the executor's [`CostModel`].
    Cost,
}

/// Scenarios × replication seeds: the unit of execution.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPlan {
    /// The experiment cells.
    pub scenarios: Vec<Scenario>,
    /// Explicit replication seeds: every scenario runs once per seed, and
    /// sharing the list across scenarios keeps cross-scenario comparisons
    /// paired (common random numbers). **Empty** means each scenario runs
    /// once with its own configured `rc.seed`.
    pub seeds: Vec<u64>,
}

impl SweepPlan {
    /// A plan running each scenario once, with each scenario's own
    /// configured seed.
    pub fn new(scenarios: Vec<Scenario>) -> SweepPlan {
        SweepPlan {
            scenarios,
            seeds: Vec::new(),
        }
    }

    /// Replace the seed list (empty = revert to per-scenario seeds).
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> SweepPlan {
        self.seeds = seeds;
        self
    }

    /// `n` replications seeded `base, base+1, ...` — distinct consecutive
    /// seeds are independent because every consumer stream hashes
    /// `(seed, label)` through SplitMix64.
    pub fn replicated(self, n: usize, base: u64) -> SweepPlan {
        assert!(n > 0, "a sweep needs at least one replication");
        let seeds = (0..n as u64).map(|i| base.wrapping_add(i)).collect();
        self.with_seeds(seeds)
    }

    /// The `(scenario index, seed)` tasks this plan expands to, in the
    /// canonical order every executor and shard uses: row-major over
    /// scenarios × seeds. Task *index* in this list is the unit of
    /// sharding and result placement.
    pub fn tasks(&self) -> Vec<(usize, u64)> {
        if self.seeds.is_empty() {
            self.scenarios
                .iter()
                .enumerate()
                .map(|(si, s)| (si, s.rc.seed))
                .collect()
        } else {
            self.scenarios
                .iter()
                .enumerate()
                .flat_map(|(si, _)| self.seeds.iter().map(move |&seed| (si, seed)))
                .collect()
        }
    }

    /// Number of `(scenario, seed)` tasks this plan expands to — by
    /// definition `tasks().len()`, so the empty-seeds rule lives in one
    /// place.
    pub fn task_count(&self) -> usize {
        self.tasks().len()
    }

    /// The task indices shard `index` of `of` executes: the strided slice
    /// `index, index + of, index + 2·of, …`, which balances load when
    /// neighbouring grid cells have similar cost.
    pub fn shard(&self, index: usize, of: usize) -> Vec<usize> {
        assert!(of > 0, "a sweep splits into at least one shard");
        assert!(index < of, "shard index {index} out of range for {of}");
        (index..self.task_count()).step_by(of).collect()
    }

    /// The task indices shard `index` of `of` executes under
    /// **cost-balanced** slicing: greedy LPT assignment — tasks in
    /// predicted-cost-descending order, each to the shard whose load
    /// after taking it is lowest. The assignment is *capacity-aware*:
    /// tasks sharing a [`CostModel::capacity_group`] amortize one
    /// reference run per shard through the plan cache, so the group's
    /// [`CostModel::capacity_cost`] is charged only for the first member
    /// a shard receives — which both predicts real cost correctly and
    /// nudges cache-mates onto the same shard.
    ///
    /// Deterministic in `(plan, model)`: ties in cost break by task index
    /// and ties in load by shard task count then shard index, so every
    /// process slicing the same plan with the same model computes the
    /// same partition. For *any* model (zero, huge, or degenerate costs)
    /// the `of` slices exactly partition [`SweepPlan::tasks`] — the
    /// property tests pin this.
    pub fn shard_balanced(&self, index: usize, of: usize, model: &CostModel) -> Vec<usize> {
        assert!(of > 0, "a sweep splits into at least one shard");
        assert!(index < of, "shard index {index} out of range for {of}");
        let tasks = self.tasks();
        let costs: Vec<f64> = tasks
            .iter()
            .map(|&(si, _)| model.predict(&self.scenarios[si]))
            .collect();
        let capacity: Vec<Option<(String, f64)>> = tasks
            .iter()
            .map(|&(si, seed)| {
                let scenario = &self.scenarios[si];
                CostModel::capacity_group(scenario, seed)
                    .map(|group| (group, model.capacity_cost(scenario)))
            })
            .collect();
        // Order by the cost of running the task on a shard that has
        // nothing yet (run + its reference), descending.
        let full = |t: usize| costs[t] + capacity[t].as_ref().map_or(0.0, |(_, c)| *c);
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by(|&a, &b| full(b).total_cmp(&full(a)).then(a.cmp(&b)));

        let mut load = vec![0.0f64; of];
        let mut groups: Vec<std::collections::BTreeSet<&str>> = vec![Default::default(); of];
        let mut slices: Vec<Vec<usize>> = vec![Vec::new(); of];
        for t in order {
            // Marginal cost on shard s: the reference is free if s
            // already holds a group-mate.
            let marginal = |s: usize| {
                costs[t]
                    + match &capacity[t] {
                        Some((group, c)) if !groups[s].contains(group.as_str()) => *c,
                        _ => 0.0,
                    }
            };
            let s = (0..of)
                .min_by(|&a, &b| {
                    (load[a] + marginal(a))
                        .total_cmp(&(load[b] + marginal(b)))
                        .then(slices[a].len().cmp(&slices[b].len()))
                        .then(a.cmp(&b))
                })
                .expect("at least one shard");
            // `predict`/`capacity_cost` are finite and non-negative, so
            // loads stay sane for comparison whatever the model.
            load[s] += marginal(s);
            if let Some((group, _)) = &capacity[t] {
                groups[s].insert(group.as_str());
            }
            slices[s].push(t);
        }
        let mut mine = std::mem::take(&mut slices[index]);
        mine.sort_unstable();
        mine
    }

    /// Order-sensitive fingerprint of everything execution depends on
    /// (scenarios and seed list). Shard payloads carry it so a merge can
    /// refuse results produced from a different plan.
    ///
    /// The hash covers the Debug rendering, which is platform-independent
    /// but only guaranteed stable for binaries built by the *same Rust
    /// toolchain* — build the shard and merge binaries from the same
    /// commit and toolchain (a mismatch fails safe: the merge refuses).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the Debug rendering: every field of every scenario
        // participates, and the rendering is stable across platforms.
        let text = format!("{:?}|{:?}", self.scenarios, self.seeds);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// True when the plan has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// All replications of one scenario, plus aggregate statistics.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that produced these outcomes.
    pub scenario: Scenario,
    /// One outcome per *successful* plan seed, in seed order. Without
    /// fault tolerance engaged this is every seed.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Failure records for replications that failed every attempt under
    /// keep-going mode, in seed order. Empty on fail-fast runs (those
    /// abort instead).
    pub failures: Vec<TaskFailure>,
    /// Per-metric aggregates over the successful replications.
    pub reps: Replications,
}

impl ScenarioResult {
    /// The first replication's outcome (the representative run when the
    /// caller only wants point values).
    pub fn first(&self) -> &ScenarioOutcome {
        &self.outcomes[0]
    }

    /// Mean of a named metric over replications.
    pub fn mean(&self, metric: &str) -> f64 {
        self.reps.mean(metric)
    }

    /// 95% Student-t confidence interval for a named metric.
    pub fn ci95(&self, metric: &str) -> ConfidenceInterval {
        self.reps.ci(metric, 0.95)
    }
}

/// Fans a [`SweepPlan`]'s tasks across OS threads.
#[derive(Debug, Clone)]
pub struct SweepExecutor {
    threads: usize,
    cache: Option<Arc<MeasurementCache>>,
    cost_model: Arc<CostModel>,
    balance: BalanceMode,
    obs: Option<Arc<SweepObs>>,
    progress: bool,
    faults: FaultPolicy,
    journal: Option<Arc<CheckpointJournal>>,
    resume: Option<Arc<JournalReplay>>,
}

impl SweepExecutor {
    /// Run everything on the calling thread, in plan order.
    pub fn serial() -> SweepExecutor {
        SweepExecutor {
            threads: 1,
            cache: None,
            cost_model: Arc::new(CostModel::structural()),
            balance: BalanceMode::Stride,
            obs: None,
            progress: false,
            faults: FaultPolicy::default(),
            journal: None,
            resume: None,
        }
    }

    /// Use `threads` workers; `0` means one per available core.
    pub fn parallel(threads: usize) -> SweepExecutor {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        SweepExecutor {
            threads,
            ..SweepExecutor::serial()
        }
    }

    /// Share (and expose) the measurement cache across runs instead of
    /// creating a fresh one per [`SweepExecutor::run`] — for inspecting
    /// hit/miss counters or amortizing capacity runs across sweeps of the
    /// same setups.
    pub fn with_cache(mut self, cache: Arc<MeasurementCache>) -> SweepExecutor {
        self.cache = Some(cache);
        self
    }

    /// Replace the cost model (default: [`CostModel::structural`]). The
    /// model orders in-process task claiming (longest cells start first)
    /// and defines the slices under [`BalanceMode::Cost`]; it never
    /// affects result bytes.
    pub fn with_cost_model(mut self, model: Arc<CostModel>) -> SweepExecutor {
        self.cost_model = model;
        self
    }

    /// Choose how [`SweepExecutor::run_shard`] slices the task grid
    /// (default: static striding).
    pub fn with_balance(mut self, balance: BalanceMode) -> SweepExecutor {
        self.balance = balance;
        self
    }

    /// Record execution telemetry (task counts per worker, cache
    /// hits/misses, predicted-vs-actual shard cost, per-task seconds,
    /// controller series) into a shared [`SweepObs`]. Observational
    /// only: result bytes never change.
    pub fn with_obs(mut self, obs: Arc<SweepObs>) -> SweepExecutor {
        self.obs = Some(obs);
        self
    }

    /// Print a per-task completion ticker to stderr while the sweep runs
    /// (stdout — the tables — is untouched).
    pub fn with_progress(mut self, progress: bool) -> SweepExecutor {
        self.progress = progress;
        self
    }

    /// Engage fault tolerance: per-unit panic isolation, deterministic
    /// retry with backoff, an optional watchdog deadline, keep-going
    /// degradation and/or deterministic fault injection (see
    /// [`FaultPolicy`]). The default policy is inactive and the executor
    /// then runs its exact legacy path — no `catch_unwind`, no monitor
    /// thread — so the fault-tolerance-disabled hot path stays inside
    /// the bench regression band.
    ///
    /// Determinism: tasks re-run under their unchanged scenario seed, so
    /// any outcome that eventually succeeds is bit-identical to a
    /// first-try success whatever the retry count.
    pub fn with_faults(mut self, faults: FaultPolicy) -> SweepExecutor {
        self.faults = faults;
        self
    }

    /// Durably record every completed task outcome into `journal` (one
    /// fsync'd append per task) so a killed sweep can resume. The
    /// executor writes the plan's header itself at the start of each
    /// [`SweepExecutor::run_shard`].
    pub fn with_journal(mut self, journal: Arc<CheckpointJournal>) -> SweepExecutor {
        self.journal = Some(journal);
        self
    }

    /// Skip tasks whose outcome `replay` already holds (matched by plan
    /// fingerprint + task index), splicing the journaled outcomes into
    /// their slots — the merge is byte-identical to an uninterrupted run
    /// because journaled outcomes travel through the same bit-exact
    /// codec as shard payloads. Resumed tasks contribute no timing
    /// telemetry (they cost no wall-clock this run).
    pub fn with_resume(mut self, replay: Arc<JournalReplay>) -> SweepExecutor {
        self.resume = Some(replay);
        self
    }

    /// Worker count this executor will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute the plan and aggregate replications per scenario.
    ///
    /// Tasks are claimed from a shared counter and their outcomes stored
    /// by task index, so the assembled results — and every float in them —
    /// are identical whether `threads` is 1 or 64. Implemented as the
    /// degenerate sharded run (one shard covering everything) aggregated
    /// through the same `assemble` path a merge uses, so sharded and
    /// unsharded execution cannot drift apart (the property tests in
    /// `tests/props.rs` additionally pin `merge(shards) ≡ run` bitwise).
    pub fn run(&self, plan: &SweepPlan) -> Vec<ScenarioResult> {
        let full = self.run_shard(plan, 0, 1);
        assemble(plan, full.entries, full.failures)
    }

    /// Execute shard `index` of `of` — the strided slice
    /// [`SweepPlan::shard`] or, under [`BalanceMode::Cost`], the
    /// LPT-balanced slice [`SweepPlan::shard_balanced`] — and return its
    /// slot-indexed outcomes plus per-task wall-clock timings.
    ///
    /// Shards are independent: split a plan across processes or hosts,
    /// ship each [`ShardResult`] back (see [`ShardResult::encode`]), and
    /// [`ShardResult::merge`] reassembles the full sweep bit-identically
    /// to an unsharded run. Within the process, workers claim tasks in
    /// predicted-cost-descending order so the longest cells start first —
    /// outcomes land in slots indexed by task id, so claim order (like
    /// thread count) never changes a result byte.
    pub fn run_shard(&self, plan: &SweepPlan, index: usize, of: usize) -> ShardResult {
        let mine = match self.balance {
            BalanceMode::Stride => plan.shard(index, of),
            BalanceMode::Cost => plan.shard_balanced(index, of, &self.cost_model),
        };
        self.run_task_list(plan, mine, index, of)
    }

    /// Execute an explicit list of global task indices — the entry point
    /// for coordinated execution, where a lease server hands out task ids
    /// one at a time instead of a worker owning a static shard slice.
    /// This is the exact code path of [`SweepExecutor::run_shard`] (which
    /// delegates here), so outcomes are bit-identical however the indices
    /// were chosen. `index`/`of` only label the returned [`ShardResult`]
    /// and progress lines; they never affect a result byte.
    pub fn run_task_list(
        &self,
        plan: &SweepPlan,
        mine: Vec<usize>,
        index: usize,
        of: usize,
    ) -> ShardResult {
        let tasks = plan.tasks();
        let fp = plan.fingerprint();
        let cache = self.cache.clone().unwrap_or_else(MeasurementCache::shared);

        // `claim[k]` is the position in `mine` the k-th claim executes:
        // predicted-cost-descending, ties by task index. Capacity costs
        // count toward the ordering so the cell that will trigger a
        // shared reference run starts early.
        let cost: Vec<f64> = mine
            .iter()
            .map(|&t| {
                let (si, seed) = tasks[t];
                let scenario = &plan.scenarios[si];
                self.cost_model.predict(scenario)
                    + CostModel::capacity_group(scenario, seed)
                        .map_or(0.0, |_| self.cost_model.capacity_cost(scenario))
            })
            .collect();
        let mut claim: Vec<usize> = (0..mine.len()).collect();
        claim.sort_by(|&a, &b| cost[b].total_cmp(&cost[a]).then(mine[a].cmp(&mine[b])));

        // Sub-run expansion: a cell whose scenario splits
        // ([`Scenario::subrun_count`] > 1) becomes that many
        // independently-seeded work units so one long steady-state
        // measurement can occupy several workers at once. Units inherit
        // the cell's claim rank (an expensive cell's sub-runs all start
        // early); the cell's slot fills when its *last* unit lands and
        // [`combine_subruns`] folds the parts in k order — so worker
        // scheduling cannot change a result byte.
        let subs: Vec<u32> = mine
            .iter()
            .map(|&t| plan.scenarios[tasks[t].0].subrun_count())
            .collect();

        let slots: Vec<Mutex<Option<(TaskOutcome, f64, UnitCost)>>> =
            mine.iter().map(|_| Mutex::new(None)).collect();

        let obs = self.obs.as_deref();

        // Resume: splice journaled outcomes (successes *and* failures —
        // delete the journal to retry failed cells) into their slots and
        // skip their units entirely. Journaled outcomes travel the same
        // bit-exact codec as shard payloads, so a resumed merge is
        // byte-identical to an uninterrupted run; resumed cells cost no
        // wall-clock here, so they contribute no timing telemetry.
        let mut resumed = vec![false; mine.len()];
        if let Some(replay) = &self.resume {
            for (pos, &t) in mine.iter().enumerate() {
                if let Some(outcome) = replay.outcome(fp, t) {
                    *relock(&slots[pos]) = Some((outcome.clone(), 0.0, UnitCost::default()));
                    resumed[pos] = true;
                }
            }
            let skipped = resumed.iter().filter(|&&r| r).count();
            if skipped > 0 {
                eprintln!(
                    "[sweep] resume: skipped {skipped}/{} journaled tasks (shard {index}/{of})",
                    mine.len()
                );
                if let Some(obs) = obs {
                    obs.registry()
                        .counter_add("sweep.tasks_resumed", skipped as u64);
                }
            }
        }
        if let Some(journal) = &self.journal {
            journal
                .begin_sweep(fp, tasks.len())
                .expect("checkpoint journal write failed");
        }

        let units: Vec<(usize, u32)> = claim
            .iter()
            .filter(|&&pos| !resumed[pos])
            .flat_map(|&pos| (0..subs[pos]).map(move |k| (pos, k)))
            .collect();
        let accs: Vec<Mutex<SubAcc>> = subs
            .iter()
            .map(|&n| Mutex::new(SubAcc::new(n as usize)))
            .collect();

        let hits_before = cache.hits();
        let misses_before = cache.misses();
        let total = mine.len() - resumed.iter().filter(|&&r| r).count();
        let done = AtomicUsize::new(0);
        // Fail-fast abort latch for the guarded path: once a task has
        // exhausted its attempts, other workers stop claiming new units
        // so the failure propagates promptly.
        let abort = AtomicBool::new(false);
        // Cell-completion bookkeeping, shared by both unit shapes. The
        // telemetry counts *cells* (the plan's task unit), credited to
        // the worker that finished the cell, so `sweep.tasks_done` and
        // the per-worker counters still sum to the task count whatever
        // the sub-run fan-out.
        let finish_cell =
            |pos: usize, outcome: TaskOutcome, secs: f64, cost: UnitCost, worker: usize| {
                if let Some(journal) = &self.journal {
                    journal
                        .record(mine[pos], &outcome)
                        .expect("checkpoint journal write failed");
                }
                if let TaskOutcome::Failed(failure) = &outcome {
                    if let Some(obs) = obs {
                        obs.registry().counter_add("sweep.task_failures", 1);
                        obs.record_task_event(TraceEvent::TaskFailed {
                            task: mine[pos] as u64,
                            attempts: failure.attempts,
                        });
                    }
                }
                *relock(&slots[pos]) = Some((outcome, secs, cost));
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(obs) = obs {
                    let r = obs.registry();
                    r.counter_add("sweep.tasks_done", 1);
                    r.counter_add(&format!("sweep.worker{worker}.tasks"), 1);
                    r.hist_record("sweep.task_secs", secs);
                    r.gauge_max("sweep.task_max_secs", secs);
                }
                if self.progress {
                    eprintln!(
                        "[sweep] shard {index}/{of}: {finished}/{total} tasks done \
                     (last {secs:.2}s on worker {worker})"
                    );
                }
            };
        // One unit of work. With the fault policy inactive this is the
        // exact legacy path — `Scenario::run_unit` called inline, no
        // `catch_unwind`, no monitor thread — so the disabled hot path
        // stays inside the bench regression band. With it active every
        // attempt runs guarded (panic isolation, watchdog, retry); a
        // fail-fast failure latches `abort` and re-raises, a keep-going
        // failure degrades the cell to [`TaskOutcome::Failed`].
        let run_unit = |pos: usize, k: u32, worker: usize| {
            let t = mine[pos];
            let (si, seed) = tasks[t];
            let scenario = &plan.scenarios[si];
            let started = Instant::now();
            let result: Result<(UnitOutcome, UnitCost), TaskFailure> = if self.faults.active() {
                self.run_unit_guarded(scenario, t, seed, k, subs[pos], &cache)
            } else {
                Ok(scenario.run_unit(seed, k, subs[pos], Some(&cache), obs))
            };
            let secs = started.elapsed().as_secs_f64();
            if let Err(failure) = &result {
                if !self.faults.keep_going {
                    abort.store(true, Ordering::Relaxed);
                    panic!("sweep task {t} failed: {failure}");
                }
            }
            if subs[pos] <= 1 {
                match result {
                    Ok((unit, cost)) => {
                        let UnitOutcome::Whole(outcome) = unit else {
                            unreachable!("an unsplit cell always yields a whole outcome");
                        };
                        finish_cell(pos, TaskOutcome::Ok(outcome), secs, cost, worker);
                    }
                    Err(failure) => {
                        finish_cell(
                            pos,
                            TaskOutcome::Failed(failure),
                            secs,
                            UnitCost::default(),
                            worker,
                        );
                    }
                }
            } else {
                let (part, unit_cost) = match result {
                    Ok((UnitOutcome::Part(part), cost)) => (Ok(part), cost),
                    Ok((UnitOutcome::Whole(_), _)) => {
                        unreachable!("a split cell always yields sub-run parts")
                    }
                    Err(failure) => (Err(failure), UnitCost::default()),
                };
                let completed = {
                    let mut acc = relock(&accs[pos]);
                    acc.parts[k as usize] = Some(part);
                    acc.secs += secs;
                    acc.cost.ref_secs += unit_cost.ref_secs;
                    acc.cost.events += unit_cost.events;
                    acc.cost.ref_events += unit_cost.ref_events;
                    acc.done += 1;
                    (acc.done == subs[pos])
                        .then(|| (std::mem::take(&mut acc.parts), acc.secs, acc.cost))
                };
                if let Some((parts, secs, cost)) = completed {
                    // Every unit has landed. If any failed, the cell
                    // fails with the lowest-k failure — deterministic in
                    // the unit grid, not in worker scheduling.
                    let mut results = Vec::with_capacity(parts.len());
                    let mut failure = None;
                    for part in parts {
                        match part.expect("every sub-run lands before the combine") {
                            Ok(r) => results.push(r),
                            Err(f) => {
                                failure.get_or_insert(f);
                            }
                        }
                    }
                    let outcome = match failure {
                        None => TaskOutcome::Ok(ScenarioOutcome::Run(combine_subruns(&results))),
                        Some(f) => TaskOutcome::Failed(f),
                    };
                    finish_cell(pos, outcome, secs, cost, worker);
                }
            }
        };

        if self.threads <= 1 || units.len() <= 1 {
            for &(pos, k) in &units {
                run_unit(pos, k, 0);
            }
        } else {
            let next = AtomicUsize::new(0);
            let workers = self.threads.min(units.len());
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let next = &next;
                    let units = &units;
                    let run_unit = &run_unit;
                    let abort = &abort;
                    scope.spawn(move || loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(pos, k)) = units.get(i) else {
                            break;
                        };
                        run_unit(pos, k, w);
                    });
                }
            });
        }

        if let Some(obs) = obs {
            let r = obs.registry();
            r.counter_add("sweep.cache_hits", cache.hits() - hits_before);
            r.counter_add("sweep.cache_misses", cache.misses() - misses_before);
            // Predicted structural cost vs measured seconds, cumulative
            // per shard index across the invocation's sweeps — the
            // calibration drift signal at a glance.
            r.gauge_add(
                &format!("sweep.shard{index}.predicted_units"),
                cost.iter().sum(),
            );
            let actual: f64 = slots
                .iter()
                .map(|s| relock(s).as_ref().map_or(0.0, |(_, secs, _)| *secs))
                .sum();
            r.gauge_add(&format!("sweep.shard{index}.actual_secs"), actual);
        }

        let mut entries = Vec::with_capacity(mine.len());
        let mut failures = Vec::new();
        let mut timings = Vec::with_capacity(mine.len());
        let mut ref_timings = Vec::new();
        let mut events = Vec::with_capacity(mine.len());
        let mut ref_events = Vec::new();
        for (i, (t, slot)) in mine.into_iter().zip(slots).enumerate() {
            let (outcome, secs, cost) = slot
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every sweep task produces an outcome");
            match outcome {
                TaskOutcome::Ok(outcome) => entries.push((t, outcome)),
                TaskOutcome::Failed(failure) => failures.push((t, failure)),
            }
            // Resumed cells cost no wall-clock this run: no timing lines.
            if resumed[i] {
                continue;
            }
            timings.push((t, secs));
            if cost.ref_secs > 0.0 {
                ref_timings.push((t, cost.ref_secs));
            }
            // Per-cell cost is charged net of the shared reference run so
            // the signal is stable under cache claim order.
            if cost.events > 0 {
                events.push((t, cost.events.saturating_sub(cost.ref_events)));
            }
            if cost.ref_events > 0 {
                ref_events.push((t, cost.ref_events));
            }
        }
        ShardResult {
            shard: index,
            of,
            plan_fingerprint: plan.fingerprint(),
            task_count: tasks.len(),
            entries,
            failures,
            timings,
            ref_timings,
            events,
            ref_events,
        }
    }

    /// Run one task unit under the engaged fault policy: up to
    /// `1 + retries` guarded attempts with deterministic backoff between
    /// them. Returns the unit's outcome plus its [`UnitCost`],
    /// or the final attempt's failure once the budget is exhausted.
    ///
    /// Determinism: the scenario re-runs under its unchanged `seed` every
    /// attempt — only the injector's decision stream folds the attempt
    /// number in, so a retried success is bit-identical to a first-try
    /// success.
    fn run_unit_guarded(
        &self,
        scenario: &Scenario,
        task: usize,
        seed: u64,
        k: u32,
        of: u32,
        cache: &Arc<MeasurementCache>,
    ) -> Result<(UnitOutcome, UnitCost), TaskFailure> {
        let obs = self.obs.as_deref();
        let mut attempt = 0u32;
        loop {
            if attempt > 0 {
                let backoff = self.faults.backoff_secs(attempt);
                if backoff > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(backoff));
                }
                if let Some(obs) = obs {
                    obs.registry().counter_add("sweep.task_retries", 1);
                    obs.record_task_event(TraceEvent::TaskRetry {
                        task: task as u64,
                        attempt,
                    });
                }
            }
            let inject = self
                .faults
                .injector
                .and_then(|inj| inj.decide(seed, task, k, attempt));
            match self.run_attempt(scenario, seed, k, of, cache, inject) {
                Ok(done) => return Ok(done),
                Err(error) => {
                    if matches!(error, TaskError::Timeout(_)) {
                        if let Some(obs) = obs {
                            obs.registry().counter_add("sweep.task_timeouts", 1);
                        }
                    }
                    if attempt >= self.faults.retries {
                        return Err(TaskFailure {
                            error,
                            attempts: attempt + 1,
                        });
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// One guarded attempt at a task unit: panic-isolated, optionally
    /// under the watchdog deadline. Without a deadline the attempt runs
    /// inline under `catch_unwind`; with one it runs on a detached
    /// monitor-pattern thread — if the deadline passes, the runaway
    /// thread is abandoned (its eventual result discarded) and the
    /// attempt scores [`TaskError::Timeout`].
    fn run_attempt(
        &self,
        scenario: &Scenario,
        seed: u64,
        k: u32,
        of: u32,
        cache: &Arc<MeasurementCache>,
        inject: Option<InjectedFault>,
    ) -> Result<(UnitOutcome, UnitCost), TaskError> {
        let obs = self.obs.as_deref();
        match self.faults.task_timeout_secs {
            None => catch_unwind(AssertUnwindSafe(|| {
                apply_injected(inject);
                scenario.run_unit(seed, k, of, Some(cache), obs)
            }))
            .map_err(classify_panic),
            Some(limit) => {
                let scenario = scenario.clone();
                let cache = Arc::clone(cache);
                let obs = self.obs.clone();
                let (tx, rx) = std::sync::mpsc::channel();
                // Detached on purpose: joining a runaway thread would
                // defeat the deadline. An abandoned attempt keeps its CPU
                // until it finishes, but its result is discarded and its
                // panic (if any) is caught here, not propagated.
                std::thread::spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        apply_injected(inject);
                        scenario.run_unit(seed, k, of, Some(&cache), obs.as_deref())
                    }));
                    let _ = tx.send(result);
                });
                match rx.recv_timeout(Duration::from_secs_f64(limit)) {
                    Ok(result) => result.map_err(classify_panic),
                    Err(_) => Err(TaskError::Timeout(limit)),
                }
            }
        }
    }

    /// Execute the plan **streamingly**: fold every task's outcome into an
    /// accumulator instead of materializing the whole result grid. Memory
    /// stays O(cells in flight) — finished outcomes that arrive ahead of
    /// the in-order fold cursor are parked briefly and folded as the
    /// cursor reaches them, so the fold sees task indices `0, 1, 2, …`
    /// **always in task order**, whatever the thread count. With the same
    /// plan the folded values are bit-identical to pulling outcomes out of
    /// [`SweepExecutor::run`]; only the peak-memory profile differs.
    ///
    /// Workers claim tasks in task order (not predicted-cost order — that
    /// would maximize the out-of-order window this executor exists to
    /// keep small). Returns the final accumulator plus [`FoldStats`]
    /// recording the parked-outcome high-water mark.
    ///
    /// Fault tolerance applies per task exactly as in
    /// [`SweepExecutor::run_shard`] (the fold sees
    /// [`TaskOutcome::Failed`] cells under keep-going mode; fail-fast
    /// re-raises at the in-order cursor). The checkpoint journal is
    /// *not* consulted or written here — folds are streaming by nature;
    /// use the batch executor for resumable sweeps.
    pub fn run_fold<A>(
        &self,
        plan: &SweepPlan,
        init: A,
        mut fold: impl FnMut(A, usize, TaskOutcome) -> A,
    ) -> (A, FoldStats) {
        let tasks = plan.tasks();
        let cache = self.cache.clone().unwrap_or_else(MeasurementCache::shared);
        let obs = self.obs.as_deref();
        let n = tasks.len();
        // One task under the fault policy: inactive → the exact legacy
        // inline path (no catch_unwind, no monitor thread); active →
        // guarded attempts, exhausted budgets degraded to `Failed`.
        let run_task = |t: usize| -> TaskOutcome {
            let (si, seed) = tasks[t];
            let scenario = &plan.scenarios[si];
            if !self.faults.active() {
                return TaskOutcome::Ok(scenario.run_observed(seed, Some(&cache), obs));
            }
            match self.run_unit_guarded(scenario, t, seed, 0, 1, &cache) {
                Ok((UnitOutcome::Whole(outcome), _)) => TaskOutcome::Ok(outcome),
                Ok((UnitOutcome::Part(_), _)) => {
                    unreachable!("an unsplit unit always yields a whole outcome")
                }
                Err(failure) => {
                    if let Some(obs) = obs {
                        obs.registry().counter_add("sweep.task_failures", 1);
                        obs.record_task_event(TraceEvent::TaskFailed {
                            task: t as u64,
                            attempts: failure.attempts,
                        });
                    }
                    TaskOutcome::Failed(failure)
                }
            }
        };
        let mut acc = init;
        let mut peak = 0usize;
        if self.threads <= 1 || n <= 1 {
            for t in 0..n {
                let outcome = run_task(t);
                if let (false, Some(f)) = (self.faults.keep_going, outcome.as_failed()) {
                    panic!("sweep task {t} failed: {f}");
                }
                peak = peak.max(1);
                acc = fold(acc, t, outcome);
            }
            return (
                acc,
                FoldStats {
                    tasks: n,
                    peak_parked: peak,
                },
            );
        }
        let parked: Mutex<BTreeMap<usize, TaskOutcome>> = Mutex::new(BTreeMap::new());
        let ready = Condvar::new();
        let next = AtomicUsize::new(0);
        // Fail-fast latch: workers must not panic (the consumer below
        // waits on the condvar, so an unwound worker would strand it) —
        // they park the failure and stop claiming; the in-order consumer
        // re-raises when the fold cursor reaches the failed task.
        let abort = AtomicBool::new(false);
        let workers = self.threads.min(n);
        // `Option` dance: the consumer loop below runs inside the scope
        // closure, and threading the accumulator through `fold` must not
        // move it out of the capture.
        let mut acc = Some(acc);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let parked = &parked;
                let ready = &ready;
                let next = &next;
                let abort = &abort;
                let run_task = &run_task;
                scope.spawn(move || loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= n {
                        break;
                    }
                    let outcome = run_task(t);
                    if !self.faults.keep_going && outcome.as_failed().is_some() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    relock(parked).insert(t, outcome);
                    ready.notify_all();
                });
            }
            // The calling thread is the consumer: wait for the cursor's
            // outcome, note the high-water mark, fold outside the lock.
            let mut cursor = 0usize;
            let mut guard = relock(&parked);
            while cursor < n {
                while !guard.contains_key(&cursor) {
                    guard = ready.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
                peak = peak.max(guard.len());
                while let Some(outcome) = guard.remove(&cursor) {
                    drop(guard);
                    if let (false, Some(f)) = (self.faults.keep_going, outcome.as_failed()) {
                        panic!("sweep task {cursor} failed: {f}");
                    }
                    acc = Some(fold(
                        acc.take().expect("accumulator present"),
                        cursor,
                        outcome,
                    ));
                    cursor += 1;
                    guard = relock(&parked);
                }
            }
        });
        (
            acc.expect("fold loop leaves the accumulator in place"),
            FoldStats {
                tasks: n,
                peak_parked: peak,
            },
        )
    }
}

/// Execution statistics from [`SweepExecutor::run_fold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldStats {
    /// Tasks executed (= the plan's task count).
    pub tasks: usize,
    /// Largest number of finished outcomes ever parked waiting for the
    /// in-order fold cursor — the streaming executor's actual memory
    /// high-water mark, bounded by the out-of-order window rather than
    /// the grid size.
    pub peak_parked: usize,
}

/// Act out an injected fault decision at the top of a guarded attempt.
fn apply_injected(inject: Option<InjectedFault>) {
    match inject {
        None => {}
        // The marker payload lets the catch site classify this as an
        // injected fault rather than a genuine bug.
        Some(InjectedFault::Panic) => std::panic::panic_any(InjectedPanic),
        Some(InjectedFault::Stall(secs)) => {
            std::thread::sleep(Duration::from_secs_f64(secs));
        }
    }
}

/// Accumulates a split cell's sub-run parts (or their per-unit failures,
/// under keep-going mode) until the last one lands.
#[derive(Debug)]
struct SubAcc {
    parts: Vec<Option<Result<RunResult, TaskFailure>>>,
    secs: f64,
    cost: UnitCost,
    done: u32,
}

impl SubAcc {
    fn new(n: usize) -> SubAcc {
        SubAcc {
            parts: vec![None; n],
            secs: 0.0,
            cost: UnitCost::default(),
            done: 0,
        }
    }
}

/// Aggregate task-indexed outcomes into per-scenario results.
///
/// Tolerates missing task indices (a partial shard aggregates whatever it
/// has); entries and failures must be unique per index and are consumed
/// in task order so replication order always matches seed order.
pub(crate) fn assemble(
    plan: &SweepPlan,
    mut entries: Vec<(usize, ScenarioOutcome)>,
    mut failed: Vec<(usize, TaskFailure)>,
) -> Vec<ScenarioResult> {
    let tasks = plan.tasks();
    entries.sort_by_key(|(t, _)| *t);
    failed.sort_by_key(|(t, _)| *t);
    let mut outcomes: Vec<Vec<ScenarioOutcome>> =
        plan.scenarios.iter().map(|_| Vec::new()).collect();
    let mut failures: Vec<Vec<TaskFailure>> = plan.scenarios.iter().map(|_| Vec::new()).collect();
    for (t, outcome) in entries {
        outcomes[tasks[t].0].push(outcome);
    }
    for (t, failure) in failed {
        failures[tasks[t].0].push(failure);
    }
    plan.scenarios
        .iter()
        .zip(outcomes.into_iter().zip(failures))
        .map(|(scenario, (outcomes, failures))| {
            let mut reps = Replications::new();
            for o in &outcomes {
                for (k, v) in o.metrics() {
                    reps.push(k, v);
                }
            }
            ScenarioResult {
                scenario: scenario.clone(),
                outcomes,
                failures,
                reps,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{PolicyKind, RunConfig};
    use crate::scenario::{ArrivalSpec, ExecSpec, MplSpec};
    use crate::shard::encode_outcome;
    use xsched_workload::setup;

    fn quick_plan() -> SweepPlan {
        let rc = RunConfig {
            warmup_txns: 50,
            measured_txns: 250,
            ..Default::default()
        };
        let scenarios = [1u32, 3, 7]
            .iter()
            .map(|&m| Scenario::tput("s1", setup(1), m, rc.clone()))
            .collect();
        SweepPlan::new(scenarios).replicated(3, 42)
    }

    /// The determinism regression test: parallel execution must be
    /// bit-identical to serial for the same `(scenario, seed)` grid.
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let plan = quick_plan();
        let serial = SweepExecutor::serial().run(&plan);
        let parallel = SweepExecutor::parallel(4).run(&plan);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.outcomes.len(), p.outcomes.len());
            for (a, b) in s.outcomes.iter().zip(&p.outcomes) {
                let (a, b) = (a.as_run().unwrap(), b.as_run().unwrap());
                assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
                assert_eq!(a.mean_rt.to_bits(), b.mean_rt.to_bits());
                assert_eq!(a.p95_rt.to_bits(), b.p95_rt.to_bits());
                assert_eq!(a.mean_lock_wait.to_bits(), b.mean_lock_wait.to_bits());
            }
            assert_eq!(
                s.mean("throughput").to_bits(),
                p.mean("throughput").to_bits()
            );
        }
    }

    /// The acceptance criterion for the plan-level capacity cache: an
    /// OpenLoad grid with S setups × L loads × R seeds performs exactly
    /// S×R capacity measurements — every additional load cell is a cache
    /// hit — and the cached results are bit-identical to uncached runs.
    #[test]
    fn open_load_grid_measures_capacity_once_per_setup_and_seed() {
        let rc = RunConfig {
            warmup_txns: 20,
            measured_txns: 100,
            ..Default::default()
        };
        let setups = [1u32, 2]; // S = 2
        let loads = [0.5, 0.7, 0.9]; // L = 3
        let scenarios: Vec<Scenario> = setups
            .iter()
            .flat_map(|&id| {
                let rc = rc.clone();
                loads.iter().map(move |&load| Scenario {
                    row: format!("setup {id}"),
                    col: format!("load {load}"),
                    setup: setup(id),
                    exec: ExecSpec::Run {
                        mpl: MplSpec::Fixed(5),
                        policy: PolicyKind::Fifo,
                        arrivals: ArrivalSpec::OpenLoad(load),
                    },
                    rc: rc.clone(),
                })
            })
            .collect();
        let plan = SweepPlan::new(scenarios).replicated(2, 42); // R = 2

        let cache = MeasurementCache::shared();
        let cached = SweepExecutor::parallel(4)
            .with_cache(Arc::clone(&cache))
            .run(&plan);
        assert_eq!(cache.misses(), 4, "exactly S×R capacity measurements");
        assert_eq!(cache.hits(), 8, "the other S×(L−1)×R lookups are hits");

        // Bit-identical to the uncached path, outcome field by field.
        for (si, result) in cached.iter().enumerate() {
            for (seed, outcome) in plan.seeds.iter().zip(&result.outcomes) {
                let uncached = plan.scenarios[si].run(*seed);
                assert_eq!(encode_outcome(outcome), encode_outcome(&uncached));
            }
        }
    }

    #[test]
    fn task_count_always_matches_tasks_len() {
        // The empty-seeds rule is derived, not duplicated: pin the
        // equality on the edge cases.
        let rc = RunConfig::quick();
        let scenario = Scenario::tput("s1", setup(1), 5, rc);
        for (scenarios, seeds) in [
            (vec![], vec![]),                      // empty plan
            (vec![], vec![1, 2, 3]),               // seeds but nothing to run
            (vec![scenario.clone()], vec![]),      // per-scenario seeds
            (vec![scenario.clone()], vec![7]),     // one seed
            (vec![scenario; 3], vec![1, 2, 3, 4]), // full grid
        ] {
            let plan = SweepPlan::new(scenarios).with_seeds(seeds);
            assert_eq!(plan.task_count(), plan.tasks().len());
        }
    }

    #[test]
    fn strided_shards_partition_the_task_list() {
        let plan = quick_plan(); // 9 tasks
        for n in 1..=5 {
            let mut all: Vec<usize> = (0..n).flat_map(|i| plan.shard(i, n)).collect();
            all.sort_unstable();
            assert_eq!(all, (0..plan.task_count()).collect::<Vec<_>>(), "n={n}");
        }
        assert!(plan.shard(3, 4).iter().all(|t| t % 4 == 3));
    }

    /// A plan whose cells differ in predicted cost by ~5× (short vs long
    /// runs), laid out in the blocky row-major order real figures use.
    fn lopsided_plan() -> SweepPlan {
        let mut scenarios = Vec::new();
        for (txns, n) in [(250u64, 8usize), (1_250, 4)] {
            let rc = RunConfig {
                warmup_txns: 50,
                measured_txns: txns,
                ..Default::default()
            };
            for i in 0..n {
                scenarios.push(Scenario::tput(
                    format!("{txns}t{i}"),
                    setup(1),
                    5,
                    rc.clone(),
                ));
            }
        }
        SweepPlan::new(scenarios)
    }

    #[test]
    fn balanced_shards_partition_and_beat_striding_on_predicted_load() {
        let plan = lopsided_plan();
        let model = crate::cost::CostModel::structural();
        let predicted: Vec<f64> = plan
            .tasks()
            .iter()
            .map(|&(si, _)| model.predict(&plan.scenarios[si]))
            .collect();
        let imbalance = |slices: &[Vec<usize>]| -> f64 {
            let loads: Vec<f64> = slices
                .iter()
                .map(|s| s.iter().map(|&t| predicted[t]).sum())
                .collect();
            loads.iter().cloned().fold(f64::MIN, f64::max)
                / loads.iter().cloned().fold(f64::MAX, f64::min)
        };
        for n in [2usize, 3, 4] {
            let balanced: Vec<Vec<usize>> =
                (0..n).map(|i| plan.shard_balanced(i, n, &model)).collect();
            let mut all: Vec<usize> = balanced.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..plan.task_count()).collect::<Vec<_>>(), "n={n}");

            let strided: Vec<Vec<usize>> = (0..n).map(|i| plan.shard(i, n)).collect();
            assert!(
                imbalance(&balanced) <= imbalance(&strided) + 1e-9,
                "n={n}: balanced {} vs strided {}",
                imbalance(&balanced),
                imbalance(&strided)
            );
        }
        // The 4-expensive/8-cheap split at n=4: LPT gives every shard one
        // expensive cell; striding (period 4 over a blocky layout) gives
        // two shards two expensive cells and two shards none.
        let balanced: Vec<Vec<usize>> = (0..4).map(|i| plan.shard_balanced(i, 4, &model)).collect();
        assert!(imbalance(&balanced) < 1.5);
    }

    #[test]
    fn cost_balanced_execution_is_bit_identical_and_times_every_task() {
        let plan = quick_plan();
        let direct = SweepExecutor::serial().run(&plan);
        let model = Arc::new(crate::cost::CostModel::structural());
        let shards: Vec<ShardResult> = (0..3)
            .map(|i| {
                SweepExecutor::parallel(2)
                    .with_cost_model(Arc::clone(&model))
                    .with_balance(BalanceMode::Cost)
                    .run_shard(&plan, i, 3)
            })
            .collect();
        for s in &shards {
            assert_eq!(s.timings.len(), s.entries.len());
            assert!(s.timings.iter().all(|&(_, secs)| secs >= 0.0));
        }
        let merged = ShardResult::merge(&plan, &shards).unwrap();
        for (d, m) in direct.iter().zip(&merged) {
            for (a, b) in d.outcomes.iter().zip(&m.outcomes) {
                assert_eq!(encode_outcome(a), encode_outcome(b));
            }
        }
    }

    /// Attaching a [`SweepObs`] must not change a result byte, and the
    /// execution telemetry it records must add up: every task counted
    /// and timed, cache traffic attributed, controller cells leaving a
    /// telemetry series keyed by their label.
    #[test]
    fn observed_sweep_is_bit_identical_and_accounts_for_every_task() {
        use crate::controller::Targets;
        let mut plan = quick_plan();
        plan.scenarios.push(Scenario {
            row: "ctl".into(),
            col: String::new(),
            setup: setup(1),
            exec: ExecSpec::Controller {
                targets: Targets::twenty_percent(),
                start: None,
            },
            rc: RunConfig::quick(),
        });
        let plain = SweepExecutor::parallel(4).run(&plan);
        let obs = Arc::new(SweepObs::new());
        let observed = SweepExecutor::parallel(4)
            .with_obs(Arc::clone(&obs))
            .run(&plan);
        for (a, b) in plain.iter().zip(&observed) {
            for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
                assert_eq!(encode_outcome(x), encode_outcome(y));
            }
        }
        let r = obs.registry();
        assert_eq!(r.counter("sweep.tasks_done"), plan.task_count() as u64);
        let per_worker: u64 = (0..64)
            .map(|w| r.counter(&format!("sweep.worker{w}.tasks")))
            .sum();
        assert_eq!(per_worker, plan.task_count() as u64);
        let hist = r.hist("sweep.task_secs").expect("every task timed");
        assert_eq!(hist.count(), plan.task_count() as u64);
        assert!(r.gauge("sweep.shard0.actual_secs").unwrap_or(0.0) > 0.0);
        // One series per controller cell × seed, labeled by the cell.
        let series = obs.controller_series();
        assert_eq!(series.len(), plan.seeds.len());
        assert!(series
            .iter()
            .all(|(l, s)| l.starts_with("ctl") && !s.is_empty()));
    }

    #[test]
    fn replications_produce_finite_confidence_intervals() {
        let results = SweepExecutor::parallel(0).run(&quick_plan());
        for r in &results {
            assert_eq!(r.outcomes.len(), 3);
            let ci = r.ci95("throughput");
            assert!(ci.mean > 0.0);
            assert!(ci.half_width.is_finite(), "3 reps give a finite t CI");
        }
    }

    #[test]
    fn plan_expansion_counts_tasks() {
        let plan = quick_plan();
        assert_eq!(plan.task_count(), 9);
        assert!(!plan.is_empty());
        assert_eq!(plan.seeds, vec![42, 43, 44]);
    }

    #[test]
    fn empty_seed_list_uses_each_scenarios_own_seed() {
        let mut plan = quick_plan().with_seeds(vec![]);
        plan.scenarios[1].rc.seed = 7;
        assert_eq!(plan.task_count(), 3);
        let results = SweepExecutor::serial().run(&plan);
        // Scenario 1 ran under its own configured seed, not scenario 0's.
        let own = plan.scenarios[1].run(7);
        assert_eq!(
            results[1].first().as_run().unwrap().throughput.to_bits(),
            own.as_run().unwrap().throughput.to_bits()
        );
        // And differently-seeded scenarios really saw different streams.
        let other = plan.scenarios[1].run(plan.scenarios[0].rc.seed);
        assert_ne!(
            results[1].first().as_run().unwrap().throughput.to_bits(),
            other.as_run().unwrap().throughput.to_bits()
        );
    }

    /// Sub-run expansion is invisible to determinism: a plan whose cells
    /// split into K sub-runs produces bit-identical outcomes at every
    /// thread count, each cell equal to the hand-rolled expansion
    /// (`run_subrun` × K combined in k order) — worker claim order can
    /// move sub-runs between threads but never changes a byte.
    #[test]
    fn subrun_cells_are_bit_identical_across_thread_counts_and_match_the_manual_combine() {
        let rc = RunConfig {
            warmup_txns: 30,
            measured_txns: 240,
            subruns: 3,
            ..Default::default()
        };
        let scenarios = vec![
            Scenario::tput("s1", setup(1), 2, rc.clone()),
            Scenario::tput("s2", setup(2), 6, rc),
        ];
        let plan = SweepPlan::new(scenarios).replicated(2, 42);
        let serial = SweepExecutor::serial().run(&plan);
        for threads in [2usize, 4] {
            let wide = SweepExecutor::parallel(threads).run(&plan);
            for (s, p) in serial.iter().zip(&wide) {
                for (a, b) in s.outcomes.iter().zip(&p.outcomes) {
                    assert_eq!(encode_outcome(a), encode_outcome(b));
                }
            }
        }
        // The executor's combined cell is exactly the manual expansion.
        let parts: Vec<_> = (0..3)
            .map(|k| plan.scenarios[0].run_subrun(42, k, 3, None).0)
            .collect();
        let manual = ScenarioOutcome::Run(crate::driver::combine_subruns(&parts));
        assert_eq!(
            encode_outcome(&serial[0].outcomes[0]),
            encode_outcome(&manual)
        );
        // And the split changes the estimator relative to an unsplit run
        // — the golden-pinned default path really is `subruns: 1`.
        let unsplit = plan.scenarios[0].run(42);
        assert_ne!(
            encode_outcome(&serial[0].outcomes[0]),
            encode_outcome(&unsplit)
        );
    }

    /// The streaming executor folds every outcome exactly once, strictly
    /// in task order, and the folded stream is bit-identical to the
    /// batch path at any thread count. `peak_parked` bounds the
    /// out-of-order window: at least 1, never more than the plan.
    #[test]
    fn run_fold_streams_in_task_order_and_matches_the_batch_run() {
        let plan = quick_plan();
        let reference = SweepExecutor::serial().run_shard(&plan, 0, 1);
        let expected: Vec<String> = reference
            .entries
            .iter()
            .map(|(_, o)| encode_outcome(o))
            .collect();
        for exec in [SweepExecutor::serial(), SweepExecutor::parallel(4)] {
            let (folded, stats) = exec.run_fold(&plan, Vec::new(), |mut acc: Vec<String>, t, o| {
                assert_eq!(acc.len(), t, "outcomes fold strictly in task order");
                acc.push(encode_outcome(o.as_ok().expect("no faults engaged")));
                acc
            });
            assert_eq!(stats.tasks, plan.task_count());
            assert!(stats.peak_parked >= 1 && stats.peak_parked <= plan.task_count());
            assert_eq!(folded, expected);
        }
    }

    /// An injector that fails *every* attempt of *every* task must not
    /// abort a keep-going sweep: every cell degrades to a marked failure
    /// carrying the full attempt count, and the failure records survive
    /// the assemble path.
    #[test]
    fn keep_going_sweep_survives_total_failure() {
        let plan = quick_plan();
        let exec = SweepExecutor::parallel(4).with_faults(FaultPolicy {
            keep_going: true,
            retries: 1,
            injector: Some(crate::fault::FaultInjector {
                p_panic: 1.0,
                p_stall: 0.0,
                stall_secs: 0.0,
            }),
            ..Default::default()
        });
        let obs = Arc::new(SweepObs::new());
        let results = exec.with_obs(Arc::clone(&obs)).run(&plan);
        let total: usize = results.iter().map(|r| r.failures.len()).sum();
        assert_eq!(total, plan.task_count());
        assert!(results.iter().all(|r| r.outcomes.is_empty()));
        for r in &results {
            for f in &r.failures {
                assert_eq!(f.attempts, 2, "1 retry = 2 attempts");
                assert_eq!(f.error, crate::fault::TaskError::Injected("panic".into()));
            }
        }
        let reg = obs.registry();
        assert_eq!(reg.counter("sweep.task_failures"), plan.task_count() as u64);
        assert_eq!(reg.counter("sweep.task_retries"), plan.task_count() as u64);
    }

    /// The determinism acceptance criterion: under a partial-failure
    /// injector with retries, every cell that eventually *succeeds* is
    /// bit-identical to the same cell of a fault-free run — a retried
    /// success is indistinguishable from a first-try success.
    #[test]
    fn surviving_cells_under_injected_faults_match_the_fault_free_run_bitwise() {
        let plan = quick_plan();
        let baseline = SweepExecutor::serial().run_shard(&plan, 0, 1);
        let faulty = SweepExecutor::parallel(4)
            .with_faults(FaultPolicy {
                keep_going: true,
                retries: 2,
                injector: Some(crate::fault::FaultInjector {
                    p_panic: 0.4,
                    p_stall: 0.0,
                    stall_secs: 0.0,
                }),
                ..Default::default()
            })
            .run_shard(&plan, 0, 1);
        let by_task: std::collections::HashMap<usize, String> = baseline
            .entries
            .iter()
            .map(|(t, o)| (*t, encode_outcome(o)))
            .collect();
        assert!(
            !faulty.entries.is_empty(),
            "p=0.4 over 3 attempts leaves survivors"
        );
        for (t, o) in &faulty.entries {
            assert_eq!(encode_outcome(o), by_task[t], "task {t}");
        }
        // Determinism of the *failures* too: the same injected sweep
        // re-run (serial this time) must fail the same tasks the same way.
        let again = SweepExecutor::serial()
            .with_faults(FaultPolicy {
                keep_going: true,
                retries: 2,
                injector: Some(crate::fault::FaultInjector {
                    p_panic: 0.4,
                    p_stall: 0.0,
                    stall_secs: 0.0,
                }),
                ..Default::default()
            })
            .run_shard(&plan, 0, 1);
        assert_eq!(faulty.failures, again.failures);
        let render = |s: &ShardResult| -> Vec<(usize, String)> {
            s.entries
                .iter()
                .map(|(t, o)| (*t, encode_outcome(o)))
                .collect()
        };
        assert_eq!(render(&faulty), render(&again));
    }

    /// The watchdog scores a stalled attempt as a timeout: with a stall
    /// injected on every attempt and a deadline shorter than the stall,
    /// every cell fails by `TaskError::Timeout` without hanging the sweep.
    #[test]
    fn watchdog_times_out_stalled_tasks() {
        let rc = RunConfig {
            warmup_txns: 10,
            measured_txns: 30,
            ..Default::default()
        };
        let plan = SweepPlan::new(vec![Scenario::tput("s1", setup(1), 3, rc)]);
        let obs = Arc::new(SweepObs::new());
        let results = SweepExecutor::serial()
            .with_faults(FaultPolicy {
                keep_going: true,
                task_timeout_secs: Some(0.05),
                injector: Some(crate::fault::FaultInjector {
                    p_panic: 0.0,
                    p_stall: 1.0,
                    stall_secs: 0.4,
                }),
                ..Default::default()
            })
            .with_obs(Arc::clone(&obs))
            .run(&plan);
        assert_eq!(results[0].failures.len(), 1);
        assert_eq!(
            results[0].failures[0].error,
            crate::fault::TaskError::Timeout(0.05)
        );
        assert_eq!(obs.registry().counter("sweep.task_timeouts"), 1);
    }

    /// Fail-fast (the default) still aborts: an all-failing injector
    /// without keep-going panics out of the sweep instead of degrading.
    #[test]
    fn fail_fast_policy_aborts_the_sweep_on_task_failure() {
        let plan = quick_plan();
        let policy = FaultPolicy {
            injector: Some(crate::fault::FaultInjector {
                p_panic: 1.0,
                p_stall: 0.0,
                stall_secs: 0.0,
            }),
            ..Default::default()
        };
        // Serial: the failure panic carries the typed message.
        let failure = policy.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SweepExecutor::serial().with_faults(failure).run(&plan)
        }));
        let msg = *result
            .expect_err("fail-fast aborts")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("sweep task"), "{msg}");
        assert!(msg.contains("injected fault"), "{msg}");
        // Parallel: the abort latch still fails the sweep (thread::scope
        // re-raises with its own payload, so only the abort is asserted).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SweepExecutor::parallel(4).with_faults(policy).run(&plan)
        }));
        assert!(result.is_err(), "parallel fail-fast aborts too");
    }

    /// Checkpoint/resume round trip: journal a full run, then resume from
    /// the journal — every task is skipped, the merged shard is
    /// bit-identical, and resumed cells contribute no timing lines.
    #[test]
    fn journaled_sweep_resumes_bit_identically_and_skips_timings() {
        let plan = quick_plan();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("xsched-sweep-journal-{}.log", std::process::id()));
        let direct = SweepExecutor::serial().run_shard(&plan, 0, 1);
        let journal = Arc::new(crate::journal::CheckpointJournal::create(&path).unwrap());
        let journaled = SweepExecutor::parallel(2)
            .with_journal(Arc::clone(&journal))
            .run_shard(&plan, 0, 1);
        for ((t, a), (u, b)) in direct.entries.iter().zip(&journaled.entries) {
            assert_eq!(t, u);
            assert_eq!(encode_outcome(a), encode_outcome(b));
        }
        let replay = Arc::new(crate::journal::JournalReplay::load(&path).unwrap());
        let obs = Arc::new(SweepObs::new());
        let resumed = SweepExecutor::parallel(2)
            .with_resume(replay)
            .with_obs(Arc::clone(&obs))
            .run_shard(&plan, 0, 1);
        std::fs::remove_file(&path).ok();
        // Entries identical; no wall-clock was spent, so no timing lines
        // and no executed-task telemetry.
        assert_eq!(resumed.entries.len(), direct.entries.len());
        for ((t, a), (u, b)) in direct.entries.iter().zip(&resumed.entries) {
            assert_eq!(t, u);
            assert_eq!(encode_outcome(a), encode_outcome(b));
        }
        assert!(resumed.timings.is_empty());
        let reg = obs.registry();
        assert_eq!(reg.counter("sweep.tasks_resumed"), plan.task_count() as u64);
        assert_eq!(reg.counter("sweep.tasks_done"), 0);
        // And the assembled tables match bitwise.
        let a = assemble(&plan, direct.entries, direct.failures);
        let b = assemble(&plan, resumed.entries, resumed.failures);
        for (x, y) in a.iter().zip(&b) {
            for (o, p) in x.outcomes.iter().zip(&y.outcomes) {
                assert_eq!(encode_outcome(o), encode_outcome(p));
            }
        }
    }

    /// Keep-going + sub-run expansion: a failing unit degrades the whole
    /// cell deterministically (lowest-k failure wins) while fault-free
    /// cells still combine bit-identically to the plain run.
    #[test]
    fn subrun_cell_failure_degrades_the_cell_deterministically() {
        let rc = RunConfig {
            warmup_txns: 30,
            measured_txns: 240,
            subruns: 3,
            ..Default::default()
        };
        let plan = SweepPlan::new(vec![
            Scenario::tput("s1", setup(1), 2, rc.clone()),
            Scenario::tput("s2", setup(2), 6, rc),
        ]);
        let policy = FaultPolicy {
            keep_going: true,
            injector: Some(crate::fault::FaultInjector {
                p_panic: 0.3,
                p_stall: 0.0,
                stall_secs: 0.0,
            }),
            ..Default::default()
        };
        let serial = SweepExecutor::serial()
            .with_faults(policy.clone())
            .run_shard(&plan, 0, 1);
        assert!(
            !serial.failures.is_empty(),
            "p=0.3 per unit, no retries: some cell fails"
        );
        let render = |s: &ShardResult| -> Vec<(usize, String)> {
            s.entries
                .iter()
                .map(|(t, o)| (*t, encode_outcome(o)))
                .collect()
        };
        for threads in [2usize, 4] {
            let wide = SweepExecutor::parallel(threads)
                .with_faults(policy.clone())
                .run_shard(&plan, 0, 1);
            assert_eq!(serial.failures, wide.failures, "threads={threads}");
            assert_eq!(render(&serial), render(&wide), "threads={threads}");
        }
    }

    /// run_fold under keep-going: failed tasks arrive at the fold as
    /// `TaskOutcome::Failed`, still strictly in task order, and the
    /// successful outcomes match the unguarded stream.
    #[test]
    fn run_fold_keep_going_folds_failures_in_order() {
        let plan = quick_plan();
        let policy = FaultPolicy {
            keep_going: true,
            injector: Some(crate::fault::FaultInjector {
                p_panic: 0.4,
                p_stall: 0.0,
                stall_secs: 0.0,
            }),
            ..Default::default()
        };
        let reference = SweepExecutor::serial().run_shard(&plan, 0, 1);
        let expected: Vec<String> = reference
            .entries
            .iter()
            .map(|(_, o)| encode_outcome(o))
            .collect();
        let mut streams = Vec::new();
        for exec in [SweepExecutor::serial(), SweepExecutor::parallel(4)] {
            let (folded, stats) = exec.with_faults(policy.clone()).run_fold(
                &plan,
                Vec::new(),
                |mut acc: Vec<(usize, Option<String>)>, t, o| {
                    assert_eq!(acc.len(), t, "failures fold in task order too");
                    acc.push((t, o.as_ok().map(encode_outcome)));
                    acc
                },
            );
            assert_eq!(stats.tasks, plan.task_count());
            let failed = folded.iter().filter(|(_, o)| o.is_none()).count();
            assert!(failed > 0, "p=0.4 with no retries fails something");
            assert!(failed < plan.task_count(), "and spares something");
            for (t, o) in &folded {
                if let Some(o) = o {
                    assert_eq!(o, &expected[*t], "surviving task {t}");
                }
            }
            streams.push(folded);
        }
        assert_eq!(streams[0], streams[1], "serial ≡ parallel, byte for byte");
    }
}
