//! The external scheduler: queue policy + MPL gate.
//!
//! This is the mechanism of Fig. 1: transactions enter the external queue,
//! and whenever a slot is free the policy picks which one to dispatch into
//! the DBMS. The scheduler is backend-agnostic — the driver wires it to
//! the simulated DBMS, but nothing here depends on the simulator.

use crate::gate::MplGate;
use crate::policy::{QueuePolicy, QueuedTxn};

/// External queue plus MPL gate.
pub struct ExternalScheduler<P: QueuePolicy> {
    policy: P,
    gate: MplGate,
}

impl<P: QueuePolicy> ExternalScheduler<P> {
    /// A scheduler with the given policy and initial MPL.
    pub fn new(policy: P, mpl: u32) -> ExternalScheduler<P> {
        ExternalScheduler {
            policy,
            gate: MplGate::new(mpl),
        }
    }

    /// Add a transaction to the external queue.
    pub fn enqueue(&mut self, txn: QueuedTxn) {
        self.policy.push(txn);
    }

    /// If a slot is free and the queue is nonempty, take the next
    /// transaction to admit (the slot is acquired on return).
    pub fn dispatch(&mut self) -> Option<QueuedTxn> {
        if self.policy.is_empty() || self.gate.available() == 0 {
            return None;
        }
        let txn = self.policy.pop()?;
        let ok = self.gate.try_acquire();
        debug_assert!(ok);
        Some(txn)
    }

    /// Record a completion, freeing one slot.
    pub fn complete(&mut self) {
        self.gate.release();
    }

    /// Change the MPL (takes effect on future dispatches).
    pub fn set_mpl(&mut self, mpl: u32) {
        self.gate.set_mpl(mpl);
    }

    /// Current MPL.
    pub fn mpl(&self) -> u32 {
        self.gate.mpl()
    }

    /// Transactions inside the DBMS.
    pub fn in_flight(&self) -> u32 {
        self.gate.in_flight()
    }

    /// Transactions waiting externally.
    pub fn queue_len(&self) -> usize {
        self.policy.len()
    }

    /// Borrow the policy (e.g. to inspect class queue lengths).
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fifo, PriorityFifo};
    use xsched_dbms::txn::{Priority, Step, TxnBody};

    fn txn(priority: Priority, arrival: f64) -> QueuedTxn {
        QueuedTxn {
            body: TxnBody {
                txn_type: 0,
                priority,
                steps: vec![Step::compute(0.001)],
            },
            arrival,
        }
    }

    #[test]
    fn dispatch_respects_mpl() {
        let mut s = ExternalScheduler::new(Fifo::new(), 2);
        for i in 0..5 {
            s.enqueue(txn(Priority::Low, i as f64));
        }
        assert!(s.dispatch().is_some());
        assert!(s.dispatch().is_some());
        assert!(s.dispatch().is_none(), "MPL reached");
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.queue_len(), 3);
        s.complete();
        assert!(s.dispatch().is_some());
    }

    #[test]
    fn never_exceeds_mpl_under_churn() {
        let mut s = ExternalScheduler::new(Fifo::new(), 3);
        let mut max_seen = 0;
        for round in 0..100 {
            s.enqueue(txn(Priority::Low, round as f64));
            while s.dispatch().is_some() {}
            max_seen = max_seen.max(s.in_flight());
            if round % 2 == 0 && s.in_flight() > 0 {
                s.complete();
            }
        }
        assert!(max_seen <= 3, "in_flight peaked at {max_seen}");
    }

    #[test]
    fn priority_policy_dispatches_high_first() {
        let mut s = ExternalScheduler::new(PriorityFifo::new(), 1);
        s.enqueue(txn(Priority::Low, 0.0));
        s.enqueue(txn(Priority::High, 1.0));
        let first = s.dispatch().unwrap();
        assert_eq!(first.body.priority, Priority::High);
    }

    #[test]
    fn mpl_resize_mid_run() {
        let mut s = ExternalScheduler::new(Fifo::new(), 4);
        for i in 0..10 {
            s.enqueue(txn(Priority::Low, i as f64));
        }
        while s.dispatch().is_some() {}
        assert_eq!(s.in_flight(), 4);
        s.set_mpl(2);
        s.complete();
        s.complete();
        assert!(s.dispatch().is_none(), "still at the lowered limit");
        s.complete();
        assert!(s.dispatch().is_some());
        assert_eq!(s.mpl(), 2);
    }

    #[test]
    fn empty_queue_dispatches_none() {
        let mut s = ExternalScheduler::new(Fifo::new(), 8);
        assert!(s.dispatch().is_none());
        assert_eq!(s.in_flight(), 0);
    }
}
