//! Plan-level memoization of capacity (reference) measurements.
//!
//! The open-system figures resolve [`ArrivalSpec::OpenLoad`] and
//! [`MplSpec::AtLoss`] against the setup's MPL-less *reference* run — a
//! full simulation that, without caching, re-executes for every grid cell
//! and every replication seed even though it only depends on
//! `(setup, run config, seed)`. A [`MeasurementCache`] shared across a
//! sweep memoizes those runs, so an S-setup × L-load × R-seed grid
//! performs exactly S×R capacity measurements instead of S×L×R.
//!
//! Correctness: a reference run is a pure function of its key (see
//! [`Scenario::run`]), so serving a memoized result is bit-identical to
//! recomputing it — the cache changes wall-clock time, never a number.
//! Each key's first caller computes under a per-key lock; concurrent
//! requests for the same key wait and then share the result, which keeps
//! the hit/miss counters deterministic regardless of thread count.
//!
//! [`ArrivalSpec::OpenLoad`]: crate::scenario::ArrivalSpec::OpenLoad
//! [`MplSpec::AtLoss`]: crate::scenario::MplSpec::AtLoss
//! [`Scenario::run`]: crate::scenario::Scenario::run

use crate::driver::{RunConfig, RunResult};
use crate::fault::relock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xsched_workload::Setup;

type Slot = Arc<Mutex<Option<Arc<RunResult>>>>;

/// What a cached measurement measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasurementKind {
    /// The MPL-less capacity run of [`Driver::reference`](crate::Driver::reference).
    Reference,
}

/// Typed memoization key: measurement kind, structural setup fingerprint,
/// and every run-config field verbatim (floats as IEEE bit patterns).
///
/// This replaces the original `format!("reference|{:?}|{:?}", ...)`
/// string key, which silently aliased whenever two configurations shared
/// a `Debug` rendering — a hazard every time a field is added without
/// showing up in `Debug`, or two floats print identically. Here the
/// compiler enforces coverage: a new `RunConfig` field breaks this
/// constructor until it is added to the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeasurementKey {
    kind: MeasurementKind,
    setup_id: u32,
    /// 128-bit structural fingerprint of the full setup (workload,
    /// hardware, DBMS config) — distinguishes `map_cfg` variants sharing
    /// an id.
    setup_fp: (u64, u64),
    warmup_txns: u64,
    measured_txns: u64,
    seed: u64,
    max_sim_time: u64,
    min_warmup_time: u64,
    warm_pool: bool,
    high_fraction: u64,
}

impl MeasurementKey {
    /// The key of a [`Driver::reference`](crate::Driver::reference)
    /// (capacity) measurement under `setup` and `rc`.
    pub fn reference(setup: &Setup, rc: &RunConfig) -> MeasurementKey {
        // Exhaustive destructuring (no `..`): adding a `RunConfig` field
        // fails to compile here until it joins the key (or is excluded
        // deliberately, like `subruns`).
        let RunConfig {
            warmup_txns,
            measured_txns,
            seed,
            max_sim_time,
            min_warmup_time,
            warm_pool,
            high_fraction,
            // Deliberately NOT part of the key: sub-run splitting is a
            // sweep-executor concern — a reference run is always one
            // whole simulation, identical whatever `subruns` says, so
            // configs differing only there must share the cache entry.
            subruns: _,
        } = *rc;
        MeasurementKey {
            kind: MeasurementKind::Reference,
            setup_id: setup.id,
            setup_fp: setup.stable_fingerprint(),
            warmup_txns,
            measured_txns,
            seed,
            max_sim_time: max_sim_time.to_bits(),
            min_warmup_time: min_warmup_time.to_bits(),
            warm_pool,
            high_fraction: high_fraction.to_bits(),
        }
    }
}

/// Memoizes reference/capacity runs keyed by [`MeasurementKey`] —
/// `(measurement kind, setup fingerprint, run config, seed)`.
#[derive(Debug, Default)]
pub struct MeasurementCache {
    slots: Mutex<HashMap<MeasurementKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MeasurementCache {
    /// An empty cache.
    pub fn new() -> MeasurementCache {
        MeasurementCache::default()
    }

    /// An empty cache behind the `Arc` every consumer wants.
    pub fn shared() -> Arc<MeasurementCache> {
        Arc::new(MeasurementCache::new())
    }

    /// Return the memoized result for `key`, or run `measure` to produce
    /// (and remember) it.
    ///
    /// The computation happens under a per-key lock: exactly one caller
    /// measures, concurrent callers for the same key block and then share
    /// the result, and callers for *different* keys proceed in parallel.
    ///
    /// Poisoning: `measure` runs inside sweep tasks that may panic under
    /// panic isolation, which poisons the slot lock the measure ran
    /// under. That is recoverable, not fatal — the slot value is only
    /// written *after* `measure` returns, so a poisoned slot still holds
    /// `None` (or a fully-written earlier result) and the next caller
    /// simply measures again instead of cascading the panic to every
    /// task sharing the key.
    pub fn get_or_measure(
        &self,
        key: MeasurementKey,
        measure: impl FnOnce() -> RunResult,
    ) -> Arc<RunResult> {
        let slot = {
            let mut slots = relock(&self.slots);
            slots.entry(key).or_default().clone()
        };
        let mut guard = relock(&slot);
        if let Some(cached) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(cached);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = Arc::new(measure());
        *guard = Some(Arc::clone(&result));
        result
    }

    /// Lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the measurement (= number of distinct keys).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized measurements.
    pub fn len(&self) -> usize {
        relock(&self.slots).len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{Driver, RunConfig};
    use xsched_workload::setup;

    fn quick_rc(seed: u64) -> RunConfig {
        RunConfig {
            warmup_txns: 20,
            measured_txns: 100,
            seed,
            ..Default::default()
        }
    }

    fn quick_result(seed: u64) -> RunResult {
        Driver::new(setup(1)).with_config(quick_rc(seed)).run(
            3,
            crate::driver::PolicyKind::Fifo,
            &xsched_workload::ArrivalProcess::saturated(100),
        )
    }

    fn key(seed: u64) -> MeasurementKey {
        MeasurementKey::reference(&setup(1), &quick_rc(seed))
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_bits() {
        let cache = MeasurementCache::new();
        let a = cache.get_or_measure(key(1), || quick_result(1));
        let b = cache.get_or_measure(key(1), || panic!("must not re-measure"));
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_measure_independently() {
        let cache = MeasurementCache::new();
        cache.get_or_measure(key(1), || quick_result(1));
        cache.get_or_measure(key(2), || quick_result(2));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_same_key_measures_exactly_once() {
        let cache = MeasurementCache::shared();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    cache.get_or_measure(key(7), || quick_result(7));
                });
            }
        });
        assert_eq!(cache.misses(), 1, "per-key lock serializes the measure");
        assert_eq!(cache.hits(), 7);
    }

    /// A panic inside `measure` (caught by the sweep's panic isolation)
    /// poisons the slot lock; the next caller for that key must measure
    /// cleanly instead of cascading the panic.
    #[test]
    fn poisoned_slot_recovers_on_the_next_lookup() {
        let cache = MeasurementCache::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_measure(key(3), || panic!("task died mid-measure"));
        }));
        assert!(caught.is_err());
        let result = cache.get_or_measure(key(3), || quick_result(3));
        let again = cache.get_or_measure(key(3), || panic!("must not re-measure"));
        assert_eq!(result.throughput.to_bits(), again.throughput.to_bits());
        // The dead attempt and the recovery attempt each count a miss.
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn key_covers_every_identifying_field() {
        let rc = quick_rc(1);
        let base = MeasurementKey::reference(&setup(1), &rc);
        // Different setup id.
        assert_ne!(base, MeasurementKey::reference(&setup(2), &rc));
        // Same id, mutated DBMS config (the `map_cfg` idiom) — this is
        // exactly the aliasing class a partial key would miss.
        let variant = setup(1).map_cfg(|c| c.group_commit = true);
        assert_ne!(base, MeasurementKey::reference(&variant, &rc));
        // Every run-config field participates.
        for mutated in [
            RunConfig {
                warmup_txns: 21,
                ..rc.clone()
            },
            RunConfig {
                measured_txns: 101,
                ..rc.clone()
            },
            RunConfig {
                seed: 2,
                ..rc.clone()
            },
            RunConfig {
                max_sim_time: 1.0,
                ..rc.clone()
            },
            RunConfig {
                min_warmup_time: 1.0,
                ..rc.clone()
            },
            RunConfig {
                warm_pool: false,
                ..rc.clone()
            },
            RunConfig {
                high_fraction: 0.25,
                ..rc.clone()
            },
        ] {
            assert_ne!(base, MeasurementKey::reference(&setup(1), &mutated));
        }
    }
}
