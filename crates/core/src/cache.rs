//! Plan-level memoization of capacity (reference) measurements.
//!
//! The open-system figures resolve [`ArrivalSpec::OpenLoad`] and
//! [`MplSpec::AtLoss`] against the setup's MPL-less *reference* run — a
//! full simulation that, without caching, re-executes for every grid cell
//! and every replication seed even though it only depends on
//! `(setup, run config, seed)`. A [`MeasurementCache`] shared across a
//! sweep memoizes those runs, so an S-setup × L-load × R-seed grid
//! performs exactly S×R capacity measurements instead of S×L×R.
//!
//! Correctness: a reference run is a pure function of its key (see
//! [`Scenario::run`]), so serving a memoized result is bit-identical to
//! recomputing it — the cache changes wall-clock time, never a number.
//! Each key's first caller computes under a per-key lock; concurrent
//! requests for the same key wait and then share the result, which keeps
//! the hit/miss counters deterministic regardless of thread count.
//!
//! [`ArrivalSpec::OpenLoad`]: crate::scenario::ArrivalSpec::OpenLoad
//! [`MplSpec::AtLoss`]: crate::scenario::MplSpec::AtLoss
//! [`Scenario::run`]: crate::scenario::Scenario::run

use crate::driver::RunResult;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

type Slot = Arc<Mutex<Option<Arc<RunResult>>>>;

/// Memoizes reference/capacity runs keyed by
/// `(measurement kind, setup fingerprint, run config, seed)`.
///
/// Keys are the full textual fingerprint of everything the measurement
/// depends on (built by [`Driver::reference`](crate::Driver::reference)),
/// so distinct configurations can never collide.
#[derive(Debug, Default)]
pub struct MeasurementCache {
    slots: Mutex<HashMap<String, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MeasurementCache {
    /// An empty cache.
    pub fn new() -> MeasurementCache {
        MeasurementCache::default()
    }

    /// An empty cache behind the `Arc` every consumer wants.
    pub fn shared() -> Arc<MeasurementCache> {
        Arc::new(MeasurementCache::new())
    }

    /// Return the memoized result for `key`, or run `measure` to produce
    /// (and remember) it.
    ///
    /// The computation happens under a per-key lock: exactly one caller
    /// measures, concurrent callers for the same key block and then share
    /// the result, and callers for *different* keys proceed in parallel.
    pub fn get_or_measure(
        &self,
        key: String,
        measure: impl FnOnce() -> RunResult,
    ) -> Arc<RunResult> {
        let slot = {
            let mut slots = self.slots.lock().unwrap();
            slots.entry(key).or_default().clone()
        };
        let mut guard = slot.lock().unwrap();
        if let Some(cached) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(cached);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = Arc::new(measure());
        *guard = Some(Arc::clone(&result));
        result
    }

    /// Lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the measurement (= number of distinct keys).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized measurements.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{Driver, RunConfig};
    use xsched_workload::setup;

    fn quick_result(seed: u64) -> RunResult {
        let rc = RunConfig {
            warmup_txns: 20,
            measured_txns: 100,
            seed,
            ..Default::default()
        };
        Driver::new(setup(1)).with_config(rc).run(
            3,
            crate::driver::PolicyKind::Fifo,
            &xsched_workload::ArrivalProcess::saturated(100),
        )
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_bits() {
        let cache = MeasurementCache::new();
        let a = cache.get_or_measure("k".into(), || quick_result(1));
        let b = cache.get_or_measure("k".into(), || panic!("must not re-measure"));
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_measure_independently() {
        let cache = MeasurementCache::new();
        cache.get_or_measure("seed 1".into(), || quick_result(1));
        cache.get_or_measure("seed 2".into(), || quick_result(2));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_same_key_measures_exactly_once() {
        let cache = MeasurementCache::shared();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    cache.get_or_measure("shared".into(), || quick_result(7));
                });
            }
        });
        assert_eq!(cache.misses(), 1, "per-key lock serializes the measure");
        assert_eq!(cache.hits(), 7);
    }
}
