//! Experiment driver: workload + external scheduler + simulated DBMS.
//!
//! One [`Driver`] binds a Table-2 [`Setup`] to a run configuration and can
//! reproduce each experiment shape in the paper:
//!
//! * [`Driver::throughput_curve`] — throughput vs. MPL under the saturated
//!   closed system (Figs. 2–5),
//! * [`Driver::run`] with [`ArrivalProcess::Open`] — open-system response
//!   times at fixed load (§3.2),
//! * [`Driver::find_mpl_for_loss`] — the lowest MPL within a throughput
//!   budget (the per-setup tuning behind Fig. 11),
//! * [`Driver::priority_experiment`] — high/low/no-priority mean response
//!   times (Figs. 11–13's external bars),
//! * [`Driver::run_controller`] — a live controller session: calibration,
//!   queueing jump-start, observation/reaction until convergence (§4.3).
//!
//! Paired seeds: every run of a driver uses the same workload stream, so
//! comparisons across MPLs or policies are common-random-number paired.

use crate::cache::{MeasurementCache, MeasurementKey};
use crate::controller::{
    ControllerConfig, Decision, IterationRecord, MplController, Reference, Targets,
};
use crate::policy::{Fifo, PriorityFifo, QueuePolicy, QueuedTxn, Sjf, WeightedFair};
use crate::scheduler::ExternalScheduler;
use serde::Serialize;
use std::sync::Arc;
use xsched_dbms::txn::{PageId, Priority};
use xsched_dbms::{Completion, DbmsMetrics, DbmsSim, StepOutcome, Toggler};
use xsched_obs::{
    ControllerSeries, ControllerTick, LogHistogram, NoopTrace, TraceEvent, TraceSink,
};
use xsched_sim::{BatchMeans, Replications, SampleSet, SimRng, SimTime, Welford};
use xsched_workload::{ArrivalProcess, ChaosSpec, FlashSpec, Setup, TxnGen};

/// Length and bookkeeping of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct RunConfig {
    /// Completions discarded before measurement starts.
    pub warmup_txns: u64,
    /// Completions measured after warm-up.
    pub measured_txns: u64,
    /// Master seed (workload stream, service times, backoffs).
    pub seed: u64,
    /// Hard wall on simulated seconds (guards pathological configs).
    pub max_sim_time: f64,
    /// Measurement additionally waits until this much simulated time has
    /// passed (heavy-tailed workloads need the in-flight population of
    /// huge transactions to reach steady state, which takes far longer
    /// than `warmup_txns` completions).
    pub min_warmup_time: f64,
    /// Pre-populate the buffer pool with the hottest pages.
    pub warm_pool: bool,
    /// Fraction of transactions tagged high-priority (paper: 10%).
    pub high_fraction: f64,
    /// Number of independently-seeded batch-means sub-runs the *sweep
    /// executor* splits a plain fixed-MPL measurement into (see
    /// [`combine_subruns`]). `0` and `1` both mean "one run" — the
    /// default, whose output bytes are pinned by the golden tables. The
    /// [`Driver`] itself never reads this: a direct `Driver::run` (and
    /// every reference/capacity measurement) is always a single whole
    /// run, so enabling sub-runs never perturbs cached references.
    pub subruns: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup_txns: 300,
            measured_txns: 2_000,
            seed: 42,
            max_sim_time: 50_000.0,
            min_warmup_time: 0.0,
            warm_pool: true,
            high_fraction: 0.10,
            subruns: 1,
        }
    }
}

impl RunConfig {
    /// A shorter configuration for quick tests.
    pub fn quick() -> RunConfig {
        RunConfig {
            warmup_txns: 100,
            measured_txns: 600,
            ..Default::default()
        }
    }
}

/// External queue discipline selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PolicyKind {
    /// FIFO (no differentiation).
    Fifo,
    /// Two-class strict priority (§5.1).
    Priority,
    /// Shortest-job-first on estimated demand (extension).
    Sjf,
    /// Weighted fair sharing: 50% of dispatches to the high class while
    /// both are backlogged (extension; starvation-free).
    WeightedFair,
}

/// Completions per batch for the per-run batch-means response-time CI —
/// the controller's observation windows close at about this many
/// transactions (paper §4.3), so single-run CIs are computed at the same
/// scale the controller reacts on.
pub const BM_BATCH_TXNS: u64 = 100;

/// Measured outcome of one run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// MPL the run was executed with.
    pub mpl: u32,
    /// Throughput over the measurement window, txns/second.
    pub throughput: f64,
    /// Overall mean response time (external wait + DBMS time), seconds.
    pub mean_rt: f64,
    /// Mean response time of high-priority completions (0 if none).
    pub rt_high: f64,
    /// Mean response time of low-priority completions (0 if none).
    pub rt_low: f64,
    /// Measured high-priority completions.
    pub count_high: u64,
    /// Measured low-priority completions.
    pub count_low: u64,
    /// 95th percentile of overall response time, seconds.
    pub p95_rt: f64,
    /// Histogram-derived 95th percentile of overall response time,
    /// seconds. Computed from the mergeable log-bucketed histogram
    /// (`xsched-obs`), so it is quantized to bucket midpoints; the
    /// sample-exact `p95_rt` is unchanged and remains the figures'
    /// column.
    pub rt_p95: f64,
    /// Histogram-derived 99th percentile of overall response time,
    /// seconds (same quantization as `rt_p95`).
    pub rt_p99: f64,
    /// Squared coefficient of variation of response times.
    pub c2_rt: f64,
    /// 95% batch-means half-width of `mean_rt` over this *single* run
    /// (batches of [`BM_BATCH_TXNS`] completions, the controller's window
    /// scale) — infinite when the run is too short for two batches.
    pub rt_bm_half_width: f64,
    /// Mean time spent waiting in the external queue, seconds.
    pub mean_external_wait: f64,
    /// Mean time spent blocked in lock queues inside the DBMS, seconds.
    pub mean_lock_wait: f64,
    /// Abort events per measured completion.
    pub aborts_per_txn: f64,
    /// Resource-level metrics over the whole run.
    pub metrics: DbmsMetrics,
}

impl RunResult {
    /// Per-resource utilizations (CPU bank, then each data disk, then the
    /// log disk) — the inputs the controller's jump-start model wants.
    pub fn utilizations(&self, cpus: u32) -> Vec<f64> {
        let mut u = vec![self.metrics.cpu_utilization(cpus)];
        for d in &self.metrics.disk_busy {
            u.push(if self.metrics.elapsed > 0.0 {
                d / self.metrics.elapsed
            } else {
                0.0
            });
        }
        u.push(self.metrics.log_utilization());
        u
    }
}

/// Combine K independently-seeded sub-runs of one steady-state
/// measurement into a single [`RunResult`] — the reduction behind
/// `RunConfig::subruns` (see the sweep executor, which runs the sub-runs
/// on its worker pool and calls this in sub-run order).
///
/// Estimators, through the existing machinery:
///
/// * `mean_rt` and its companion `rt_bm_half_width` come from a
///   [`Replications`] accumulator over the sub-run means — each sub-run
///   is one replication, so the half-width is the Student-t CI on K−1
///   degrees of freedom (infinite for K = 1, like a too-short batch-means
///   run). `throughput` is the same replication mean over sub-run rates.
/// * Class means (`rt_high`, `rt_low`), wait times, percentile estimates,
///   and `aborts_per_txn` are completion-count-weighted means — for the
///   quantiles that is the mean-of-sub-run-quantiles estimator (each
///   sub-run's quantile is sample-exact; the combination is not, which is
///   the usual batch-quantile trade).
/// * `c2_rt` pools the per-sub-run moments: `Σnᵢ(vᵢ + mᵢ²)/n − m²`
///   over the pooled mean `m`, then divided by `m²`.
/// * Counters (`count_high`, `count_low`, every [`DbmsMetrics`] counter,
///   busy-seconds, `elapsed`) are summed, so utilization ratios remain
///   busy/elapsed over the union of the sub-runs.
///
/// Panics on an empty slice; a single part is returned unchanged (the
/// `--no-subruns` path never even calls this).
pub fn combine_subruns(parts: &[RunResult]) -> RunResult {
    assert!(!parts.is_empty(), "combine_subruns needs at least one part");
    if parts.len() == 1 {
        return parts[0].clone();
    }
    let counts: Vec<f64> = parts
        .iter()
        .map(|p| (p.count_high + p.count_low) as f64)
        .collect();
    let n: f64 = counts.iter().sum::<f64>().max(1.0);
    let weighted = |f: &dyn Fn(&RunResult) -> f64| -> f64 {
        parts
            .iter()
            .zip(&counts)
            .map(|(p, c)| f(p) * c)
            .sum::<f64>()
            / n
    };
    let class_mean = |rt: &dyn Fn(&RunResult) -> f64, cnt: &dyn Fn(&RunResult) -> u64| -> f64 {
        let total: u64 = parts.iter().map(cnt).sum();
        if total == 0 {
            return 0.0;
        }
        parts.iter().map(|p| rt(p) * cnt(p) as f64).sum::<f64>() / total as f64
    };

    let mut reps = Replications::new();
    for p in parts {
        reps.push("mean_rt", p.mean_rt);
        reps.push("throughput", p.throughput);
    }
    let rt_ci = reps.ci("mean_rt", 0.95);

    // Pooled second moment → pooled variance → squared CV.
    let pooled_mean = weighted(&|p| p.mean_rt);
    let ex2 = weighted(&|p| p.c2_rt * p.mean_rt * p.mean_rt + p.mean_rt * p.mean_rt);
    let pooled_var = (ex2 - pooled_mean * pooled_mean).max(0.0);
    let c2_rt = if pooled_mean > 0.0 {
        pooled_var / (pooled_mean * pooled_mean)
    } else {
        0.0
    };

    let mut metrics = parts[0].metrics.clone();
    for p in &parts[1..] {
        let m = &p.metrics;
        metrics.commits += m.commits;
        metrics.aborts += m.aborts;
        metrics.deadlock_aborts += m.deadlock_aborts;
        metrics.pow_aborts += m.pow_aborts;
        metrics.timeout_aborts += m.timeout_aborts;
        metrics.group_commits += m.group_commits;
        metrics.writebacks += m.writebacks;
        metrics.bp_hits += m.bp_hits;
        metrics.bp_misses += m.bp_misses;
        metrics.cpu_busy += m.cpu_busy;
        for (a, b) in metrics.disk_busy.iter_mut().zip(&m.disk_busy) {
            *a += b;
        }
        metrics.log_busy += m.log_busy;
        metrics.elapsed += m.elapsed;
    }

    RunResult {
        mpl: parts[0].mpl,
        throughput: reps.mean("throughput"),
        mean_rt: rt_ci.mean,
        rt_high: class_mean(&|p| p.rt_high, &|p| p.count_high),
        rt_low: class_mean(&|p| p.rt_low, &|p| p.count_low),
        count_high: parts.iter().map(|p| p.count_high).sum(),
        count_low: parts.iter().map(|p| p.count_low).sum(),
        p95_rt: weighted(&|p| p.p95_rt),
        rt_p95: weighted(&|p| p.rt_p95),
        rt_p99: weighted(&|p| p.rt_p99),
        c2_rt,
        rt_bm_half_width: rt_ci.half_width,
        mean_external_wait: weighted(&|p| p.mean_external_wait),
        mean_lock_wait: weighted(&|p| p.mean_lock_wait),
        aborts_per_txn: weighted(&|p| p.aborts_per_txn),
        metrics,
    }
}

/// High/low/no-priority comparison (one cluster of bars in Fig. 11).
#[derive(Debug, Clone, Serialize)]
pub struct PriorityOutcome {
    /// Setup id the experiment ran on.
    pub setup_id: u32,
    /// MPL chosen for the run (from the throughput-loss budget).
    pub mpl: u32,
    /// Mean response time of high-priority transactions, seconds.
    pub rt_high: f64,
    /// Mean response time of low-priority transactions, seconds.
    pub rt_low: f64,
    /// Mean response time with no prioritization and no MPL, seconds.
    pub rt_noprio: f64,
    /// Overall mean response time under prioritization, seconds.
    pub rt_overall: f64,
    /// Reference (MPL-less) throughput, txns/second.
    pub reference_tput: f64,
    /// Throughput achieved under the chosen MPL, txns/second.
    pub achieved_tput: f64,
}

impl PriorityOutcome {
    /// Differentiation factor between the classes (paper: ≈ 12× at 5%
    /// loss, ≈ 16–18× at 20%).
    pub fn differentiation(&self) -> f64 {
        if self.rt_high == 0.0 {
            0.0
        } else {
            self.rt_low / self.rt_high
        }
    }

    /// Low-priority penalty relative to no prioritization (paper: ≈ 1.16
    /// at 5% loss, ≈ 1.37 at 20%).
    pub fn low_penalty(&self) -> f64 {
        if self.rt_noprio == 0.0 {
            0.0
        } else {
            self.rt_low / self.rt_noprio
        }
    }
}

/// Result of a live controller session.
#[derive(Debug, Clone, Serialize)]
pub struct ControllerOutcome {
    /// MPL the controller settled on.
    pub final_mpl: u32,
    /// Observation/reaction iterations used (paper: < 10).
    pub iterations: u32,
    /// Jump-start value the queueing models supplied.
    pub jumpstart_mpl: u32,
    /// Reference performance from the calibration run.
    pub reference_tput: f64,
    /// Reference mean response time, seconds.
    pub reference_rt: f64,
    /// Whether the session converged within its budget.
    pub converged: bool,
    /// Observation windows thrown away because their throughput fell
    /// below the controller's `min_load_fraction` floor — a long run of
    /// these under steady traffic means the controller is frozen, not
    /// collecting.
    pub discarded_windows: u32,
    /// Per-window history (MPL in force, throughput, response time,
    /// verdict).
    pub trace: Vec<IterationRecord>,
}

/// Robustness metrics of one chaos session (see [`Driver::run_chaos`]).
///
/// A chaos session converges the controller on the healthy system, lets
/// the spec's injectors fire at the onset instant, and keeps observing
/// until the session's transaction budget runs out. The reaction and
/// overshoot metrics quantify how the §4.3 feedback loop rides out the
/// regime change.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosOutcome {
    /// MPL setpoint in force when the session ended.
    pub final_mpl: u32,
    /// Highest setpoint in force in any post-onset window (at least
    /// `final_mpl`).
    pub peak_mpl: u32,
    /// Peak post-onset excursion past the new fixed point:
    /// `peak_mpl − final_mpl`.
    pub overshoot: u32,
    /// Observation windows after onset until the controller entered the
    /// converged stretch it then *stayed* in — its reaction time in
    /// windows. `1` when the fault never dislodged it (the first
    /// post-onset window re-affirmed convergence); equal to
    /// `post_onset_windows` (censored) when it never re-settled.
    pub reaction_windows: u32,
    /// Observation windows closed after the onset instant.
    pub post_onset_windows: u32,
    /// Whether the controller ended the session converged.
    pub converged: bool,
    /// Total observation/reaction iterations over the whole session.
    pub iterations: u32,
    /// Low-load windows discarded over the whole session (a string of
    /// these is the signature of a stalled DBMS, not an idle client).
    pub discarded_windows: u32,
    /// Healthy-system reference throughput from calibration, txns/s.
    pub reference_tput: f64,
}

/// Per-session accumulators behind [`ChaosOutcome`], filled by
/// `run_inner` as controller windows close. Zero when no chaos spec is
/// attached.
#[derive(Debug, Clone, Copy, Default)]
struct ChaosWindowStats {
    post_onset_windows: u32,
    /// First post-onset window index (1-based) of the convergence
    /// stretch the controller is still in; reset whenever it unconverges.
    reaction_candidate: Option<u32>,
    peak_mpl: u32,
}

/// Client-side chaos in force during a run: the MMPP burst modulator
/// and the flash-crowd ramp, both dividing arrival delays. Built only
/// for chaos sessions with a traffic-side injector enabled; every other
/// path computes delays exactly as before (byte-identity).
struct TrafficShaper {
    burst: Option<(Toggler, f64)>,
    flash: Option<FlashSpec>,
    onset: f64,
}

impl TrafficShaper {
    fn new(spec: &ChaosSpec, seed: u64) -> Option<TrafficShaper> {
        if spec.burst.is_none() && spec.flash.is_none() {
            return None;
        }
        let burst = spec.burst.map(|b| {
            let rng = SimRng::derive(seed, "chaos/burst");
            (
                Toggler::new(rng, b.mean_on, b.mean_off, spec.onset),
                b.factor,
            )
        });
        Some(TrafficShaper {
            burst,
            flash: spec.flash,
            onset: spec.onset,
        })
    }

    /// Divisor applied to the next arrival delay (≥ 1 for the specs the
    /// experiments use). Polling the burst modulator emits one
    /// [`TraceEvent::ChaosBurst`] per phase flip; its flip schedule is
    /// consultation-independent, so lazy polling keeps bit-determinism.
    fn divisor<T: TraceSink>(&mut self, now: f64, trace: &mut T) -> f64 {
        let mut div = 1.0;
        if let Some((tog, factor)) = self.burst.as_mut() {
            while let Some((t, active)) = tog.poll(now) {
                trace.record(TraceEvent::ChaosBurst {
                    t,
                    factor: if active { *factor } else { 1.0 },
                });
            }
            if tog.is_active() {
                div *= *factor;
            }
        }
        if let Some(f) = self.flash {
            if now >= self.onset {
                let ramp = if f.ramp_secs <= 0.0 {
                    1.0
                } else {
                    ((now - self.onset) / f.ramp_secs).min(1.0)
                };
                div *= 1.0 + (f.surge_mult - 1.0) * ramp;
            }
        }
        div
    }
}

/// Binds a setup to a run configuration; all experiments hang off this.
pub struct Driver {
    setup: Setup,
    rc: RunConfig,
    cache: Option<Arc<MeasurementCache>>,
    /// Wall-clock seconds this driver spent *computing* reference
    /// (capacity) runs — cache hits cost nothing. Observational: feeds
    /// the `ref/`-bucket timing telemetry, never a result.
    ref_secs: std::cell::Cell<f64>,
    /// Simulator events processed across every run this driver executed —
    /// a deterministic cost signal (pure in the inputs, unlike wall
    /// clock). Observational: feeds the host-independent calibration
    /// telemetry, never a result.
    events: std::cell::Cell<u64>,
    /// The share of `events` spent computing reference runs (cache hits
    /// cost nothing), split out for the same reason as `ref_secs`.
    ref_events: std::cell::Cell<u64>,
}

impl Driver {
    /// Driver with the default run configuration.
    pub fn new(setup: Setup) -> Driver {
        Driver {
            setup,
            rc: RunConfig::default(),
            cache: None,
            ref_secs: std::cell::Cell::new(0.0),
            events: std::cell::Cell::new(0),
            ref_events: std::cell::Cell::new(0),
        }
    }

    /// Override the run configuration.
    pub fn with_config(mut self, rc: RunConfig) -> Driver {
        self.rc = rc;
        self
    }

    /// Serve [`Driver::reference`] through a shared measurement cache.
    /// Cached results are bit-identical to uncached ones (a reference run
    /// is a pure function of the cache key), so this only changes
    /// wall-clock time.
    pub fn with_cache(mut self, cache: Arc<MeasurementCache>) -> Driver {
        self.cache = Some(cache);
        self
    }

    /// The bound setup.
    pub fn setup(&self) -> &Setup {
        &self.setup
    }

    fn make_policy(&self, kind: PolicyKind) -> Box<dyn QueuePolicy> {
        match kind {
            PolicyKind::Fifo => Box::new(Fifo::new()),
            PolicyKind::Priority => Box::new(PriorityFifo::new()),
            PolicyKind::Sjf => Box::new(Sjf::new(self.setup.hw.disk_read_time)),
            PolicyKind::WeightedFair => Box::new(WeightedFair::new(0.5)),
        }
    }

    /// Execute one run at the given MPL, policy and arrival process.
    pub fn run(&self, mpl: u32, kind: PolicyKind, arrivals: &ArrivalProcess) -> RunResult {
        self.run_inner(mpl, kind, arrivals, None, None, None, NoopTrace)
            .0
    }

    /// Execute one run with a trace sink attached to the simulator,
    /// returning the sink alongside the result. Tracing is strictly
    /// observational: the [`RunResult`] is bit-identical to the one
    /// [`Driver::run`] produces for the same arguments.
    pub fn run_traced<T: TraceSink>(
        &self,
        mpl: u32,
        kind: PolicyKind,
        arrivals: &ArrivalProcess,
        trace: T,
    ) -> (RunResult, T) {
        let (result, _, trace, _) = self.run_inner(mpl, kind, arrivals, None, None, None, trace);
        (result, trace)
    }

    /// The saturated closed system of the throughput experiments.
    pub fn saturated(&self) -> ArrivalProcess {
        ArrivalProcess::saturated(self.setup.clients)
    }

    /// Run without an effective MPL (limit = client population): the
    /// paper's "original system" baseline.
    ///
    /// When a [`MeasurementCache`] is attached ([`Driver::with_cache`])
    /// this measurement is memoized under the full
    /// `(setup, run config, seed)` fingerprint — the sweep layer attaches
    /// one cache per sweep, so open-load grids resolve each setup's
    /// capacity once per seed instead of once per cell.
    pub fn reference(&self) -> RunResult {
        let measure = || {
            let started = std::time::Instant::now();
            let events_before = self.events.get();
            let r = self.run(self.setup.clients, PolicyKind::Fifo, &self.saturated());
            self.ref_secs
                .set(self.ref_secs.get() + started.elapsed().as_secs_f64());
            self.ref_events
                .set(self.ref_events.get() + (self.events.get() - events_before));
            r
        };
        match &self.cache {
            Some(cache) => {
                // Typed key: the setup's structural fingerprint plus every
                // run-config field (seed included) verbatim. Unlike the
                // Debug-formatted string this replaced, the constructor
                // fails to compile if a config field is added without
                // joining the key, so distinct configurations cannot
                // silently alias.
                let key = MeasurementKey::reference(&self.setup, &self.rc);
                (*cache.get_or_measure(key, measure)).clone()
            }
            None => measure(),
        }
    }

    /// Wall-clock seconds this driver spent computing (not cache-serving)
    /// reference runs so far — the timing telemetry uses this to bill
    /// capacity measurements to a `ref/` bucket instead of inflating the
    /// cell that happened to miss the cache.
    pub fn reference_compute_secs(&self) -> f64 {
        self.ref_secs.get()
    }

    /// Simulator events processed by every run this driver executed so
    /// far. Deterministic in the runs performed — the host-independent
    /// analogue of wall-clock seconds for cost calibration.
    pub fn events_processed(&self) -> u64 {
        self.events.get()
    }

    /// The share of [`Driver::events_processed`] spent *computing*
    /// reference runs (cache hits cost nothing) — split out so capacity
    /// events bill to a `ref/` bucket exactly like reference seconds.
    pub fn reference_compute_events(&self) -> u64 {
        self.ref_events.get()
    }

    /// Throughput (and everything else) at each MPL in `mpls`, saturated
    /// closed system, FIFO queue — one curve of Figs. 2–5.
    pub fn throughput_curve(&self, mpls: &[u32]) -> Vec<RunResult> {
        mpls.iter()
            .map(|&m| self.run(m, PolicyKind::Fifo, &self.saturated()))
            .collect()
    }

    /// Lowest MPL whose throughput is within `loss` of the MPL-less
    /// reference. Returns `(mpl, reference_run)`. Exponential then binary
    /// search over the (noisily) monotone throughput curve; all runs share
    /// the seed, so comparisons are paired.
    pub fn find_mpl_for_loss(&self, loss: f64) -> (u32, RunResult) {
        let reference = self.reference();
        let target = (1.0 - loss) * reference.throughput;
        let arr = self.saturated();
        let feasible =
            |mpl: u32| -> bool { self.run(mpl, PolicyKind::Fifo, &arr).throughput >= target };
        let cap = self.setup.clients;
        // Exponential probe upward.
        let mut hi = 1u32;
        while hi < cap && !feasible(hi) {
            hi = (hi * 2).min(cap);
        }
        if hi <= 1 {
            return (1, reference);
        }
        let mut lo = hi / 2; // known infeasible (or 0)
                             // Binary search the boundary in (lo, hi].
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        (hi, reference)
    }

    /// The Fig. 11 experiment on this setup: choose the MPL for the given
    /// throughput-loss budget, run two-class priority scheduling, and
    /// compare with the no-priority MPL-less baseline.
    pub fn priority_experiment(&self, loss: f64) -> PriorityOutcome {
        let (mpl, reference) = self.find_mpl_for_loss(loss);
        let arr = self.saturated();
        let prio = self.run(mpl, PolicyKind::Priority, &arr);
        PriorityOutcome {
            setup_id: self.setup.id,
            mpl,
            rt_high: prio.rt_high,
            rt_low: prio.rt_low,
            rt_noprio: reference.mean_rt,
            rt_overall: prio.mean_rt,
            reference_tput: reference.throughput,
            achieved_tput: prio.throughput,
        }
    }

    /// A live controller session (§4.3): calibrate against the MPL-less
    /// system, jump-start from the queueing models, then observe/react
    /// until convergence.
    pub fn run_controller(&self, targets: Targets) -> ControllerOutcome {
        self.run_controller_with_start(targets, None)
    }

    /// Controller session with an explicit starting MPL (used by the
    /// jump-start-vs-cold-start ablation). `None` = use the queueing
    /// jump-start.
    pub fn run_controller_with_start(
        &self,
        targets: Targets,
        start: Option<u32>,
    ) -> ControllerOutcome {
        self.controller_session(targets, start, None)
    }

    /// Controller session that additionally captures a per-reaction
    /// telemetry time series: at every controller decision the MPL
    /// setpoint left in force, the external queue length, and the
    /// throughput and response-time percentiles of the observation
    /// window that just closed. The series is a pure function of
    /// `(setup, run config, targets, start)` and the returned
    /// [`ControllerOutcome`] is bit-identical to
    /// [`Driver::run_controller_with_start`].
    pub fn run_controller_with_series(
        &self,
        targets: Targets,
        start: Option<u32>,
    ) -> (ControllerOutcome, ControllerSeries) {
        let mut series = ControllerSeries::with_capacity(64);
        let out = self.controller_session(targets, start, Some(&mut series));
        (out, series)
    }

    /// Calibrate against the MPL-less system and build the jump-started
    /// controller — the shared prelude of every controller-driven
    /// session. Returns `(controller, jumpstart_mpl, reference_run)`.
    fn calibrated_controller(
        &self,
        targets: Targets,
        start: Option<u32>,
    ) -> (MplController, u32, RunResult) {
        let reference = self.reference();
        let cpus = self.setup.hw.cpus;
        let utils = reference.utilizations(cpus);
        // Demand statistics for the response-time model: analytic mix C²,
        // with the effective page cost discounted by the observed hit
        // ratio.
        let io_cost = self.setup.hw.disk_read_time * (1.0 - reference.metrics.hit_ratio());
        let (dmean, dc2) = self.setup.workload.intrinsic_demand_stats(io_cost);
        let cfg = ControllerConfig {
            targets,
            max_mpl: self.setup.clients,
            ..Default::default()
        };
        let jump = MplController::jumpstart(
            &utils,
            targets,
            dmean,
            dc2,
            reference.throughput,
            cfg.max_mpl,
        );
        let reference_ctl = Reference {
            throughput: reference.throughput,
            mean_rt: reference.mean_rt,
        };
        let initial = start.unwrap_or(jump);
        (
            MplController::new(cfg, reference_ctl, initial),
            jump,
            reference,
        )
    }

    fn controller_session(
        &self,
        targets: Targets,
        start: Option<u32>,
        series: Option<&mut ControllerSeries>,
    ) -> ControllerOutcome {
        let (controller, jump, reference) = self.calibrated_controller(targets, start);
        let initial = controller.mpl();
        let (_, ctl, _, _) = self.run_inner(
            initial,
            PolicyKind::Fifo,
            &self.saturated(),
            None,
            Some(controller),
            series,
            NoopTrace,
        );
        let ctl = ctl.expect("controller returned");
        ControllerOutcome {
            final_mpl: ctl.mpl(),
            iterations: ctl.iterations(),
            jumpstart_mpl: jump,
            reference_tput: reference.throughput,
            reference_rt: reference.mean_rt,
            converged: ctl.is_converged(),
            discarded_windows: ctl.discarded_windows(),
            trace: ctl.trace().to_vec(),
        }
    }

    /// A chaos robustness session: calibrate and jump-start as in
    /// [`Driver::run_controller`], let the spec's injectors wake at
    /// `spec.onset`, and keep the controller observing until
    /// `spec.session_txns` measured completions (the usual convergence
    /// break is disabled so post-onset behaviour stays visible). The
    /// outcome reports reaction time and overshoot for the fault.
    pub fn run_chaos(
        &self,
        spec: &ChaosSpec,
        targets: Targets,
        start: Option<u32>,
    ) -> ChaosOutcome {
        self.chaos_session(spec, targets, start, None)
    }

    /// [`Driver::run_chaos`] plus the per-window telemetry series, for
    /// figure rendering and golden pinning. The outcome is bit-identical
    /// to the series-less call.
    pub fn run_chaos_with_series(
        &self,
        spec: &ChaosSpec,
        targets: Targets,
        start: Option<u32>,
    ) -> (ChaosOutcome, ControllerSeries) {
        let mut series = ControllerSeries::with_capacity(128);
        let out = self.chaos_session(spec, targets, start, Some(&mut series));
        (out, series)
    }

    fn chaos_session(
        &self,
        spec: &ChaosSpec,
        targets: Targets,
        start: Option<u32>,
        series: Option<&mut ControllerSeries>,
    ) -> ChaosOutcome {
        let (controller, _, reference) = self.calibrated_controller(targets, start);
        let initial = controller.mpl();
        // Traffic-side chaos needs think-time headroom to act on: a
        // saturated (zero-think) closed population cannot burst, so chaos
        // rows override the think distribution.
        let arrivals = match &spec.think {
            Some(think) => ArrivalProcess::Closed {
                clients: self.setup.clients,
                think: think.clone(),
            },
            None => self.saturated(),
        };
        let (_, ctl, _, stats) = self.run_inner(
            initial,
            PolicyKind::Fifo,
            &arrivals,
            Some(spec),
            Some(controller),
            series,
            NoopTrace,
        );
        let ctl = ctl.expect("controller returned");
        let final_mpl = ctl.mpl();
        let peak_mpl = stats.peak_mpl.max(final_mpl);
        let reaction_windows = match stats.reaction_candidate {
            Some(w) => w,
            // Never dislodged (stayed in its pre-onset convergence).
            None if ctl.is_converged() => 0,
            // Never re-settled: censor at the post-onset window count.
            None => stats.post_onset_windows,
        };
        ChaosOutcome {
            final_mpl,
            peak_mpl,
            overshoot: peak_mpl - final_mpl,
            reaction_windows,
            post_onset_windows: stats.post_onset_windows,
            converged: ctl.is_converged(),
            iterations: ctl.iterations(),
            discarded_windows: ctl.discarded_windows(),
            reference_tput: reference.throughput,
        }
    }

    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn run_inner<T: TraceSink>(
        &self,
        mpl: u32,
        kind: PolicyKind,
        arrivals: &ArrivalProcess,
        chaos: Option<&ChaosSpec>,
        mut controller: Option<MplController>,
        mut series: Option<&mut ControllerSeries>,
        trace: T,
    ) -> (RunResult, Option<MplController>, T, ChaosWindowStats) {
        // Closes one controller observation window into a telemetry tick
        // and resets the window accumulators. The next window is anchored
        // at *this* close instant (mirroring the controller's own window
        // spans), so idle time after a reaction counts against the next
        // window's throughput instead of silently vanishing.
        fn close_tick(
            series: &mut ControllerSeries,
            win_hist: &mut LogHistogram,
            win_count: &mut u64,
            win_start: &mut f64,
            now: f64,
            mpl: u32,
            queue_len: u64,
        ) {
            let span = (now - *win_start).max(1e-9);
            series.push(ControllerTick {
                t: now,
                mpl,
                queue_len,
                throughput: *win_count as f64 / span,
                rt_p50: win_hist.quantile(0.50),
                rt_p95: win_hist.quantile(0.95),
                rt_p99: win_hist.quantile(0.99),
            });
            *win_hist = LogHistogram::new();
            *win_count = 0;
            *win_start = now;
        }

        let rc = &self.rc;
        let setup = &self.setup;
        let mut sim = DbmsSim::with_trace(setup.hw.clone(), setup.cfg.clone(), rc.seed, trace);
        // Service-side faults attach only when an injector is enabled, so
        // a quiet chaos spec leaves the simulator byte-identical to a
        // non-chaos run (each injector is additionally self-gating).
        if let Some(ch) = chaos {
            if !ch.faults.is_noop() {
                sim = sim.with_chaos(ch.faults, ch.onset, rc.seed);
            }
        }
        let mut shaper = chaos.and_then(|ch| TrafficShaper::new(ch, rc.seed));
        if rc.warm_pool {
            let n = setup.hw.bufferpool_pages.min(setup.workload.db_pages);
            // Zipf favours low page ids, so the first `n` pages are the
            // steady-state-hot set.
            sim.warm_bufferpool((0..n).rev().map(PageId));
        }
        let mut gen =
            TxnGen::new(setup.workload.clone(), rc.seed).with_high_fraction(rc.high_fraction);
        let mut sched = ExternalScheduler::new(self.make_policy(kind), mpl);
        let mut arr_rng = SimRng::derive(rc.seed, "arrivals");

        // Seed the arrival process.
        match arrivals {
            ArrivalProcess::Closed { clients, .. } => {
                for _ in 0..*clients {
                    let mut d = arrivals.next_delay(&mut arr_rng);
                    if let Some(sh) = shaper.as_mut() {
                        d /= sh.divisor(0.0, sim.trace_mut());
                    }
                    sim.schedule_external(SimTime::from_secs_f64(d), 0);
                }
            }
            ArrivalProcess::Open { .. } => {
                let mut d = arrivals.next_delay(&mut arr_rng);
                if let Some(sh) = shaper.as_mut() {
                    d /= sh.divisor(0.0, sim.trace_mut());
                }
                sim.schedule_external(SimTime::from_secs_f64(d), 0);
            }
        }

        // When a controller drives the run, keep running until it
        // converges (or a generous completion budget runs out). Chaos
        // sessions instead run out their explicit budget: convergence
        // must not end them, or the post-onset behaviour would vanish.
        let measured_budget = match (chaos, controller.is_some()) {
            (Some(ch), _) => ch.session_txns,
            (None, true) => 100 * 1_000,
            (None, false) => rc.measured_txns,
        };

        let mut completed: u64 = 0;
        let mut measuring = false;
        let mut meas_start_t = 0.0;
        let mut meas_end_t = 0.0;
        let mut rt_all = Welford::new();
        let mut rt_bm = BatchMeans::new(BM_BATCH_TXNS);
        let mut rt_hi = Welford::new();
        let mut rt_lo = Welford::new();
        let mut ext_wait = Welford::new();
        let mut lock_wait = Welford::new();
        let mut samples = SampleSet::new();
        let mut rt_hist = LogHistogram::new();
        // Per-observation-window accumulators for the controller
        // telemetry series (only touched when `series` is attached).
        let mut win_hist = LogHistogram::new();
        let mut win_count: u64 = 0;
        let mut win_start = 0.0f64;
        let mut win_started = false;
        let mut chaos_stats = ChaosWindowStats::default();
        let mut aborts_at_meas_start = 0u64;
        // Ping-pong buffer for completions: `drain_completions_into` swaps
        // it with the simulator's accumulation buffer, so the steady-state
        // loop never allocates.
        let mut completions: Vec<Completion> = Vec::new();

        'outer: loop {
            match sim.step() {
                StepOutcome::Idle => break,
                StepOutcome::External(_) => {
                    let body = gen.next();
                    let now = sim.now();
                    sched.enqueue(QueuedTxn { body, arrival: now });
                    while let Some(q) = sched.dispatch() {
                        sim.submit(q.body, q.arrival);
                    }
                    if let ArrivalProcess::Open { .. } = arrivals {
                        let mut d = arrivals.next_delay(&mut arr_rng);
                        if let Some(sh) = shaper.as_mut() {
                            d /= sh.divisor(sim.now(), sim.trace_mut());
                        }
                        sim.schedule_external(SimTime::from_secs_f64(sim.now() + d), 0);
                    }
                }
                StepOutcome::Advanced => {
                    sim.drain_completions_into(&mut completions);
                    if completions.is_empty() {
                        continue;
                    }
                    for c in completions.drain(..) {
                        completed += 1;
                        sched.complete();
                        if arrivals.is_closed() {
                            let mut d = arrivals.next_delay(&mut arr_rng);
                            if let Some(sh) = shaper.as_mut() {
                                d /= sh.divisor(sim.now(), sim.trace_mut());
                            }
                            sim.schedule_external(SimTime::from_secs_f64(sim.now() + d), 0);
                        }
                        if !measuring
                            && completed >= rc.warmup_txns
                            && c.completed >= rc.min_warmup_time
                        {
                            measuring = true;
                            meas_start_t = c.completed;
                            aborts_at_meas_start = sim.metrics().aborts;
                        } else if measuring {
                            let rt = c.response_time();
                            rt_all.push(rt);
                            rt_bm.push(rt);
                            samples.push(rt);
                            rt_hist.record(rt);
                            ext_wait.push(c.external_wait());
                            lock_wait.push(c.lock_wait);
                            match c.priority {
                                Priority::High => rt_hi.push(rt),
                                Priority::Low => rt_lo.push(rt),
                            }
                            meas_end_t = c.completed;
                            if let Some(ctl) = controller.as_mut() {
                                ctl.observe(c.completed, rt);
                                // The very first window starts at the
                                // first observed completion (like the
                                // controller's); every later one at the
                                // previous decision's close.
                                if !win_started {
                                    win_started = true;
                                    win_start = c.completed;
                                }
                                win_count += 1;
                                if series.is_some() {
                                    win_hist.record(rt);
                                }
                                if let Some(d) = ctl.react(c.completed) {
                                    match d {
                                        Decision::SetMpl(m) | Decision::Converged(m) => {
                                            sched.set_mpl(m);
                                        }
                                        Decision::Discarded => {
                                            // Starved window thrown away:
                                            // the setpoint stands, but the
                                            // event is visible in the trace
                                            // instead of masquerading as
                                            // "still collecting".
                                            let span = (c.completed - win_start).max(1e-9);
                                            sim.trace_mut().record(TraceEvent::ControllerDiscard {
                                                t: c.completed,
                                                throughput: win_count as f64 / span,
                                            });
                                        }
                                    }
                                    if let Some(s) = series.as_deref_mut() {
                                        close_tick(
                                            s,
                                            &mut win_hist,
                                            &mut win_count,
                                            &mut win_start,
                                            c.completed,
                                            sched.mpl(),
                                            sched.queue_len() as u64,
                                        );
                                    } else {
                                        win_count = 0;
                                        win_start = c.completed;
                                    }
                                    if let Some(ch) = chaos {
                                        if c.completed >= ch.onset {
                                            chaos_stats.post_onset_windows += 1;
                                            chaos_stats.peak_mpl =
                                                chaos_stats.peak_mpl.max(sched.mpl());
                                            if ctl.is_converged() {
                                                chaos_stats
                                                    .reaction_candidate
                                                    .get_or_insert(chaos_stats.post_onset_windows);
                                            } else {
                                                chaos_stats.reaction_candidate = None;
                                            }
                                        }
                                    }
                                    if matches!(d, Decision::Converged(_)) && chaos.is_none() {
                                        break 'outer;
                                    }
                                }
                            }
                        }
                        if rt_all.count() >= measured_budget {
                            break 'outer;
                        }
                    }
                    while let Some(q) = sched.dispatch() {
                        sim.submit(q.body, q.arrival);
                    }
                }
            }
            if sim.now() > rc.max_sim_time {
                break;
            }
        }

        self.events.set(self.events.get() + sim.events_processed());
        let metrics = sim.metrics();
        let span = (meas_end_t - meas_start_t).max(1e-9);
        let measured = rt_all.count();
        let result = RunResult {
            mpl,
            throughput: measured as f64 / span,
            mean_rt: rt_all.mean(),
            rt_high: rt_hi.mean(),
            rt_low: rt_lo.mean(),
            count_high: rt_hi.count(),
            count_low: rt_lo.count(),
            p95_rt: samples.percentile(0.95),
            rt_p95: rt_hist.quantile(0.95),
            rt_p99: rt_hist.quantile(0.99),
            c2_rt: rt_all.c2(),
            rt_bm_half_width: rt_bm.ci(0.95).half_width,
            mean_external_wait: ext_wait.mean(),
            mean_lock_wait: lock_wait.mean(),
            aborts_per_txn: if measured == 0 {
                0.0
            } else {
                (metrics.aborts.saturating_sub(aborts_at_meas_start)) as f64 / measured as f64
            },
            metrics,
        };
        (result, controller, sim.into_trace(), chaos_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsched_workload::setup;

    fn quick_driver(id: u32) -> Driver {
        Driver::new(setup(id)).with_config(RunConfig::quick())
    }

    #[test]
    fn cpu_bound_throughput_rises_then_flattens() {
        let d = quick_driver(1);
        let curve = d.throughput_curve(&[1, 2, 5, 20]);
        let x1 = curve[0].throughput;
        let x5 = curve[2].throughput;
        let x20 = curve[3].throughput;
        assert!(
            x5 > 1.5 * x1,
            "MPL 5 should beat MPL 1 clearly: {x1} vs {x5}"
        );
        assert!(
            (x20 - x5).abs() / x5 < 0.25,
            "MPL 20 is near the plateau: {x5} vs {x20}"
        );
    }

    #[test]
    fn two_cpus_need_higher_mpl_and_give_more_throughput() {
        let one = quick_driver(1).run(20, PolicyKind::Fifo, &ArrivalProcess::saturated(100));
        let two = quick_driver(2).run(20, PolicyKind::Fifo, &ArrivalProcess::saturated(100));
        assert!(
            two.throughput > 1.4 * one.throughput,
            "2 CPUs: {} vs {}",
            two.throughput,
            one.throughput
        );
    }

    #[test]
    fn priority_policy_differentiates() {
        let d = quick_driver(1);
        let r = d.run(3, PolicyKind::Priority, &d.saturated());
        assert!(r.count_high > 0 && r.count_low > 0);
        assert!(
            r.rt_low > 3.0 * r.rt_high,
            "low {} vs high {}",
            r.rt_low,
            r.rt_high
        );
    }

    #[test]
    fn find_mpl_for_loss_returns_feasible_boundary() {
        let d = quick_driver(1);
        let (mpl, reference) = d.find_mpl_for_loss(0.20);
        assert!((1..100).contains(&mpl));
        let at = d.run(mpl, PolicyKind::Fifo, &d.saturated()).throughput;
        assert!(
            at >= 0.78 * reference.throughput,
            "{at} vs {}",
            reference.throughput
        );
    }

    #[test]
    fn controller_converges_quickly() {
        let d = quick_driver(1);
        let out = d.run_controller(Targets::twenty_percent());
        assert!(out.converged, "controller failed to converge: {out:?}");
        assert!(
            out.iterations < 10,
            "paper bound: {} iterations",
            out.iterations
        );
        assert!(out.final_mpl >= 1);
    }

    #[test]
    fn open_system_response_time_flattens_with_mpl() {
        // §3.2: open system, load 0.7 — response time insensitive to the
        // MPL above a small threshold for TPC-C.
        let d = quick_driver(1);
        let capacity = d.reference().throughput;
        let arr = ArrivalProcess::open(0.7 * capacity);
        let r4 = d.run(4, PolicyKind::Fifo, &arr);
        let r30 = d.run(30, PolicyKind::Fifo, &arr);
        assert!(
            r4.mean_rt < 2.0 * r30.mean_rt,
            "TPC-C at load 0.7 barely cares about MPL>=4: {} vs {}",
            r4.mean_rt,
            r30.mean_rt
        );
    }

    #[test]
    fn weighted_fair_sits_between_fifo_and_strict_priority() {
        // At the paper's 10% high-priority fraction the high class rarely
        // saturates its 50% dispatch share, so WF ≈ strict for the low
        // class — the orderings are only identifiable in the regimes that
        // exercise them. High-class ordering at 10% high traffic:
        let d = quick_driver(1);
        let arr = d.saturated();
        let fifo = d.run(3, PolicyKind::Fifo, &arr);
        let wf = d.run(3, PolicyKind::WeightedFair, &arr);
        let strict = d.run(3, PolicyKind::Priority, &arr);
        assert!(strict.rt_high < wf.rt_high, "strict beats WF for high");
        assert!(wf.rt_high < fifo.rt_high, "WF beats FIFO for high");
        // Low-class protection at 50% high traffic, where strict priority
        // actually starves the low class and WF's guaranteed share bites.
        let rc = RunConfig {
            high_fraction: 0.5,
            ..RunConfig::quick()
        };
        let d = Driver::new(xsched_workload::setup(1)).with_config(rc);
        let wf = d.run(3, PolicyKind::WeightedFair, &arr);
        let strict = d.run(3, PolicyKind::Priority, &arr);
        assert!(wf.rt_low < strict.rt_low, "WF kinder to low than strict");
    }

    #[test]
    fn paired_seeds_make_runs_reproducible() {
        let d = quick_driver(1);
        let a = d.run(5, PolicyKind::Fifo, &d.saturated());
        let b = d.run(5, PolicyKind::Fifo, &d.saturated());
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(a.mean_rt.to_bits(), b.mean_rt.to_bits());
    }

    #[test]
    fn histogram_percentiles_track_sample_percentile() {
        let d = quick_driver(1);
        let r = d.run(5, PolicyKind::Fifo, &d.saturated());
        // Log-bucket quantization is < 1/32 of a binade, so the histogram
        // p95 must land within a few percent of the sample-exact one, and
        // the tail ordering must hold.
        assert!(r.rt_p95 > 0.0 && r.p95_rt > 0.0);
        assert!(
            (r.rt_p95 - r.p95_rt).abs() / r.p95_rt < 0.05,
            "hist p95 {} vs sample p95 {}",
            r.rt_p95,
            r.p95_rt
        );
        assert!(r.rt_p99 >= r.rt_p95);
    }

    #[test]
    fn tracing_never_changes_run_results() {
        let d = quick_driver(1);
        let arr = d.saturated();
        let plain = d.run(4, PolicyKind::Priority, &arr);
        let (traced, sink) = d.run_traced(
            4,
            PolicyKind::Priority,
            &arr,
            xsched_dbms::CountingSink::default(),
        );
        assert!(sink.total > 0, "a saturated run must emit trace events");
        assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
        assert_eq!(plain.throughput.to_bits(), traced.throughput.to_bits());
        assert_eq!(plain.rt_p99.to_bits(), traced.rt_p99.to_bits());
    }

    #[test]
    fn controller_series_is_deterministic_and_matches_outcome() {
        let d = quick_driver(1);
        let (out_a, series_a) = d.run_controller_with_series(Targets::twenty_percent(), None);
        let (out_b, series_b) = d.run_controller_with_series(Targets::twenty_percent(), None);
        assert_eq!(series_a.encode_text(), series_b.encode_text());
        assert!(!series_a.is_empty(), "a converging session emits ticks");
        // The series must not perturb the session itself.
        let plain = d.run_controller(Targets::twenty_percent());
        assert_eq!(format!("{plain:?}"), format!("{out_a:?}"));
        assert_eq!(format!("{out_a:?}"), format!("{out_b:?}"));
        // The last tick carries the setpoint the session settled on.
        let last = series_a.ticks.last().unwrap();
        assert_eq!(last.mpl, out_a.final_mpl);
    }

    #[test]
    fn quiet_chaos_extends_the_controller_session() {
        // A chaos session with every injector disabled replays the plain
        // controller session tick for tick — the only difference is that
        // it keeps observing past convergence instead of breaking. The
        // plain session's series must therefore be a bit-exact prefix of
        // the quiet chaos one.
        let d = quick_driver(1);
        let targets = Targets::twenty_percent();
        let (ctl_out, ctl_series) = d.run_controller_with_series(targets, None);
        let spec = ChaosSpec::quiet(5.0, 20_000);
        let (chaos_out, chaos_series) = d.run_chaos_with_series(&spec, targets, None);
        let n = ctl_series.ticks.len();
        assert!(chaos_series.ticks.len() >= n, "chaos session ended early");
        assert_eq!(
            &chaos_series.ticks[..n],
            &ctl_series.ticks[..],
            "quiet chaos diverged from the plain controller session"
        );
        assert_eq!(
            chaos_out.reference_tput.to_bits(),
            ctl_out.reference_tput.to_bits()
        );
        assert!(chaos_out.post_onset_windows > 0);
        assert!(chaos_out.reaction_windows <= chaos_out.post_onset_windows.max(1));
    }

    #[test]
    fn chaos_session_is_bit_reproducible() {
        let d = quick_driver(1);
        let spec = ChaosSpec {
            faults: xsched_dbms::FaultSpec {
                stall: Some(xsched_dbms::StallSpec {
                    p_per_lock: 0.05,
                    mean_secs: 1.0,
                }),
                disk_spike: Some(xsched_dbms::SpikeSpec {
                    mean_on: 4.0,
                    mean_off: 8.0,
                    factor: 6.0,
                }),
                abort_rate: 0.0,
            },
            ..ChaosSpec::quiet(20.0, 6_000)
        };
        let targets = Targets::twenty_percent();
        let (out_a, series_a) = d.run_chaos_with_series(&spec, targets, None);
        let (out_b, series_b) = d.run_chaos_with_series(&spec, targets, None);
        assert_eq!(format!("{out_a:?}"), format!("{out_b:?}"));
        assert_eq!(series_a.encode_text(), series_b.encode_text());
        // The series-less entry point must agree with the instrumented one.
        let plain = d.run_chaos(&spec, targets, None);
        assert_eq!(format!("{plain:?}"), format!("{out_a:?}"));
        assert!(out_a.post_onset_windows > 0, "{out_a:?}");
        assert_eq!(out_a.overshoot, out_a.peak_mpl - out_a.final_mpl);
        assert!(out_a.reaction_windows <= out_a.post_onset_windows.max(1));
    }
}
