//! Cross-cutting sweep observability.
//!
//! A [`SweepObs`] is the shared sink one `figures` invocation records
//! into: a [`MetricsRegistry`] of counters, gauges and histograms
//! (per-worker task counts, cache hits/misses, predicted-vs-actual shard
//! cost, straggler watermarks) plus every captured controller telemetry
//! series, keyed by experiment cell. [`SweepObs::snapshot`] renders all
//! of it as one `xsched-metrics-v1` JSON document that *embeds* the
//! `xsched-timings-v1` section verbatim, so a single `--metrics` file
//! also feeds `figures --calibrate`.
//!
//! Observability is strictly observational: nothing recorded here feeds
//! back into scheduling or result values — tables render byte-identically
//! with or without a `SweepObs` attached (pinned by the golden tests and
//! the CI on/off byte-diff).

use crate::cost::{encode_timing_cell, CellTiming};
use crate::fault::relock;
use std::sync::Mutex;
use xsched_obs::{ControllerSeries, MetricsRegistry, RingRecorder, TraceEvent, TraceSink};

/// Shared observability sink for a sweep (or a whole figures run).
///
/// Thread-safe by interior locking, so one instance can be handed (via
/// `Arc`) to every sweep worker. Wall-clock-derived metrics (task
/// seconds, stragglers) are inherently machine-dependent; the controller
/// series and everything derived from simulation state are deterministic
/// in `(scenario, seed)`.
pub struct SweepObs {
    registry: MetricsRegistry,
    series: Mutex<Vec<(String, ControllerSeries)>>,
    task_events: Mutex<RingRecorder>,
}

/// Most recent task fault events ([`TraceEvent::TaskRetry`] /
/// [`TraceEvent::TaskFailed`]) retained per sweep — enough to inspect
/// every failure of any realistic sweep without unbounded growth under
/// an injector-driven stress run.
const TASK_EVENT_CAPACITY: usize = 1024;

impl SweepObs {
    /// An empty sink.
    pub fn new() -> SweepObs {
        SweepObs {
            registry: MetricsRegistry::new(),
            series: Mutex::new(Vec::new()),
            task_events: Mutex::new(RingRecorder::new(TASK_EVENT_CAPACITY)),
        }
    }

    /// Record one harness-side task fault event (retry / failure). Ring
    /// buffered: the most recent [`TASK_EVENT_CAPACITY`] events are
    /// retained.
    pub fn record_task_event(&self, ev: TraceEvent) {
        relock(&self.task_events).record(ev);
    }

    /// Retained task fault events, oldest first.
    pub fn task_events(&self) -> Vec<TraceEvent> {
        relock(&self.task_events).iter().copied().collect()
    }

    /// The metrics registry executors and binaries record into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Store the telemetry series of one controller session, keyed by its
    /// experiment-cell label (row/column/seed).
    pub fn add_controller_series(&self, label: impl Into<String>, series: ControllerSeries) {
        relock(&self.series).push((label.into(), series));
    }

    /// All captured controller series, sorted by cell label so the order
    /// is independent of worker scheduling.
    pub fn controller_series(&self) -> Vec<(String, ControllerSeries)> {
        let mut all = relock(&self.series).clone();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Render registry, per-cell timings, and controller series as one
    /// JSON document. The `timings` object repeats the
    /// `xsched-timings-v1` schema tag and cell-line shape exactly, so
    /// [`crate::cost::decode_timings`] parses the combined file unchanged
    /// — `--calibrate` accepts either a bare timings dump or a metrics
    /// snapshot.
    pub fn snapshot(&self, timings: &[CellTiming]) -> String {
        let mut out = String::from("{\n    \"schema\": \"xsched-metrics-v1\",\n");
        out.push_str("    \"metrics\": [\n");
        let entries = self.registry.encode_entries();
        for (i, e) in entries.iter().enumerate() {
            out.push_str("        ");
            out.push_str(e);
            if i + 1 < entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("    ],\n");
        out.push_str("    \"timings\": {\n");
        out.push_str("        \"schema\": \"xsched-timings-v1\",\n");
        out.push_str("        \"cells\": [\n");
        for (i, c) in timings.iter().enumerate() {
            out.push_str("            ");
            out.push_str(&encode_timing_cell(c));
            if i + 1 < timings.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("        ]\n    },\n");
        out.push_str("    \"controller_series\": {\n");
        let series = self.controller_series();
        for (i, (label, s)) in series.iter().enumerate() {
            out.push_str(&format!(
                "        \"{}\": {}{}\n",
                json_escape(label),
                s.encode_json(),
                if i + 1 < series.len() { "," } else { "" },
            ));
        }
        out.push_str("    }\n}\n");
        out
    }
}

impl Default for SweepObs {
    fn default() -> Self {
        SweepObs::new()
    }
}

impl std::fmt::Debug for SweepObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepObs").finish_non_exhaustive()
    }
}

/// Minimal JSON string escaping for cell labels (quotes, backslashes,
/// control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::decode_timings;
    use xsched_obs::{ControllerSeries, ControllerTick};

    fn sample_obs() -> SweepObs {
        let obs = SweepObs::new();
        obs.registry().counter_add("sweep.tasks_done", 9);
        obs.registry()
            .gauge_set("sweep.shard0.predicted_units", 120.5);
        obs.registry().hist_record("sweep.task_secs", 0.25);
        let mut s = ControllerSeries::with_capacity(2);
        s.push(ControllerTick {
            t: 12.0,
            mpl: 7,
            queue_len: 30,
            throughput: 55.0,
            rt_p50: 0.1,
            rt_p95: 0.4,
            rt_p99: 0.9,
        });
        obs.add_controller_series("3 [seed 42]", s);
        obs
    }

    #[test]
    fn snapshot_embeds_a_parseable_timings_section() {
        let cells = vec![
            CellTiming {
                bucket: "w/c1d1/run".into(),
                units: 800.0,
                secs: 0.5,
                events: 120_000,
            },
            CellTiming {
                bucket: "w/c1d1/controller".into(),
                units: 4000.0,
                secs: 2.25,
                events: 0,
            },
        ];
        let snap = sample_obs().snapshot(&cells);
        // The combined document feeds --calibrate directly.
        let decoded = decode_timings(&snap).unwrap();
        assert_eq!(decoded, cells);
        // And carries the metric entries and the controller series.
        assert!(snap.contains("\"sweep.tasks_done\""), "{snap}");
        assert!(
            snap.contains("\"3 [seed 42]\": [{\"t\": 12.000000"),
            "{snap}"
        );
    }

    #[test]
    fn task_events_ring_records_in_order() {
        let obs = SweepObs::new();
        assert!(obs.task_events().is_empty());
        obs.record_task_event(TraceEvent::TaskRetry {
            task: 4,
            attempt: 1,
        });
        obs.record_task_event(TraceEvent::TaskFailed {
            task: 4,
            attempts: 2,
        });
        let events = obs.task_events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            TraceEvent::TaskRetry {
                task: 4,
                attempt: 1
            }
        );
        assert_eq!(
            events[1],
            TraceEvent::TaskFailed {
                task: 4,
                attempts: 2
            }
        );
    }

    #[test]
    fn snapshot_is_deterministic_for_identical_state() {
        let a = sample_obs().snapshot(&[]);
        let b = sample_obs().snapshot(&[]);
        assert_eq!(a, b);
        // Series order is label-sorted, not insertion-sorted.
        let obs = SweepObs::new();
        obs.add_controller_series("b", ControllerSeries::default());
        obs.add_controller_series("a", ControllerSeries::default());
        let labels: Vec<String> = obs
            .controller_series()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(labels, ["a", "b"]);
    }
}
