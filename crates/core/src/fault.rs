//! Fault tolerance for sweep execution.
//!
//! The sweep executor treats every `(scenario, seed)` task as a pure
//! function — which also makes tasks the natural *fault isolation*
//! boundary. This module supplies the pieces:
//!
//! * [`TaskError`] / [`TaskFailure`] — typed per-task failure causes
//!   (caught panic, watchdog timeout, injected fault) with the attempt
//!   count, carried through the shard wire codec bit-exactly;
//! * [`TaskOutcome`] — a task slot's value once fault tolerance exists:
//!   either a [`ScenarioOutcome`] or a typed failure;
//! * [`FaultPolicy`] — what the executor does about failures: fail fast
//!   (today's behavior, the default), or isolate + retry with
//!   deterministic backoff + degrade to a marked failed cell under
//!   keep-going mode, optionally under a per-task watchdog deadline;
//! * [`FaultInjector`] — the deterministic harness-side chaos layer:
//!   seed-derived task panics and stalls, mirroring the simulator's
//!   chaos streams, so panic isolation / retry / watchdog paths are
//!   exercisable in CI with reproducible outcomes;
//! * [`relock`] — poisoned-`Mutex` recovery for executor bookkeeping
//!   locks, so one caught panic cannot cascade into poisoning every
//!   worker that touches the same slot.
//!
//! **Determinism.** A retried task re-runs under the *same* scenario
//! seed — tasks are pure, so a retry that succeeds is automatically
//! bit-identical to a first-try success. Only the injector's decision
//! stream folds the attempt number into its derived RNG label
//! (`fault/<task>/<unit>/<attempt>`), so attempt 0 can inject a panic
//! while attempt 1 runs clean — exactly how a transient host fault looks
//! to the harness. The property tests pin both directions.

use crate::scenario::ScenarioOutcome;
use serde::Serialize;
use std::sync::{Mutex, MutexGuard, PoisonError};
use xsched_sim::SimRng;

/// Why one sweep task (or one of its sub-run units) failed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TaskError {
    /// The task panicked; carries the panic message (lossy: non-string
    /// payloads record a placeholder).
    Panic(String),
    /// The task exceeded the watchdog deadline, in seconds.
    Timeout(f64),
    /// The deterministic fault injector killed this attempt.
    Injected(String),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panic(msg) => write!(f, "panicked: {msg}"),
            TaskError::Timeout(limit) => write!(f, "exceeded the {limit}s task deadline"),
            TaskError::Injected(what) => write!(f, "injected fault: {what}"),
        }
    }
}

/// A task's final failure record: the last attempt's error plus how many
/// attempts were made. What a failed cell carries on the wire and in
/// merged results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TaskFailure {
    /// The error of the final (losing) attempt.
    pub error: TaskError,
    /// Total attempts made (1 = no retry).
    pub attempts: u32,
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (after {} attempts)", self.error, self.attempts)
    }
}

/// The value a task slot holds once fault tolerance exists: a measured
/// outcome, or a typed failure the sweep degraded to instead of aborting.
#[derive(Debug, Clone, Serialize)]
pub enum TaskOutcome {
    /// The task produced its outcome (possibly after retries — bitwise
    /// indistinguishable from a first-try success).
    Ok(ScenarioOutcome),
    /// The task failed every attempt; the cell is marked, not silently
    /// dropped.
    Failed(TaskFailure),
}

impl TaskOutcome {
    /// The measured outcome, if the task succeeded.
    pub fn as_ok(&self) -> Option<&ScenarioOutcome> {
        match self {
            TaskOutcome::Ok(o) => Some(o),
            TaskOutcome::Failed(_) => None,
        }
    }

    /// The failure record, if the task failed.
    pub fn as_failed(&self) -> Option<&TaskFailure> {
        match self {
            TaskOutcome::Ok(_) => None,
            TaskOutcome::Failed(f) => Some(f),
        }
    }
}

/// What the deterministic injector decided for one attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// Panic at task start (isolated by `catch_unwind`).
    Panic,
    /// Stall for this many wall-clock seconds before running — under a
    /// watchdog deadline shorter than the stall, a deterministic timeout.
    Stall(f64),
}

/// Deterministic harness-side fault injector.
///
/// Decisions are a pure function of `(seed, task, unit, attempt)` via a
/// derived RNG stream (`fault/<task>/<unit>/<attempt>`) — the same
/// SplitMix64-hashed label scheme the simulator's chaos layer uses — so
/// an injected-fault sweep produces identical failures on every machine
/// and thread count, and a *retry* draws a fresh decision while the
/// scenario itself re-runs under its unchanged seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    /// Probability an attempt panics at task start.
    pub p_panic: f64,
    /// Probability an attempt stalls (checked after the panic draw).
    pub p_stall: f64,
    /// Stall length in wall-clock seconds.
    pub stall_secs: f64,
}

impl FaultInjector {
    /// The injector's decision for attempt `attempt` of unit `unit` of
    /// task `task` running under `seed`. Pure and deterministic.
    pub fn decide(&self, seed: u64, task: usize, unit: u32, attempt: u32) -> Option<InjectedFault> {
        let mut rng = SimRng::derive(seed, &format!("fault/{task}/{unit}/{attempt}"));
        let u = rng.uniform();
        if u < self.p_panic {
            Some(InjectedFault::Panic)
        } else if u < self.p_panic + self.p_stall {
            Some(InjectedFault::Stall(self.stall_secs))
        } else {
            None
        }
    }
}

/// How the sweep executor treats task failures. The default is exactly
/// today's behavior: no isolation, no retry, no watchdog — a panic
/// unwinds and aborts the sweep, and the executor's hot path is
/// untouched (the bench band gates this).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPolicy {
    /// Degrade failed tasks to marked failed cells and keep sweeping.
    /// Off = fail fast: the final failure propagates as a panic.
    pub keep_going: bool,
    /// Retries per task unit after the first attempt fails.
    pub retries: u32,
    /// Base of the deterministic exponential backoff before retry `a`
    /// (`base · 2^(a−1)` seconds, exponent capped at 6). `0.0` retries
    /// immediately. Wall-clock only — never affects result bytes.
    pub backoff_base_secs: f64,
    /// Per-task watchdog deadline in seconds: an attempt still running
    /// past it is abandoned on a detached thread and scored
    /// [`TaskError::Timeout`].
    pub task_timeout_secs: Option<f64>,
    /// Deterministic fault injection for testing the paths above.
    pub injector: Option<FaultInjector>,
}

impl FaultPolicy {
    /// True when any fault-tolerance machinery is engaged — the executor
    /// only leaves its legacy unguarded path in that case.
    pub fn active(&self) -> bool {
        self.keep_going
            || self.retries > 0
            || self.task_timeout_secs.is_some()
            || self.injector.is_some()
    }

    /// Backoff before retry attempt `attempt` (1-based), in seconds.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        if self.backoff_base_secs <= 0.0 || attempt == 0 {
            0.0
        } else {
            self.backoff_base_secs * f64::from(1u32 << (attempt - 1).min(6))
        }
    }
}

/// Marker panic payload for injected panics, so the catch site can
/// classify them as [`TaskError::Injected`] rather than a genuine bug.
#[derive(Debug)]
pub(crate) struct InjectedPanic;

/// Render a caught panic payload as a message, classifying injected
/// panics along the way.
pub(crate) fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> TaskError {
    if payload.is::<InjectedPanic>() {
        return TaskError::Injected("panic".to_string());
    }
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string());
    TaskError::Panic(msg)
}

/// Lock a mutex, recovering from poisoning instead of cascading the
/// panic.
///
/// Sound for the executor's bookkeeping locks (result slots, sub-run
/// accumulators, cache slots, telemetry series): task code runs *inside*
/// `catch_unwind`, so by the time these locks are taken the protected
/// data is either fully written or untouched — a poisoned flag only
/// means some thread panicked while holding the guard across a plain
/// field write, which cannot leave torn state. Recovering keeps one
/// failed task from wedging every worker that shares the structure.
pub fn relock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_inactive_and_preserves_fail_fast() {
        let p = FaultPolicy::default();
        assert!(!p.active());
        assert!(!p.keep_going);
        assert_eq!(p.retries, 0);
        assert_eq!(p.task_timeout_secs, None);
        assert!(p.injector.is_none());
    }

    #[test]
    fn any_engaged_knob_activates_the_policy() {
        for p in [
            FaultPolicy {
                keep_going: true,
                ..Default::default()
            },
            FaultPolicy {
                retries: 1,
                ..Default::default()
            },
            FaultPolicy {
                task_timeout_secs: Some(1.0),
                ..Default::default()
            },
            FaultPolicy {
                injector: Some(FaultInjector {
                    p_panic: 0.0,
                    p_stall: 0.0,
                    stall_secs: 0.0,
                }),
                ..Default::default()
            },
        ] {
            assert!(p.active(), "{p:?}");
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = FaultPolicy {
            backoff_base_secs: 0.01,
            ..Default::default()
        };
        assert_eq!(p.backoff_secs(1), 0.01);
        assert_eq!(p.backoff_secs(2), 0.02);
        assert_eq!(p.backoff_secs(3), 0.04);
        // Exponent caps at 6 so a large retry budget cannot sleep forever.
        assert_eq!(p.backoff_secs(40), 0.01 * 64.0);
        // Zero base = immediate retries.
        assert_eq!(FaultPolicy::default().backoff_secs(3), 0.0);
    }

    #[test]
    fn injector_decisions_are_deterministic_and_attempt_dependent() {
        let inj = FaultInjector {
            p_panic: 0.5,
            p_stall: 0.25,
            stall_secs: 0.5,
        };
        // Same coordinates → same decision, every time.
        for task in 0..50usize {
            for attempt in 0..3u32 {
                assert_eq!(
                    inj.decide(42, task, 0, attempt),
                    inj.decide(42, task, 0, attempt)
                );
            }
        }
        // The attempt number is folded into the stream: some task must
        // decide differently on attempt 0 vs attempt 1 (that is what
        // makes retries able to succeed).
        assert!((0..100usize).any(|t| inj.decide(42, t, 0, 0) != inj.decide(42, t, 0, 1)));
        // And the probabilities roughly hold over many tasks.
        let panics = (0..400usize)
            .filter(|&t| inj.decide(42, t, 0, 0) == Some(InjectedFault::Panic))
            .count();
        assert!((100..300).contains(&panics), "{panics}");
    }

    #[test]
    fn zero_rate_injector_never_fires() {
        let inj = FaultInjector {
            p_panic: 0.0,
            p_stall: 0.0,
            stall_secs: 1.0,
        };
        assert!((0..200usize).all(|t| inj.decide(7, t, 0, 0).is_none()));
    }

    #[test]
    fn relock_recovers_a_poisoned_mutex() {
        let m = Mutex::new(0u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.lock().is_err(), "the mutex really is poisoned");
        *relock(&m) = 7;
        assert_eq!(*relock(&m), 7);
    }

    #[test]
    fn classify_panic_separates_injected_from_genuine() {
        assert_eq!(
            classify_panic(Box::new(InjectedPanic)),
            TaskError::Injected("panic".to_string())
        );
        assert_eq!(
            classify_panic(Box::new("boom")),
            TaskError::Panic("boom".to_string())
        );
        assert_eq!(
            classify_panic(Box::new(String::from("kaboom"))),
            TaskError::Panic("kaboom".to_string())
        );
        assert_eq!(
            classify_panic(Box::new(17u32)),
            TaskError::Panic("non-string panic payload".to_string())
        );
    }
}
