//! The MPL counting gate.
//!
//! A transaction may enter the DBMS only while fewer than MPL are inside.
//! The controller resizes the MPL at runtime: shrinking below the current
//! occupancy never evicts running transactions, it just blocks admissions
//! until completions drain the excess — exactly how an external front-end
//! has to behave, since it cannot preempt work already inside the DBMS.

use serde::Serialize;

/// Counting gate enforcing the multi-programming limit.
#[derive(Debug, Clone, Serialize)]
pub struct MplGate {
    mpl: u32,
    in_flight: u32,
}

impl MplGate {
    /// A gate with the given limit (`mpl ≥ 1`).
    pub fn new(mpl: u32) -> MplGate {
        assert!(mpl >= 1, "MPL must be at least 1");
        MplGate { mpl, in_flight: 0 }
    }

    /// Current limit.
    pub fn mpl(&self) -> u32 {
        self.mpl
    }

    /// Transactions currently admitted.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Admission slots currently free.
    pub fn available(&self) -> u32 {
        self.mpl.saturating_sub(self.in_flight)
    }

    /// Try to take one admission slot.
    pub fn try_acquire(&mut self) -> bool {
        if self.in_flight < self.mpl {
            self.in_flight += 1;
            true
        } else {
            false
        }
    }

    /// Return one slot (on transaction completion).
    pub fn release(&mut self) {
        assert!(self.in_flight > 0, "release without acquire");
        self.in_flight -= 1;
    }

    /// Change the limit. Occupancy above a lowered limit is allowed to
    /// drain naturally.
    pub fn set_mpl(&mut self, mpl: u32) {
        assert!(mpl >= 1, "MPL must be at least 1");
        self.mpl = mpl;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_mpl() {
        let mut g = MplGate::new(3);
        assert!(g.try_acquire());
        assert!(g.try_acquire());
        assert!(g.try_acquire());
        assert!(!g.try_acquire());
        assert_eq!(g.in_flight(), 3);
        assert_eq!(g.available(), 0);
    }

    #[test]
    fn release_reopens() {
        let mut g = MplGate::new(1);
        assert!(g.try_acquire());
        assert!(!g.try_acquire());
        g.release();
        assert!(g.try_acquire());
    }

    #[test]
    fn shrink_below_occupancy_blocks_until_drained() {
        let mut g = MplGate::new(4);
        for _ in 0..4 {
            assert!(g.try_acquire());
        }
        g.set_mpl(2);
        assert!(!g.try_acquire());
        g.release();
        assert!(!g.try_acquire(), "still above the new limit");
        g.release();
        g.release();
        assert!(g.try_acquire(), "drained below the new limit");
    }

    #[test]
    fn grow_admits_immediately() {
        let mut g = MplGate::new(1);
        assert!(g.try_acquire());
        g.set_mpl(2);
        assert!(g.try_acquire());
        assert!(!g.try_acquire());
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn release_underflow_panics() {
        MplGate::new(1).release();
    }

    #[test]
    #[should_panic(expected = "MPL must be at least 1")]
    fn zero_mpl_rejected() {
        MplGate::new(0);
    }
}
