//! The feedback MPL controller of §4.3.
//!
//! The controller alternates *observation* and *reaction* phases.
//! An observation window only closes once it (a) contains enough
//! transactions (the paper finds ≈ 100 suffice) and (b) estimates the mean
//! response time tightly enough (confidence-interval gate) — and windows
//! with unrepresentatively low load are discarded rather than reacted to.
//! The reaction compares the window against DBA-specified [`Targets`]
//! ("throughput should not drop by more than 5%"), keeping convergence
//! fast by *jump-starting* from the queueing models of `xsched-queueing`
//! ([`MplController::jumpstart`]). Probing is geometric — consecutive
//! feasible windows double the downward step, consecutive infeasible ones
//! double the upward step — and once the lowest feasible MPL is bracketed
//! the search bisects the bracket, so convergence takes O(log) windows
//! even when the jump-start misses: under 10 iterations on all 17 setups,
//! matching the paper's report.

use serde::Serialize;
use xsched_queueing::{recommend, ThroughputModel, H2};
use xsched_sim::Welford;

/// DBA-specified tolerance for running below the unthrottled system.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Targets {
    /// Maximum acceptable relative throughput loss (e.g. 0.05).
    pub max_tput_loss: f64,
    /// Maximum acceptable relative increase in overall mean response time.
    pub max_rt_increase: f64,
}

impl Targets {
    /// The paper's headline setting: at most 5% loss on both metrics.
    pub fn five_percent() -> Targets {
        Targets {
            max_tput_loss: 0.05,
            max_rt_increase: 0.05,
        }
    }

    /// The paper's aggressive setting: 20% loss for stronger
    /// prioritization differentiation.
    pub fn twenty_percent() -> Targets {
        Targets {
            max_tput_loss: 0.20,
            max_rt_increase: 0.20,
        }
    }
}

/// Controller tuning knobs.
#[derive(Debug, Clone, Serialize)]
pub struct ControllerConfig {
    /// Feasibility targets.
    pub targets: Targets,
    /// Minimum transactions per observation window (paper: ≈ 100).
    pub min_window_txns: u32,
    /// Confidence level for the response-time CI gate.
    pub ci_level: f64,
    /// Close the window once the CI's relative half-width drops below
    /// this…
    pub max_ci_rel_width: f64,
    /// …or once this many transactions have been observed regardless.
    pub max_window_txns: u32,
    /// MPL bounds.
    pub min_mpl: u32,
    /// Upper bound for the search.
    pub max_mpl: u32,
    /// Base reaction step size (grows geometrically on consecutive
    /// same-direction reactions, resets on reversal).
    pub step: u32,
    /// Windows whose throughput is below this fraction of the reference
    /// are considered unrepresentative and discarded.
    pub min_load_fraction: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            targets: Targets::five_percent(),
            min_window_txns: 100,
            ci_level: 0.95,
            max_ci_rel_width: 0.25,
            max_window_txns: 1000,
            min_mpl: 1,
            max_mpl: 200,
            step: 1,
            min_load_fraction: 0.2,
        }
    }
}

/// Performance of the unthrottled system (measured in a calibration run or
/// supplied by the DBA).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Reference {
    /// Throughput without an MPL, txns/second.
    pub throughput: f64,
    /// Overall mean response time without an MPL, seconds.
    pub mean_rt: f64,
}

/// One closed observation window and the verdict on it.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IterationRecord {
    /// MPL in force during the window.
    pub mpl: u32,
    /// Window throughput, txns/second.
    pub throughput: f64,
    /// Window mean response time, seconds.
    pub mean_rt: f64,
    /// Whether the window met both targets.
    pub feasible: bool,
}

/// What the controller wants done after a window closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Decision {
    /// Change the MPL and keep observing.
    SetMpl(u32),
    /// The search has settled; the MPL is the lowest feasible found.
    Converged(u32),
    /// The window's load was unrepresentatively low; it was dropped
    /// without a reaction. A run of these under steady traffic means the
    /// controller is frozen (e.g. a lock-holder stall upstream), which is
    /// why the discard is reported rather than swallowed.
    Discarded,
}

#[derive(Debug, Default)]
struct Window {
    rt: Welford,
    start: f64,
    started: bool,
}

/// Feedback controller for the multi-programming limit.
#[derive(Debug)]
pub struct MplController {
    cfg: ControllerConfig,
    reference: Reference,
    mpl: u32,
    window: Window,
    highest_infeasible: u32,
    best_feasible: Option<u32>,
    down_streak: u32,
    up_streak: u32,
    converged: bool,
    discarded: u32,
    trace: Vec<IterationRecord>,
}

impl MplController {
    /// A controller starting at `initial_mpl` (ideally from
    /// [`MplController::jumpstart`]).
    pub fn new(cfg: ControllerConfig, reference: Reference, initial_mpl: u32) -> MplController {
        let mpl = initial_mpl.clamp(cfg.min_mpl, cfg.max_mpl);
        MplController {
            cfg,
            reference,
            mpl,
            window: Window::default(),
            highest_infeasible: 0,
            best_feasible: None,
            down_streak: 0,
            up_streak: 0,
            converged: false,
            discarded: 0,
            // Pre-sized past the paper's <10-iteration bound so sessions
            // (and their telemetry) never grow this buffer mid-run.
            trace: Vec::with_capacity(32),
        }
    }

    /// The queueing-theoretic starting value (§4.1 + §4.2): the larger of
    /// the MVA throughput bound (from observed resource utilizations) and
    /// the flexible-multiserver response-time bound (from the demand
    /// mean/C² and the arrival rate).
    pub fn jumpstart(
        utilizations: &[f64],
        targets: Targets,
        demand_mean: f64,
        demand_c2: f64,
        arrival_rate: f64,
        max_mpl: u32,
    ) -> u32 {
        let model = ThroughputModel::from_utilizations(utilizations);
        let tput_mpl = recommend::min_mpl_for_throughput(&model, 1.0 - targets.max_tput_loss);
        // The response-time model needs a stable open system; cap the load
        // at 0.95 so a saturated closed-system measurement still yields a
        // usable bound.
        let rho = (arrival_rate * demand_mean).min(0.95);
        let h2 = H2::fit(demand_mean, demand_c2.max(1.0));
        let lambda = rho / demand_mean;
        let rt_mpl =
            recommend::min_mpl_for_response_time(h2, lambda, targets.max_rt_increase, max_mpl);
        tput_mpl.max(rt_mpl).min(max_mpl)
    }

    /// Current MPL the system should run with.
    pub fn mpl(&self) -> u32 {
        self.mpl
    }

    /// True once the search has settled.
    pub fn is_converged(&self) -> bool {
        self.converged
    }

    /// Number of closed observation windows so far.
    pub fn iterations(&self) -> u32 {
        self.trace.len() as u32
    }

    /// Full per-window history.
    pub fn trace(&self) -> &[IterationRecord] {
        &self.trace
    }

    /// Number of observation windows dropped by the low-load gate.
    pub fn discarded_windows(&self) -> u32 {
        self.discarded
    }

    /// The current search bracket `(highest_infeasible, best_feasible)`.
    pub fn bracket(&self) -> (u32, Option<u32>) {
        (self.highest_infeasible, self.best_feasible)
    }

    /// Record one completed transaction (`rt` = end-to-end response time).
    pub fn observe(&mut self, now: f64, rt: f64) {
        if !self.window.started {
            self.window.started = true;
            self.window.start = now;
        }
        self.window.rt.push(rt);
    }

    /// After recording completions, ask whether the window closed and what
    /// to do. Returns `None` while the window is still collecting.
    pub fn react(&mut self, now: f64) -> Option<Decision> {
        let n = self.window.rt.count();
        if n < u64::from(self.cfg.min_window_txns) {
            return None;
        }
        let ci_ok = self
            .window
            .rt
            .confidence_interval(self.cfg.ci_level)
            .relative_half_width()
            <= self.cfg.max_ci_rel_width;
        if !ci_ok && n < u64::from(self.cfg.max_window_txns) {
            return None;
        }
        // Window closes.
        let span = (now - self.window.start).max(1e-9);
        let tput = n as f64 / span;
        let rt = self.window.rt.mean();
        // The next window spans from *this* close instant, not from its
        // own first completion — otherwise idle time (a stall, an arrival
        // lull) between windows is excluded from the span and throughput
        // is overstated, masking infeasibility.
        self.window = Window {
            rt: Welford::default(),
            start: now,
            started: true,
        };

        if tput < self.cfg.min_load_fraction * self.reference.throughput {
            // Unrepresentative (idle) period: discard without reacting —
            // but say so, and count it, so a stall-induced string of
            // discards is distinguishable from "still collecting".
            self.discarded += 1;
            return Some(Decision::Discarded);
        }

        let tput_bad = tput < (1.0 - self.cfg.targets.max_tput_loss) * self.reference.throughput;
        let rt_bad = rt > (1.0 + self.cfg.targets.max_rt_increase) * self.reference.mean_rt;
        let feasible = !tput_bad && !rt_bad;
        self.trace.push(IterationRecord {
            mpl: self.mpl,
            throughput: tput,
            mean_rt: rt,
            feasible,
        });

        let step = self.cfg.step;
        if feasible {
            self.up_streak = 0;
            self.best_feasible = Some(self.best_feasible.map_or(self.mpl, |b| b.min(self.mpl)));
            if self.converged {
                return Some(Decision::Converged(self.mpl));
            }
            if self.mpl <= self.cfg.min_mpl || self.mpl <= self.highest_infeasible + step {
                self.converged = true;
                return Some(Decision::Converged(self.mpl));
            }
            // Probe down, doubling the step on consecutive feasible
            // windows (capped) but never below the known-infeasible floor.
            let step_eff = step << self.down_streak.min(3);
            self.down_streak += 1;
            let next = self
                .mpl
                .saturating_sub(step_eff)
                .max(self.highest_infeasible + step)
                .max(self.cfg.min_mpl);
            if next == self.mpl {
                self.converged = true;
                return Some(Decision::Converged(self.mpl));
            }
            self.mpl = next;
            return Some(Decision::SetMpl(next));
        }

        // Infeasible. If convergence just broke, the bracket describes the
        // *pre-drift* workload — keeping it would let the bisection clamp
        // the MPL inside a range the new workload invalidates. Drop it and
        // search fresh from the current setpoint.
        if self.converged {
            self.converged = false;
            self.highest_infeasible = 0;
            self.best_feasible = None;
            self.up_streak = 0;
            self.down_streak = 0;
        }
        // Congestion signature: response time over target while throughput
        // is *comfortably* healthy (within half the loss budget of the
        // reference). Merely being inside the budget is not enough — in a
        // closed system rt ≈ population/throughput, so a marginally starved
        // window shows high rt with tput just above the loss line, and
        // stepping down there would starve it further.
        let congested = rt_bad
            && tput >= (1.0 - 0.5 * self.cfg.targets.max_tput_loss) * self.reference.throughput;
        if congested && self.mpl > self.cfg.min_mpl {
            // A congestion down-step must not land on or below the
            // starvation floor: there the two signals contradict —
            // starved one step below, rt marginally over here while
            // throughput holds — so no strictly feasible MPL exists in
            // between. Settle at the congestion boundary (the least-bad
            // fixed point) rather than ping-ponging across it.
            if self.mpl <= self.highest_infeasible + step {
                self.converged = true;
                return Some(Decision::Converged(self.mpl));
            }
            // The MPL is too *high* (queueing delay), not too low — step
            // down without raising the infeasibility floor, which
            // describes starvation, not congestion.
            self.up_streak = 0;
            self.down_streak = 0;
            // This window refutes feasibility at (and, rt being monotone
            // in MPL, above) the current setpoint.
            self.best_feasible = self.best_feasible.filter(|b| *b < self.mpl);
            let next = self.mpl.saturating_sub(step).max(self.cfg.min_mpl);
            self.mpl = next;
            return Some(Decision::SetMpl(next));
        }
        // Throughput starved: never go below this again.
        self.down_streak = 0;
        self.highest_infeasible = self.highest_infeasible.max(self.mpl);
        if let Some(best) = self.best_feasible.filter(|b| *b > self.mpl) {
            // The boundary is bracketed in (highest_infeasible, best].
            if best - self.highest_infeasible <= step {
                self.mpl = best;
                self.converged = true;
                return Some(Decision::Converged(best));
            }
            let mid = ((self.highest_infeasible + best) / 2).max(self.highest_infeasible + step);
            self.mpl = mid;
            return Some(Decision::SetMpl(mid));
        }
        // Nothing feasible seen yet: climb, doubling on consecutive
        // failures.
        let step_eff = step << self.up_streak.min(3);
        self.up_streak += 1;
        let next = (self.mpl + step_eff).min(self.cfg.max_mpl);
        if next == self.mpl {
            // Pinned at the ceiling: best effort.
            self.converged = true;
            return Some(Decision::Converged(self.mpl));
        }
        self.mpl = next;
        Some(Decision::SetMpl(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> Reference {
        Reference {
            throughput: 100.0,
            mean_rt: 1.0,
        }
    }

    /// Feed a synthetic window: `n` completions with the given mean rt,
    /// spanning enough simulated time to produce throughput `tput`.
    fn feed_window(
        c: &mut MplController,
        start: f64,
        n: u32,
        tput: f64,
        rt: f64,
    ) -> (f64, Option<Decision>) {
        let span = n as f64 / tput;
        for i in 0..n {
            let t = start + span * (i + 1) as f64 / n as f64;
            // tiny deterministic jitter so the CI is finite but tight
            let jitter = 1.0 + 0.01 * ((i % 7) as f64 - 3.0) / 3.0;
            c.observe(t, rt * jitter);
        }
        let end = start + span;
        let d = c.react(end);
        (end, d)
    }

    #[test]
    fn no_reaction_before_window_fills() {
        let mut c = MplController::new(ControllerConfig::default(), reference(), 10);
        for i in 0..50 {
            c.observe(i as f64 * 0.01, 1.0);
        }
        assert_eq!(c.react(0.5), None);
    }

    #[test]
    fn probes_down_while_feasible_then_converges() {
        let cfg = ControllerConfig::default();
        let mut c = MplController::new(cfg, reference(), 4);
        // MPL 4 and 3 feasible; 2 infeasible; expect convergence at 3.
        let mut t = 0.0;
        let feasibility = |mpl: u32| mpl >= 3;
        let mut decisions = Vec::new();
        for _ in 0..10 {
            let (tput, rt) = if feasibility(c.mpl()) {
                (100.0, 1.0)
            } else {
                (85.0, 1.3)
            };
            let (end, d) = feed_window(&mut c, t, 120, tput, rt);
            t = end;
            if let Some(d) = d {
                decisions.push(d);
                if matches!(d, Decision::Converged(_)) {
                    break;
                }
            }
        }
        assert!(
            matches!(decisions.last(), Some(Decision::Converged(3))),
            "decisions: {decisions:?}"
        );
        assert!(c.iterations() <= 5, "took {} iterations", c.iterations());
    }

    #[test]
    fn climbs_up_when_starting_infeasible() {
        let mut c = MplController::new(ControllerConfig::default(), reference(), 1);
        let mut t = 0.0;
        let mut last = None;
        for _ in 0..15 {
            let (tput, rt) = if c.mpl() >= 5 {
                (99.0, 1.0)
            } else {
                (80.0, 1.5)
            };
            let (end, d) = feed_window(&mut c, t, 120, tput, rt);
            t = end;
            last = d.or(last);
            if matches!(d, Some(Decision::Converged(_))) {
                break;
            }
        }
        assert_eq!(last, Some(Decision::Converged(5)));
        assert!(c.iterations() < 10, "paper bound: <10 iterations");
    }

    #[test]
    fn jumpstart_makes_convergence_fast() {
        // Starting at the analytic value (here 5) converges in ≤ 3 windows
        // vs starting cold at 1.
        let run = |start: u32| {
            let mut c = MplController::new(ControllerConfig::default(), reference(), start);
            let mut t = 0.0;
            for _ in 0..20 {
                let (tput, rt) = if c.mpl() >= 5 {
                    (99.0, 1.0)
                } else {
                    (80.0, 1.5)
                };
                let (end, d) = feed_window(&mut c, t, 120, tput, rt);
                t = end;
                if matches!(d, Some(Decision::Converged(_))) {
                    break;
                }
            }
            assert!(c.is_converged());
            c.iterations()
        };
        assert!(run(5) <= 3);
        assert!(run(5) < run(1));
    }

    #[test]
    fn low_load_windows_are_discarded() {
        let mut c = MplController::new(ControllerConfig::default(), reference(), 10);
        // Throughput 10 << 0.2 × 100 → window discarded, MPL unchanged —
        // but the discard is *reported*, not silently swallowed.
        let (_, d) = feed_window(&mut c, 0.0, 120, 10.0, 1.0);
        assert_eq!(d, Some(Decision::Discarded));
        assert_eq!(c.mpl(), 10);
        assert_eq!(c.iterations(), 0);
        assert_eq!(c.discarded_windows(), 1);
    }

    #[test]
    fn idle_gap_before_window_counts_against_its_span() {
        // Regression: `Window.start` used to be the first-completion time,
        // so idle time after the previous reaction (a stall, a lull) was
        // excluded from the span and window throughput overstated.
        let mut c = MplController::new(ControllerConfig::default(), reference(), 10);
        // Window 1 closes at t = 1.2 (throughput 100, feasible → probes).
        let (e, d) = feed_window(&mut c, 0.0, 120, 100.0, 1.0);
        assert!(matches!(d, Some(Decision::SetMpl(_))));
        // 10 s stall, then 120 fast completions in 1.2 s. Anchored at the
        // previous close the span is 11.2 s → throughput ≈ 10.7 < 20%
        // of reference → the window must be discarded. The pre-fix code
        // anchored at the first completion, saw throughput 100, and
        // reacted to an idle window as if it were a healthy one.
        let mpl_before = c.mpl();
        let (_, d) = feed_window(&mut c, e + 10.0, 120, 100.0, 1.0);
        assert_eq!(d, Some(Decision::Discarded));
        assert_eq!(c.mpl(), mpl_before);
        assert_eq!(c.discarded_windows(), 1);
    }

    #[test]
    fn bracket_resets_when_the_frontier_drifts_up() {
        // Converge at 3 (feasible ≥ 3), then drift the feasible frontier
        // up to 10. The stale bracket (highest_infeasible = 2,
        // best_feasible = 3) describes the old workload; on the first
        // post-drift infeasible window it must be dropped wholesale.
        let mut c = MplController::new(ControllerConfig::default(), reference(), 3);
        let mut t = 0.0;
        let mut frontier = 3u32;
        loop {
            let (tput, rt) = if c.mpl() >= frontier {
                (100.0, 1.0)
            } else {
                (80.0, 1.4)
            };
            let (e, d) = feed_window(&mut c, t, 120, tput, rt);
            t = e;
            if matches!(d, Some(Decision::Converged(_))) {
                break;
            }
        }
        assert_eq!(c.mpl(), 3);
        // Drift: 3 is now throughput-starved.
        frontier = 10;
        let (e, d) = feed_window(&mut c, t, 120, 80.0, 1.4);
        t = e;
        assert!(matches!(d, Some(Decision::SetMpl(_))));
        // Regression pin: the pre-fix code kept best_feasible = Some(3)
        // from before the drift; the fix starts a fresh bracket with only
        // this window's evidence in it.
        assert_eq!(c.bracket(), (3, None));
        // And the search re-converges at the new frontier.
        for _ in 0..20 {
            let (tput, rt) = if c.mpl() >= frontier {
                (100.0, 1.0)
            } else {
                (80.0, 1.4)
            };
            let (e, d) = feed_window(&mut c, t, 120, tput, rt);
            t = e;
            if matches!(d, Some(Decision::Converged(_))) {
                break;
            }
        }
        assert!(c.is_converged());
        assert_eq!(c.mpl(), 10);
    }

    #[test]
    fn bracket_resets_when_the_frontier_drifts_down() {
        // Converge at 8 (feasible ≥ 8 pre-drift), then drift so that the
        // response-time target fails everywhere above 4 while throughput
        // stays healthy down to 3. The controller must walk *down* to the
        // new fixed point; the pre-fix code treated every infeasible
        // window as "MPL too low", kept highest_infeasible = 7 from the
        // stale bracket, and climbed to the max_mpl ceiling instead.
        let mut c = MplController::new(ControllerConfig::default(), reference(), 8);
        let mut t = 0.0;
        loop {
            let (tput, rt) = if c.mpl() >= 8 {
                (100.0, 1.0)
            } else {
                (80.0, 1.4)
            };
            let (e, d) = feed_window(&mut c, t, 120, tput, rt);
            t = e;
            if matches!(d, Some(Decision::Converged(_))) {
                break;
            }
        }
        assert_eq!(c.mpl(), 8);
        // Post-drift regime: throughput fine at MPL ≥ 3, response time
        // within target only at MPL ≤ 4.
        let post_drift = |mpl: u32| -> (f64, f64) {
            let tput = if mpl >= 3 { 100.0 } else { 80.0 };
            let rt = if mpl <= 4 { 1.0 } else { 1.5 };
            (tput, rt)
        };
        let mut last = None;
        for _ in 0..30 {
            let (tput, rt) = post_drift(c.mpl());
            let (e, d) = feed_window(&mut c, t, 120, tput, rt);
            t = e;
            if let Some(d) = d {
                last = Some(d);
                if matches!(d, Decision::Converged(_)) {
                    break;
                }
            }
        }
        assert_eq!(
            last,
            Some(Decision::Converged(3)),
            "must settle at the new frontier"
        );
        assert_eq!(c.mpl(), 3);
    }

    #[test]
    fn reconverges_after_drift() {
        let mut c = MplController::new(ControllerConfig::default(), reference(), 3);
        let mut t = 0.0;
        // Feasible at 3 and 2 is infeasible → converges at 3.
        let (e, _) = feed_window(&mut c, t, 120, 100.0, 1.0);
        t = e;
        let (e, _) = feed_window(&mut c, t, 120, 80.0, 1.4); // mpl 2 fails
        t = e;
        let (e, d) = feed_window(&mut c, t, 120, 100.0, 1.0);
        t = e;
        assert_eq!(d, Some(Decision::Converged(3)));
        // Workload drifts: 3 no longer feasible → controller resumes.
        let (_, d) = feed_window(&mut c, t, 120, 80.0, 1.6);
        assert_eq!(d, Some(Decision::SetMpl(4)));
        assert!(!c.is_converged());
    }

    #[test]
    fn respects_max_mpl_ceiling() {
        let cfg = ControllerConfig {
            max_mpl: 4,
            ..Default::default()
        };
        let mut c = MplController::new(cfg, reference(), 4);
        // Nothing is ever feasible; must converge (best effort) at the cap.
        let mut t = 0.0;
        let mut last = None;
        for _ in 0..6 {
            let (end, d) = feed_window(&mut c, t, 120, 50.0, 3.0);
            t = end;
            last = d.or(last);
        }
        assert_eq!(last, Some(Decision::Converged(4)));
    }

    #[test]
    fn jumpstart_combines_models() {
        // Four busy disks + modest C²: the throughput bound dominates.
        let j = MplController::jumpstart(
            &[0.9, 0.9, 0.9, 0.9],
            Targets::five_percent(),
            0.1,
            1.0,
            8.0,
            100,
        );
        assert!(
            j >= 10,
            "4 balanced resources at 95% need ~3/0.05 ≈ 57? got {j}"
        );
        // One resource + huge C²: the response-time bound dominates.
        let j2 = MplController::jumpstart(&[0.9], Targets::five_percent(), 0.1, 15.0, 7.0, 100);
        assert!(j2 >= 5, "C2=15 needs a two-digit MPL, got {j2}");
    }

    #[test]
    fn trace_records_every_window() {
        let mut c = MplController::new(ControllerConfig::default(), reference(), 2);
        let (_, _) = feed_window(&mut c, 0.0, 150, 100.0, 1.0);
        assert_eq!(c.trace().len(), 1);
        let r = c.trace()[0];
        assert_eq!(r.mpl, 2);
        assert!(r.feasible);
        assert!((r.throughput - 100.0).abs() < 5.0);
    }
}
