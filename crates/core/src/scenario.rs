//! Self-contained experiment descriptions.
//!
//! A [`Scenario`] is everything one experiment cell needs: a Table-2
//! [`Setup`], an execution shape ([`ExecSpec`]: a fixed-MPL run, a
//! priority experiment at a throughput-loss budget, or a live controller
//! session), and a [`RunConfig`]. Scenarios are *pure*: running one is a
//! deterministic function of `(scenario, seed)` with no shared state,
//! which is what lets the sweep executor fan replications across OS
//! threads while promising bit-identical results to serial execution.
//!
//! The run-shape used to be baked into ad-hoc driver call sites; with it
//! reified here, a new experiment is one struct literal instead of a new
//! sweep function.

use crate::cache::MeasurementCache;
use crate::controller::Targets;
use crate::driver::{
    ChaosOutcome, ControllerOutcome, Driver, PolicyKind, PriorityOutcome, RunConfig, RunResult,
};
use crate::observe::SweepObs;
use serde::Serialize;
use std::sync::Arc;
use xsched_sim::SimRng;
use xsched_workload::{ArrivalProcess, ChaosSpec, Setup};

/// How a run's MPL is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum MplSpec {
    /// A fixed limit.
    Fixed(u32),
    /// Limit = client population — the paper's MPL-less "original system".
    Unlimited,
    /// The lowest MPL whose throughput stays within the given relative
    /// loss of the MPL-less reference (resolved per scenario by paired
    /// search, exactly as Fig. 11 tunes per-setup MPLs).
    AtLoss(f64),
}

impl MplSpec {
    fn resolve(self, driver: &Driver) -> u32 {
        match self {
            MplSpec::Fixed(m) => m,
            MplSpec::Unlimited => driver.setup().clients,
            MplSpec::AtLoss(loss) => driver.find_mpl_for_loss(loss).0,
        }
    }
}

/// The arrival process, possibly relative to measured capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ArrivalSpec {
    /// Saturated closed system (zero think time) over the setup's clients.
    Saturated,
    /// Closed system with exponential think time (mean seconds).
    ClosedThink(f64),
    /// Open Poisson arrivals at an absolute rate (txns/second).
    OpenRate(f64),
    /// Open Poisson arrivals at `load` × the setup's measured MPL-less
    /// capacity. The capacity run shares the scenario's seed, so
    /// resolution stays deterministic and paired.
    OpenLoad(f64),
}

impl ArrivalSpec {
    fn resolve(self, driver: &Driver) -> ArrivalProcess {
        match self {
            ArrivalSpec::Saturated => driver.saturated(),
            ArrivalSpec::ClosedThink(mean) => ArrivalProcess::closed(driver.setup().clients, mean),
            ArrivalSpec::OpenRate(rate) => ArrivalProcess::open(rate),
            ArrivalSpec::OpenLoad(load) => {
                ArrivalProcess::open(load * driver.reference().throughput)
            }
        }
    }
}

/// What a scenario executes and measures.
#[derive(Debug, Clone, Serialize)]
pub enum ExecSpec {
    /// One measured run.
    Run {
        /// MPL selection.
        mpl: MplSpec,
        /// External queue discipline.
        policy: PolicyKind,
        /// Arrival process.
        arrivals: ArrivalSpec,
    },
    /// Fig. 11's experiment: tune the MPL for a throughput-loss budget,
    /// run two-class priority, compare against the MPL-less baseline.
    PriorityAtLoss {
        /// Relative throughput-loss budget (e.g. 0.05).
        loss: f64,
    },
    /// A live controller session (§4.3). `start = None` uses the
    /// queueing-model jump-start; `Some(m)` cold-starts at `m`.
    Controller {
        /// DBA targets for the session.
        targets: Targets,
        /// Optional explicit starting MPL.
        start: Option<u32>,
    },
    /// A chaos robustness session: a controller session whose workload is
    /// perturbed at `chaos.onset` by the spec's fault and traffic-shape
    /// injectors, measuring reaction time and overshoot.
    Chaos {
        /// The fault / traffic-shape layer and session length.
        chaos: ChaosSpec,
        /// DBA targets for the session.
        targets: Targets,
        /// Optional explicit starting MPL.
        start: Option<u32>,
    },
}

/// A complete description of one experiment cell.
///
/// `row`/`col` place the scenario in a report table (rows are curves or
/// setups, columns are grid points like `"MPL 5"`; single-column tables
/// leave `col` empty). They carry no execution semantics.
#[derive(Debug, Clone, Serialize)]
pub struct Scenario {
    /// Row label in report tables.
    pub row: String,
    /// Column label in grid tables (empty for row-per-scenario tables).
    pub col: String,
    /// The Table-2 setup (possibly mutated — see `Setup::map_cfg`).
    pub setup: Setup,
    /// What to execute and measure.
    pub exec: ExecSpec,
    /// Run length and bookkeeping. The seed field is overridden per
    /// replication by the sweep executor.
    pub rc: RunConfig,
}

impl Scenario {
    /// A fixed-MPL saturated FIFO run — the throughput-curve cell shape.
    pub fn tput(row: impl Into<String>, setup: Setup, mpl: u32, rc: RunConfig) -> Scenario {
        Scenario {
            row: row.into(),
            col: format!("MPL {mpl}"),
            setup,
            exec: ExecSpec::Run {
                mpl: MplSpec::Fixed(mpl),
                policy: PolicyKind::Fifo,
                arrivals: ArrivalSpec::Saturated,
            },
            rc,
        }
    }

    /// Execute this scenario under `seed`. Pure: identical `(self, seed)`
    /// always produce an identical outcome, bit for bit.
    pub fn run(&self, seed: u64) -> ScenarioOutcome {
        self.run_cached(seed, None)
    }

    /// Execute this scenario under `seed`, serving capacity (reference)
    /// measurements through `cache` when one is supplied. The sweep
    /// executor shares one cache across a whole plan so open-load grids
    /// measure each `(setup, run config, seed)` capacity exactly once.
    /// Purity is preserved: cached and uncached runs are bit-identical.
    pub fn run_cached(&self, seed: u64, cache: Option<&Arc<MeasurementCache>>) -> ScenarioOutcome {
        self.run_observed(seed, cache, None)
    }

    /// Execute this scenario under `seed`, optionally recording telemetry
    /// into a shared [`SweepObs`]. With `obs` attached, controller cells
    /// additionally capture their per-reaction time series (keyed by this
    /// cell's label and seed). The outcome is bit-identical with or
    /// without `obs` — observability never changes a result.
    pub fn run_observed(
        &self,
        seed: u64,
        cache: Option<&Arc<MeasurementCache>>,
        obs: Option<&SweepObs>,
    ) -> ScenarioOutcome {
        self.run_timed(seed, cache, obs).0
    }

    /// [`Scenario::run_observed`] plus the cell's cost telemetry
    /// ([`UnitCost`]): the wall-clock seconds spent *computing* reference
    /// (capacity) runs along the way — zero when every reference lookup
    /// hit the cache — and the deterministic simulator event counts. The
    /// sweep executor separates reference cost from the cell's own so
    /// timing telemetry bills capacity runs to a distinct `ref/` bucket.
    pub fn run_timed(
        &self,
        seed: u64,
        cache: Option<&Arc<MeasurementCache>>,
        obs: Option<&SweepObs>,
    ) -> (ScenarioOutcome, UnitCost) {
        let rc = RunConfig {
            seed,
            ..self.rc.clone()
        };
        let mut driver = Driver::new(self.setup.clone()).with_config(rc);
        if let Some(cache) = cache {
            driver = driver.with_cache(Arc::clone(cache));
        }
        let outcome = match &self.exec {
            ExecSpec::Run {
                mpl,
                policy,
                arrivals,
            } => {
                let arr = arrivals.resolve(&driver);
                let m = mpl.resolve(&driver);
                ScenarioOutcome::Run(driver.run(m, *policy, &arr))
            }
            ExecSpec::PriorityAtLoss { loss } => {
                ScenarioOutcome::Priority(driver.priority_experiment(*loss))
            }
            ExecSpec::Controller { targets, start } => match obs {
                Some(obs) => {
                    let (out, series) = driver.run_controller_with_series(*targets, *start);
                    obs.add_controller_series(self.cell_label(seed), series);
                    ScenarioOutcome::Controller(out)
                }
                None => {
                    ScenarioOutcome::Controller(driver.run_controller_with_start(*targets, *start))
                }
            },
            ExecSpec::Chaos {
                chaos,
                targets,
                start,
            } => match obs {
                Some(obs) => {
                    let (out, series) = driver.run_chaos_with_series(chaos, *targets, *start);
                    obs.add_controller_series(self.cell_label(seed), series);
                    ScenarioOutcome::Chaos(out)
                }
                None => ScenarioOutcome::Chaos(driver.run_chaos(chaos, *targets, *start)),
            },
        };
        (outcome, UnitCost::from_drivers(&[&driver]))
    }

    /// Number of sub-runs the sweep executor splits this cell into: the
    /// configured `rc.subruns` for plain fixed-MPL (or MPL-less) runs, 1
    /// for everything else. `AtLoss`, priority, and controller cells are
    /// multi-phase searches, not one steady-state measurement — splitting
    /// them would re-run the search per sub-run.
    pub fn subrun_count(&self) -> u32 {
        match &self.exec {
            ExecSpec::Run {
                mpl: MplSpec::Fixed(_) | MplSpec::Unlimited,
                ..
            } => self.rc.subruns.max(1),
            _ => 1,
        }
    }

    /// Execute sub-run `k` of `of` for this cell (only valid for the
    /// shapes [`Scenario::subrun_count`] splits). Returns the sub-run's
    /// result plus cost telemetry (see [`Scenario::run_timed`]).
    ///
    /// The split discipline: arrival/MPL specs resolve against the
    /// *parent* seed (so an open-load cell's capacity reference is the
    /// same cached measurement sub-runs share with the unsplit cell), and
    /// each sub-run then simulates `⌈measured/of⌉` transactions — with
    /// its own full warmup — under a seed drawn from the xoshiro256++
    /// stream `derive(seed, "subrun/k/of")`. Sub-runs are therefore
    /// mutually independent and independent of the parent stream, and the
    /// whole expansion is a pure function of `(scenario, seed)` — claim
    /// order on the worker pool cannot change a byte.
    pub fn run_subrun(
        &self,
        seed: u64,
        k: u32,
        of: u32,
        cache: Option<&Arc<MeasurementCache>>,
    ) -> (RunResult, UnitCost) {
        let ExecSpec::Run {
            mpl,
            policy,
            arrivals,
        } = &self.exec
        else {
            panic!("run_subrun on a non-splittable execution shape");
        };
        let rc = RunConfig {
            seed,
            ..self.rc.clone()
        };
        let mut parent = Driver::new(self.setup.clone()).with_config(rc);
        if let Some(cache) = cache {
            parent = parent.with_cache(Arc::clone(cache));
        }
        let arr = arrivals.resolve(&parent);
        let m = mpl.resolve(&parent);
        let sub_seed = SimRng::derive(seed, &format!("subrun/{k}/{of}")).next_u64();
        let sub_rc = RunConfig {
            seed: sub_seed,
            measured_txns: self.rc.measured_txns.div_ceil(u64::from(of.max(1))),
            subruns: 1,
            ..self.rc.clone()
        };
        let mut sub = Driver::new(self.setup.clone()).with_config(sub_rc);
        if let Some(cache) = cache {
            sub = sub.with_cache(Arc::clone(cache));
        }
        let result = sub.run(m, *policy, &arr);
        (result, UnitCost::from_drivers(&[&parent, &sub]))
    }

    /// Execute one work *unit* of this cell: the whole scenario when it
    /// does not split (`of <= 1`), or sub-run `k` of `of` when it does.
    /// This is the single dispatch point the sweep executor's guarded
    /// (fault-tolerant) path runs under `catch_unwind` and the watchdog —
    /// one function owning "run exactly this unit" keeps the retry loop
    /// shape-agnostic. Returns the unit's outcome plus cost telemetry
    /// (see [`Scenario::run_timed`]).
    pub fn run_unit(
        &self,
        seed: u64,
        k: u32,
        of: u32,
        cache: Option<&Arc<MeasurementCache>>,
        obs: Option<&SweepObs>,
    ) -> (UnitOutcome, UnitCost) {
        if of <= 1 {
            let (outcome, cost) = self.run_timed(seed, cache, obs);
            (UnitOutcome::Whole(outcome), cost)
        } else {
            let (result, cost) = self.run_subrun(seed, k, of, cache);
            (UnitOutcome::Part(result), cost)
        }
    }

    /// This cell's label in telemetry documents: row, column (when the
    /// table has one), and the replication seed.
    pub fn cell_label(&self, seed: u64) -> String {
        if self.col.is_empty() {
            format!("{} [seed {seed}]", self.row)
        } else {
            format!("{} / {} [seed {seed}]", self.row, self.col)
        }
    }
}

/// What one executed work unit produced: a whole cell's outcome, or one
/// sub-run's slice of a split cell (see [`Scenario::run_unit`]).
#[derive(Debug, Clone)]
pub enum UnitOutcome {
    /// The unit was the entire cell.
    Whole(ScenarioOutcome),
    /// The unit was one sub-run of a split cell.
    Part(RunResult),
}

/// Observational cost telemetry of one executed unit. `ref_secs` is
/// host- and cache-dependent wall clock; the event counts are
/// deterministic in the runs the unit performed (which runs those are —
/// i.e. whether a reference computed or hit the cache — still depends on
/// claim order, which is why the sweep layer reports the cache-stable
/// `events - ref_events` difference per cell). Never part of a result.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UnitCost {
    /// Wall-clock seconds spent computing reference (capacity) runs.
    pub ref_secs: f64,
    /// Total simulator events processed by the unit.
    pub events: u64,
    /// The share of `events` spent computing reference runs.
    pub ref_events: u64,
}

impl UnitCost {
    /// Sum the cost telemetry of the drivers a unit executed through.
    fn from_drivers(drivers: &[&Driver]) -> UnitCost {
        let mut cost = UnitCost::default();
        for d in drivers {
            cost.ref_secs += d.reference_compute_secs();
            cost.events += d.events_processed();
            cost.ref_events += d.reference_compute_events();
        }
        cost
    }
}

/// The measured outcome of one scenario replication.
#[derive(Debug, Clone, Serialize)]
pub enum ScenarioOutcome {
    /// A plain measured run.
    Run(RunResult),
    /// A Fig.-11-style priority experiment.
    Priority(PriorityOutcome),
    /// A controller session.
    Controller(ControllerOutcome),
    /// A chaos robustness session.
    Chaos(ChaosOutcome),
}

impl ScenarioOutcome {
    /// The run result, if this outcome is a plain run.
    pub fn as_run(&self) -> Option<&RunResult> {
        match self {
            ScenarioOutcome::Run(r) => Some(r),
            _ => None,
        }
    }

    /// The priority outcome, if this is a priority experiment.
    pub fn as_priority(&self) -> Option<&PriorityOutcome> {
        match self {
            ScenarioOutcome::Priority(p) => Some(p),
            _ => None,
        }
    }

    /// The controller outcome, if this is a controller session.
    pub fn as_controller(&self) -> Option<&ControllerOutcome> {
        match self {
            ScenarioOutcome::Controller(c) => Some(c),
            _ => None,
        }
    }

    /// The chaos outcome, if this is a chaos robustness session.
    pub fn as_chaos(&self) -> Option<&ChaosOutcome> {
        match self {
            ScenarioOutcome::Chaos(c) => Some(c),
            _ => None,
        }
    }

    /// Every scalar this outcome reports, as `(metric name, value)` pairs
    /// — the feed for the replication aggregator. Names are shared across
    /// outcome kinds where the quantity is the same (`throughput`,
    /// `mean_rt`, `rt_high`, ...), so one table column definition works
    /// for mixed rows (e.g. Fig. 12's internal vs external schemes).
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        match self {
            ScenarioOutcome::Run(r) => vec![
                ("mpl", f64::from(r.mpl)),
                ("throughput", r.throughput),
                ("mean_rt", r.mean_rt),
                ("rt_high", r.rt_high),
                ("rt_low", r.rt_low),
                ("p95_rt", r.p95_rt),
                ("c2_rt", r.c2_rt),
                ("mean_external_wait", r.mean_external_wait),
                ("mean_lock_wait", r.mean_lock_wait),
                // Companion to `mean_rt`: the per-run batch-means CI
                // half-width, so `Replications::summary("mean_rt", ..)`
                // can print both CI flavors.
                ("mean_rt_bm_hw", r.rt_bm_half_width),
                ("aborts_per_txn", r.aborts_per_txn),
                ("log_util", r.metrics.log_utilization()),
                ("disk_util", r.metrics.disk_utilization()),
                ("hit_ratio", r.metrics.hit_ratio()),
                ("rt_p95", r.rt_p95),
                ("rt_p99", r.rt_p99),
            ],
            ScenarioOutcome::Priority(p) => vec![
                ("mpl", f64::from(p.mpl)),
                ("throughput", p.achieved_tput),
                ("mean_rt", p.rt_overall),
                ("rt_high", p.rt_high),
                ("rt_low", p.rt_low),
                ("rt_noprio", p.rt_noprio),
                ("reference_tput", p.reference_tput),
                ("differentiation", p.differentiation()),
                ("low_penalty", p.low_penalty()),
            ],
            ScenarioOutcome::Controller(c) => vec![
                ("final_mpl", f64::from(c.final_mpl)),
                ("iterations", f64::from(c.iterations)),
                ("jumpstart_mpl", f64::from(c.jumpstart_mpl)),
                ("reference_tput", c.reference_tput),
                ("reference_rt", c.reference_rt),
                ("converged", if c.converged { 1.0 } else { 0.0 }),
            ],
            ScenarioOutcome::Chaos(c) => vec![
                ("final_mpl", f64::from(c.final_mpl)),
                ("peak_mpl", f64::from(c.peak_mpl)),
                ("overshoot", f64::from(c.overshoot)),
                ("reaction_windows", f64::from(c.reaction_windows)),
                ("post_onset_windows", f64::from(c.post_onset_windows)),
                ("iterations", f64::from(c.iterations)),
                ("discarded_windows", f64::from(c.discarded_windows)),
                ("reference_tput", c.reference_tput),
                ("converged", if c.converged { 1.0 } else { 0.0 }),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsched_workload::setup;

    #[test]
    fn scenario_run_matches_direct_driver_call() {
        let rc = RunConfig::quick();
        let sc = Scenario::tput("s1", setup(1), 5, rc.clone());
        let out = sc.run(rc.seed);
        let direct = Driver::new(setup(1)).with_config(rc).run(
            5,
            PolicyKind::Fifo,
            &ArrivalProcess::saturated(100),
        );
        let run = out.as_run().expect("plain run");
        assert_eq!(run.throughput.to_bits(), direct.throughput.to_bits());
        assert_eq!(run.mean_rt.to_bits(), direct.mean_rt.to_bits());
    }

    #[test]
    fn at_loss_mpl_matches_find_mpl_for_loss() {
        let rc = RunConfig::quick();
        let sc = Scenario {
            row: "x".into(),
            col: String::new(),
            setup: setup(1),
            exec: ExecSpec::Run {
                mpl: MplSpec::AtLoss(0.20),
                policy: PolicyKind::Fifo,
                arrivals: ArrivalSpec::Saturated,
            },
            rc: rc.clone(),
        };
        let out = sc.run(rc.seed);
        let want = Driver::new(setup(1))
            .with_config(rc)
            .find_mpl_for_loss(0.20)
            .0;
        assert_eq!(out.as_run().unwrap().mpl, want);
    }

    #[test]
    fn chaos_scenario_reports_reaction_metrics() {
        let rc = RunConfig::quick();
        let sc = Scenario {
            row: "chaos".into(),
            col: String::new(),
            setup: setup(1),
            exec: ExecSpec::Chaos {
                chaos: ChaosSpec::quiet(2.0, 1_500),
                targets: Targets::twenty_percent(),
                start: None,
            },
            rc: rc.clone(),
        };
        assert_eq!(sc.subrun_count(), 1, "chaos cells never split");
        let out = sc.run(rc.seed);
        let chaos = out.as_chaos().expect("chaos outcome");
        assert!(chaos.post_onset_windows > 0);
        for key in [
            "reaction_windows",
            "overshoot",
            "peak_mpl",
            "final_mpl",
            "discarded_windows",
            "converged",
        ] {
            assert!(
                out.metrics().iter().any(|(k, _)| *k == key),
                "chaos outcome lacks {key}"
            );
        }
    }

    #[test]
    fn outcome_metrics_share_names_across_kinds() {
        let rc = RunConfig::quick();
        let run = Scenario::tput("s1", setup(1), 5, rc.clone()).run(rc.seed);
        let prio = Scenario {
            row: "p".into(),
            col: String::new(),
            setup: setup(1),
            exec: ExecSpec::PriorityAtLoss { loss: 0.20 },
            rc: rc.clone(),
        }
        .run(rc.seed);
        for key in ["mpl", "throughput", "mean_rt", "rt_high", "rt_low"] {
            assert!(
                run.metrics().iter().any(|(k, _)| *k == key),
                "run lacks {key}"
            );
            assert!(
                prio.metrics().iter().any(|(k, _)| *k == key),
                "prio lacks {key}"
            );
        }
    }
}
