//! Sharded sweep execution: slot-indexed partial results and their
//! bit-exact merge.
//!
//! A [`SweepPlan`] expands to a flat task list (see [`SweepPlan::tasks`]);
//! shard `i` of `n` executes the strided slice `i, i+n, i+2n, …` and
//! produces a [`ShardResult`] — outcomes tagged with their *global* task
//! index. [`ShardResult::merge`] validates that a set of shards exactly
//! partitions the plan and reassembles the full sweep; because every task
//! is a pure function of `(scenario, seed)` and slots are indexed by task
//! id, the merged results are **bit-identical** to an unsharded run.
//!
//! For crossing process or host boundaries, [`ShardResult::encode`] and
//! [`ShardResult::decode`] provide a plain-text wire format that
//! round-trips every outcome field exactly (floats travel as their IEEE
//! bit patterns), so a sweep split with `figures --shard i/n` and
//! reassembled with `figures --merge` prints byte-identical tables.

use crate::controller::IterationRecord;
use crate::driver::{ChaosOutcome, ControllerOutcome, PriorityOutcome, RunResult};
use crate::fault::{TaskError, TaskFailure};
use crate::scenario::ScenarioOutcome;
use crate::sweep::{assemble, ScenarioResult, SweepPlan};
use serde::Serialize;
use std::fmt;
use xsched_dbms::DbmsMetrics;

/// A typed decode failure: which line of the payload was malformed, the
/// offending text, and what went wrong — so a bad byte in a multi-payload
/// stream (or a checkpoint journal) is locatable instead of a bare
/// `format!` string that lost its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// 1-based line number within the decoded text (0 when the failure
    /// has no line, e.g. an empty payload).
    pub line: usize,
    /// The offending line, truncated for display.
    pub context: String,
    /// What was wrong with it.
    pub msg: String,
}

impl DecodeError {
    pub(crate) fn at(line: usize, context: &str, msg: impl Into<String>) -> DecodeError {
        let mut context = context.to_string();
        if context.len() > 96 {
            context.truncate(93);
            context.push_str("...");
        }
        DecodeError {
            line,
            context,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {} (`{}`)", self.line, self.msg, self.context)
        }
    }
}

impl std::error::Error for DecodeError {}

/// The slot-indexed outcomes of one shard of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ShardResult {
    /// Which shard this is (0-based).
    pub shard: usize,
    /// Total number of shards the plan was split into.
    pub of: usize,
    /// [`SweepPlan::fingerprint`] of the plan that produced this shard;
    /// merging refuses shards from a different plan.
    pub plan_fingerprint: u64,
    /// Task count of the *full* plan (not just this shard).
    pub task_count: usize,
    /// `(global task index, outcome)` pairs for this shard's slice.
    pub entries: Vec<(usize, ScenarioOutcome)>,
    /// `(global task index, failure)` pairs for tasks this shard ran but
    /// could not complete under `--keep-going`: the cell is *covered*
    /// (merge treats it like an entry for partition accounting) but
    /// carries a typed [`TaskFailure`] instead of an outcome. Empty on
    /// every fail-fast run.
    pub failures: Vec<(usize, TaskFailure)>,
    /// `(global task index, wall-clock seconds)` telemetry for the tasks
    /// this shard executed. Observational only: it rides the wire format
    /// as an optional trailing section and never participates in merge
    /// validation or result assembly, so runs with different timings
    /// still merge to byte-identical tables. Empty for decoded payloads
    /// that carried no timings.
    pub timings: Vec<(usize, f64)>,
    /// `(global task index, seconds spent *computing* reference runs)`
    /// for the tasks whose execution paid for a capacity measurement —
    /// sparse: cells served from the measurement cache contribute
    /// nothing. Like [`ShardResult::timings`], purely observational
    /// (cost-model calibration bills these to a `ref/` bucket) and an
    /// optional trailing wire section older payloads lack.
    pub ref_timings: Vec<(usize, f64)>,
    /// `(global task index, simulation events processed)` for the tasks
    /// this shard executed, *net of* any reference-run events (those are
    /// reported separately below). Unlike wall-clock [`ShardResult::timings`]
    /// this signal is deterministic in `(scenario, seed)`, so calibration
    /// files built from it are host-independent. Observational only;
    /// an optional trailing wire section older payloads lack.
    pub events: Vec<(usize, u64)>,
    /// `(global task index, simulation events spent computing reference
    /// runs)` — the event-currency counterpart of
    /// [`ShardResult::ref_timings`]: sparse, deterministic, observational.
    pub ref_events: Vec<(usize, u64)>,
}

impl ShardResult {
    /// Reassemble the full sweep from shards of `plan`.
    ///
    /// Validates that every shard was produced from this exact plan (by
    /// fingerprint and task count) and that the shards cover every task
    /// index exactly once; any gap, duplicate, or mismatch is an error.
    /// The assembled [`ScenarioResult`]s are bit-identical to
    /// [`SweepExecutor::run`](crate::SweepExecutor::run) on the same plan.
    pub fn merge<'a>(
        plan: &SweepPlan,
        shards: impl IntoIterator<Item = &'a ShardResult>,
    ) -> Result<Vec<ScenarioResult>, String> {
        let fp = plan.fingerprint();
        let task_count = plan.task_count();
        let mut entries: Vec<(usize, ScenarioOutcome)> = Vec::with_capacity(task_count);
        let mut failures: Vec<(usize, TaskFailure)> = Vec::new();
        let mut seen = vec![false; task_count];
        for shard in shards {
            if shard.plan_fingerprint != fp {
                return Err(format!(
                    "shard {}/{} was produced from a different plan \
                     (fingerprint {:016x}, want {:016x})",
                    shard.shard, shard.of, shard.plan_fingerprint, fp
                ));
            }
            if shard.task_count != task_count {
                return Err(format!(
                    "shard {}/{} covers a {}-task plan, want {task_count}",
                    shard.shard, shard.of, shard.task_count
                ));
            }
            // A failed task still *covers* its index: the shard ran it
            // and is reporting a typed failure, so partition accounting
            // treats entries and failures identically.
            let mut claim = |t: usize| -> Result<(), String> {
                if t >= task_count {
                    return Err(format!("task index {t} out of range for {task_count}"));
                }
                if seen[t] {
                    return Err(format!("task {t} appears in more than one shard"));
                }
                seen[t] = true;
                Ok(())
            };
            for (t, outcome) in &shard.entries {
                claim(*t)?;
                entries.push((*t, outcome.clone()));
            }
            for (t, failure) in &shard.failures {
                claim(*t)?;
                failures.push((*t, failure.clone()));
            }
        }
        if let Some(missing) = seen.iter().position(|covered| !covered) {
            return Err(format!(
                "incomplete partition: task {missing} is covered by no shard"
            ));
        }
        Ok(assemble(plan, entries, failures))
    }

    /// Aggregate just this shard's slice of `plan` (cells the shard did
    /// not execute simply have no replications). Useful for previewing a
    /// shard's share; the real tables come from [`ShardResult::merge`].
    pub fn partial_results(&self, plan: &SweepPlan) -> Vec<ScenarioResult> {
        assemble(plan, self.entries.clone(), self.failures.clone())
    }

    /// Serialize to the plain-text wire format (one header line, one line
    /// per task). Floats are written as IEEE-754 bit patterns, so
    /// `decode(encode(x))` reproduces every field of every outcome
    /// bit for bit. Per-task timings follow the entries as `timing`
    /// lines — an optional section older payloads simply lack.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "xsched-shard v1 plan={:016x} tasks={} shard={} of={} entries={}\n",
            self.plan_fingerprint,
            self.task_count,
            self.shard,
            self.of,
            self.entries.len()
        );
        for (t, outcome) in &self.entries {
            out.push_str(&format!("{t} {}\n", encode_outcome(outcome)));
        }
        for (t, failure) in &self.failures {
            out.push_str(&format!("failed {t} {}\n", encode_failure(failure)));
        }
        for (t, secs) in &self.timings {
            out.push_str(&format!("timing {t} {}\n", fh(*secs)));
        }
        for (t, secs) in &self.ref_timings {
            out.push_str(&format!("reftiming {t} {}\n", fh(*secs)));
        }
        for (t, n) in &self.events {
            out.push_str(&format!("events {t} {n}\n"));
        }
        for (t, n) in &self.ref_events {
            out.push_str(&format!("refevents {t} {n}\n"));
        }
        out
    }

    /// Parse one payload produced by [`ShardResult::encode`]. Errors
    /// carry the 1-based line number and the offending line.
    pub fn decode(text: &str) -> Result<ShardResult, DecodeError> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        Self::decode_lines(&lines)
    }

    /// Decode from pre-filtered `(original line number, line)` pairs —
    /// the shared core of [`ShardResult::decode`] and [`decode_payloads`]
    /// that lets errors report positions in the *original* stream even
    /// after comment/blank stripping and payload splitting.
    fn decode_lines(lines: &[(usize, &str)]) -> Result<ShardResult, DecodeError> {
        let &(header_no, header) = lines
            .first()
            .ok_or_else(|| DecodeError::at(0, "", "empty shard payload"))?;
        let herr = |msg: String| DecodeError::at(header_no, header, msg);
        let mut fields = header.split_whitespace();
        if (fields.next(), fields.next()) != (Some("xsched-shard"), Some("v1")) {
            return Err(herr(format!("not a v1 shard payload: `{header}`")));
        }
        let mut get = |name: &str| -> Result<String, String> {
            let tok = fields
                .next()
                .ok_or_else(|| format!("header missing `{name}`"))?;
            tok.strip_prefix(&format!("{name}="))
                .map(str::to_string)
                .ok_or_else(|| format!("expected `{name}=…`, got `{tok}`"))
        };
        let plan_fingerprint = u64::from_str_radix(&get("plan").map_err(&herr)?, 16)
            .map_err(|e| herr(format!("bad plan fingerprint: {e}")))?;
        let parse = |s: String| s.parse::<usize>().map_err(|e| format!("bad header: {e}"));
        let task_count = parse(get("tasks").map_err(&herr)?).map_err(&herr)?;
        let shard = parse(get("shard").map_err(&herr)?).map_err(&herr)?;
        let of = parse(get("of").map_err(&herr)?).map_err(&herr)?;
        let entries_len = parse(get("entries").map_err(&herr)?).map_err(&herr)?;

        let mut entries = Vec::with_capacity(entries_len);
        let mut failures = Vec::new();
        let mut timings = Vec::new();
        let mut ref_timings = Vec::new();
        let mut events = Vec::new();
        let mut ref_events = Vec::new();
        let parse_events = |rest: &str| -> Result<(usize, u64), String> {
            let (idx, count) = rest
                .split_once(' ')
                .ok_or_else(|| "malformed events line".to_string())?;
            let t: usize = idx.parse().map_err(|e| format!("bad events index: {e}"))?;
            let n: u64 = count
                .parse()
                .map_err(|e| format!("bad event count `{count}`: {e}"))?;
            Ok((t, n))
        };
        let parse_timing = |rest: &str| -> Result<(usize, f64), String> {
            let (idx, bits) = rest
                .split_once(' ')
                .ok_or_else(|| "malformed timing line".to_string())?;
            let t: usize = idx.parse().map_err(|e| format!("bad timing index: {e}"))?;
            let secs = u64::from_str_radix(bits, 16)
                .map(f64::from_bits)
                .map_err(|e| format!("bad timing bits `{bits}`: {e}"))?;
            Ok((t, secs))
        };
        for &(no, line) in &lines[1..] {
            let fail = |msg: String| DecodeError::at(no, line, msg);
            if let Some(rest) = line.strip_prefix("timing ") {
                timings.push(parse_timing(rest).map_err(&fail)?);
                continue;
            }
            if let Some(rest) = line.strip_prefix("reftiming ") {
                ref_timings.push(parse_timing(rest).map_err(&fail)?);
                continue;
            }
            if let Some(rest) = line.strip_prefix("events ") {
                events.push(parse_events(rest).map_err(&fail)?);
                continue;
            }
            if let Some(rest) = line.strip_prefix("refevents ") {
                ref_events.push(parse_events(rest).map_err(&fail)?);
                continue;
            }
            if let Some(rest) = line.strip_prefix("failed ") {
                let (idx, spec) = rest
                    .split_once(' ')
                    .ok_or_else(|| fail("malformed failed line".to_string()))?;
                let t: usize = idx
                    .parse()
                    .map_err(|e| fail(format!("bad task index: {e}")))?;
                failures.push((t, decode_failure(spec).map_err(&fail)?));
                continue;
            }
            let (idx, rest) = line
                .split_once(' ')
                .ok_or_else(|| fail("malformed entry line".to_string()))?;
            let t: usize = idx
                .parse()
                .map_err(|e| fail(format!("bad task index: {e}")))?;
            entries.push((t, decode_outcome(rest).map_err(&fail)?));
        }
        if entries.len() != entries_len {
            return Err(herr(format!(
                "payload advertises {entries_len} entries but carries {}",
                entries.len()
            )));
        }
        Ok(ShardResult {
            shard,
            of,
            plan_fingerprint,
            task_count,
            entries,
            failures,
            timings,
            ref_timings,
            events,
            ref_events,
        })
    }
}

/// Split a text stream into individual shard payloads (a file may carry
/// several, e.g. one per experiment); `#`-prefixed lines are comments.
/// Decode errors report line numbers relative to the original stream.
pub fn decode_payloads(text: &str) -> Result<Vec<ShardResult>, DecodeError> {
    let mut payloads = Vec::new();
    let mut current: Vec<(usize, &str)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        if line.starts_with("xsched-shard ") && !current.is_empty() {
            payloads.push(ShardResult::decode_lines(&current)?);
            current.clear();
        }
        current.push((i + 1, line));
    }
    if !current.is_empty() {
        payloads.push(ShardResult::decode_lines(&current)?);
    }
    Ok(payloads)
}

// ---------------------------------------------------------------------------
// Outcome codec. Fields travel positionally in declaration order; floats as
// 16-hex-digit IEEE bit patterns so every value round-trips exactly. The
// round-trip property test in `tests/props.rs` locks encoder and decoder
// together.

fn fh(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

struct Tokens<'a>(std::str::SplitWhitespace<'a>);

impl Tokens<'_> {
    fn next(&mut self) -> Result<&str, String> {
        self.0.next().ok_or_else(|| "truncated outcome".to_string())
    }
    fn f64(&mut self) -> Result<f64, String> {
        let tok = self.next()?;
        u64::from_str_radix(tok, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("bad float bits `{tok}`: {e}"))
    }
    fn int<T: std::str::FromStr>(&mut self) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let tok = self.next()?;
        tok.parse().map_err(|e| format!("bad integer `{tok}`: {e}"))
    }
    fn bool(&mut self) -> Result<bool, String> {
        Ok(self.int::<u8>()? != 0)
    }
}

/// Encode one outcome as a single line of text, covering **every** field
/// bit-exactly. Also the canonical form for bitwise outcome comparison in
/// tests: two outcomes are identical iff their encodings are equal.
pub fn encode_outcome(outcome: &ScenarioOutcome) -> String {
    match outcome {
        ScenarioOutcome::Run(r) => {
            let disks = if r.metrics.disk_busy.is_empty() {
                "-".to_string()
            } else {
                r.metrics
                    .disk_busy
                    .iter()
                    .map(|&d| fh(d))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let m = &r.metrics;
            format!(
                "R {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
                r.mpl,
                fh(r.throughput),
                fh(r.mean_rt),
                fh(r.rt_high),
                fh(r.rt_low),
                r.count_high,
                r.count_low,
                fh(r.p95_rt),
                fh(r.c2_rt),
                fh(r.rt_bm_half_width),
                fh(r.mean_external_wait),
                fh(r.mean_lock_wait),
                fh(r.aborts_per_txn),
                m.commits,
                m.aborts,
                m.deadlock_aborts,
                m.pow_aborts,
                m.timeout_aborts,
                m.group_commits,
                m.writebacks,
                m.bp_hits,
                m.bp_misses,
                fh(m.cpu_busy),
                disks,
                fh(m.log_busy),
                fh(m.elapsed),
                fh(r.rt_p95),
                fh(r.rt_p99),
            )
        }
        ScenarioOutcome::Priority(p) => format!(
            "P {} {} {} {} {} {} {} {}",
            p.setup_id,
            p.mpl,
            fh(p.rt_high),
            fh(p.rt_low),
            fh(p.rt_noprio),
            fh(p.rt_overall),
            fh(p.reference_tput),
            fh(p.achieved_tput),
        ),
        ScenarioOutcome::Controller(c) => {
            let trace = if c.trace.is_empty() {
                "-".to_string()
            } else {
                c.trace
                    .iter()
                    .map(|w| {
                        format!(
                            "{}:{}:{}:{}",
                            w.mpl,
                            fh(w.throughput),
                            fh(w.mean_rt),
                            u8::from(w.feasible)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(";")
            };
            format!(
                "C {} {} {} {} {} {} {} {}",
                c.final_mpl,
                c.iterations,
                c.jumpstart_mpl,
                fh(c.reference_tput),
                fh(c.reference_rt),
                u8::from(c.converged),
                c.discarded_windows,
                trace,
            )
        }
        ScenarioOutcome::Chaos(c) => format!(
            "X {} {} {} {} {} {} {} {} {}",
            c.final_mpl,
            c.peak_mpl,
            c.overshoot,
            c.reaction_windows,
            c.post_onset_windows,
            u8::from(c.converged),
            c.iterations,
            c.discarded_windows,
            fh(c.reference_tput),
        ),
    }
}

/// Decode one line produced by [`encode_outcome`].
pub fn decode_outcome(line: &str) -> Result<ScenarioOutcome, String> {
    let mut t = Tokens(line.split_whitespace());
    match t.next()? {
        "R" => {
            let mpl = t.int()?;
            let throughput = t.f64()?;
            let mean_rt = t.f64()?;
            let rt_high = t.f64()?;
            let rt_low = t.f64()?;
            let count_high = t.int()?;
            let count_low = t.int()?;
            let p95_rt = t.f64()?;
            let c2_rt = t.f64()?;
            let rt_bm_half_width = t.f64()?;
            let mean_external_wait = t.f64()?;
            let mean_lock_wait = t.f64()?;
            let aborts_per_txn = t.f64()?;
            let commits = t.int()?;
            let aborts = t.int()?;
            let deadlock_aborts = t.int()?;
            let pow_aborts = t.int()?;
            let timeout_aborts = t.int()?;
            let group_commits = t.int()?;
            let writebacks = t.int()?;
            let bp_hits = t.int()?;
            let bp_misses = t.int()?;
            let cpu_busy = t.f64()?;
            let disks_tok = t.next()?.to_string();
            let disk_busy = if disks_tok == "-" {
                Vec::new()
            } else {
                disks_tok
                    .split(',')
                    .map(|d| {
                        u64::from_str_radix(d, 16)
                            .map(f64::from_bits)
                            .map_err(|e| format!("bad disk busy `{d}`: {e}"))
                    })
                    .collect::<Result<_, _>>()?
            };
            let log_busy = t.f64()?;
            let elapsed = t.f64()?;
            // The histogram percentiles travel after the metrics block:
            // they were appended to the line format, keeping older
            // offsets stable for eyeballing diffs.
            let rt_p95 = t.f64()?;
            let rt_p99 = t.f64()?;
            Ok(ScenarioOutcome::Run(RunResult {
                mpl,
                throughput,
                mean_rt,
                rt_high,
                rt_low,
                count_high,
                count_low,
                p95_rt,
                rt_p95,
                rt_p99,
                c2_rt,
                rt_bm_half_width,
                mean_external_wait,
                mean_lock_wait,
                aborts_per_txn,
                metrics: DbmsMetrics {
                    commits,
                    aborts,
                    deadlock_aborts,
                    pow_aborts,
                    timeout_aborts,
                    group_commits,
                    writebacks,
                    bp_hits,
                    bp_misses,
                    cpu_busy,
                    disk_busy,
                    log_busy,
                    elapsed,
                },
            }))
        }
        "P" => Ok(ScenarioOutcome::Priority(PriorityOutcome {
            setup_id: t.int()?,
            mpl: t.int()?,
            rt_high: t.f64()?,
            rt_low: t.f64()?,
            rt_noprio: t.f64()?,
            rt_overall: t.f64()?,
            reference_tput: t.f64()?,
            achieved_tput: t.f64()?,
        })),
        "C" => {
            let final_mpl = t.int()?;
            let iterations = t.int()?;
            let jumpstart_mpl = t.int()?;
            let reference_tput = t.f64()?;
            let reference_rt = t.f64()?;
            let converged = t.bool()?;
            let discarded_windows = t.int()?;
            let trace_tok = t.next()?;
            let trace = if trace_tok == "-" {
                Vec::new()
            } else {
                trace_tok
                    .split(';')
                    .map(|w| -> Result<IterationRecord, String> {
                        let parts: Vec<&str> = w.split(':').collect();
                        let [mpl, tput, rt, feas] = parts[..] else {
                            return Err(format!("malformed trace window `{w}`"));
                        };
                        let bits = |s: &str| {
                            u64::from_str_radix(s, 16)
                                .map(f64::from_bits)
                                .map_err(|e| format!("bad trace float `{s}`: {e}"))
                        };
                        Ok(IterationRecord {
                            mpl: mpl.parse().map_err(|e| format!("bad trace mpl: {e}"))?,
                            throughput: bits(tput)?,
                            mean_rt: bits(rt)?,
                            feasible: feas == "1",
                        })
                    })
                    .collect::<Result<_, _>>()?
            };
            Ok(ScenarioOutcome::Controller(ControllerOutcome {
                final_mpl,
                iterations,
                jumpstart_mpl,
                reference_tput,
                reference_rt,
                converged,
                discarded_windows,
                trace,
            }))
        }
        "X" => Ok(ScenarioOutcome::Chaos(ChaosOutcome {
            final_mpl: t.int()?,
            peak_mpl: t.int()?,
            overshoot: t.int()?,
            reaction_windows: t.int()?,
            post_onset_windows: t.int()?,
            converged: t.bool()?,
            iterations: t.int()?,
            discarded_windows: t.int()?,
            reference_tput: t.f64()?,
        })),
        other => Err(format!("unknown outcome kind `{other}`")),
    }
}

/// Encode a [`TaskFailure`] as wire tokens: `<attempts> <kind> <detail>`.
/// Panic/injected messages are percent-escaped into a single token so
/// arbitrary text (spaces, newlines, non-ASCII) survives the line-based
/// format; timeout deadlines travel as IEEE bits like every other float.
pub fn encode_failure(f: &TaskFailure) -> String {
    match &f.error {
        TaskError::Panic(msg) => format!("{} panic {}", f.attempts, esc(msg)),
        TaskError::Timeout(limit) => format!("{} timeout {}", f.attempts, fh(*limit)),
        TaskError::Injected(what) => format!("{} injected {}", f.attempts, esc(what)),
    }
}

/// Decode the tokens produced by [`encode_failure`].
pub fn decode_failure(s: &str) -> Result<TaskFailure, String> {
    let mut t = Tokens(s.split_whitespace());
    let attempts: u32 = t.int()?;
    let kind = t.next()?.to_string();
    let detail = t.next()?.to_string();
    let error = match kind.as_str() {
        "panic" => TaskError::Panic(unesc(&detail)?),
        "timeout" => TaskError::Timeout(
            u64::from_str_radix(&detail, 16)
                .map(f64::from_bits)
                .map_err(|e| format!("bad timeout bits `{detail}`: {e}"))?,
        ),
        "injected" => TaskError::Injected(unesc(&detail)?),
        other => return Err(format!("unknown failure kind `{other}`")),
    };
    Ok(TaskFailure { error, attempts })
}

/// Percent-escape arbitrary text into one whitespace-free token. The
/// empty string encodes as a lone `%` (never produced otherwise, since a
/// real escape is always `%` + two hex digits).
fn esc(s: &str) -> String {
    if s.is_empty() {
        return "%".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-' | b':' | b'/') {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02x}"));
        }
    }
    out
}

/// Invert [`esc`].
fn unesc(s: &str) -> Result<String, String> {
    if s == "%" {
        return Ok(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in `{s}`"))?;
            out.push(u8::from_str_radix(hex, 16).map_err(|e| format!("bad escape `%{hex}`: {e}"))?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|e| format!("escaped text is not UTF-8: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::RunConfig;
    use crate::scenario::Scenario;
    use crate::sweep::SweepExecutor;
    use xsched_workload::setup;

    fn tiny_plan() -> SweepPlan {
        let rc = RunConfig {
            warmup_txns: 20,
            measured_txns: 120,
            ..Default::default()
        };
        let scenarios = [1u32, 4, 9]
            .iter()
            .map(|&m| Scenario::tput("s1", setup(1), m, rc.clone()))
            .collect();
        SweepPlan::new(scenarios).replicated(2, 42)
    }

    fn outcome_bits(results: &[ScenarioResult]) -> Vec<String> {
        results
            .iter()
            .flat_map(|r| r.outcomes.iter().map(encode_outcome))
            .collect()
    }

    #[test]
    fn sharded_run_merges_bit_identical_to_unsharded() {
        let plan = tiny_plan();
        let direct = SweepExecutor::parallel(3).run(&plan);
        for n in [1usize, 2, 3, 4] {
            let shards: Vec<ShardResult> = (0..n)
                .map(|i| SweepExecutor::serial().run_shard(&plan, i, n))
                .collect();
            let merged = ShardResult::merge(&plan, &shards).unwrap();
            assert_eq!(outcome_bits(&direct), outcome_bits(&merged), "n={n}");
        }
    }

    #[test]
    fn encode_decode_round_trips_payloads() {
        let plan = tiny_plan();
        let mut shard = SweepExecutor::serial().run_shard(&plan, 1, 2);
        // Saturated cells never pay for a reference run, so inject a
        // reference timing (and its event-currency twin) to exercise the
        // sparse `reftiming`/`refevents` sections.
        shard.ref_timings.push((3, 0.125));
        shard.ref_events.push((3, 777));
        let decoded = ShardResult::decode(&shard.encode()).unwrap();
        assert_eq!(decoded.shard, 1);
        assert_eq!(decoded.of, 2);
        assert_eq!(decoded.plan_fingerprint, plan.fingerprint());
        assert_eq!(decoded.task_count, plan.task_count());
        assert_eq!(decoded.entries.len(), shard.entries.len());
        for ((ta, a), (tb, b)) in shard.entries.iter().zip(&decoded.entries) {
            assert_eq!(ta, tb);
            assert_eq!(encode_outcome(a), encode_outcome(b));
        }
        // The timing telemetry rides along bit-exactly, one line per
        // executed task.
        assert_eq!(decoded.timings.len(), shard.entries.len());
        for ((ta, a), (tb, b)) in shard.timings.iter().zip(&decoded.timings) {
            assert_eq!(ta, tb);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(decoded.ref_timings, vec![(3, 0.125)]);
        // The deterministic event counts ride along exactly, one per
        // executed task, plus the injected sparse reference entry.
        assert_eq!(decoded.events, shard.events);
        assert_eq!(decoded.events.len(), shard.entries.len());
        assert!(decoded.events.iter().all(|&(_, n)| n > 0));
        assert_eq!(decoded.ref_events, vec![(3, 777)]);
    }

    #[test]
    fn chaos_outcome_round_trips_through_the_codec() {
        let out = ScenarioOutcome::Chaos(ChaosOutcome {
            final_mpl: 7,
            peak_mpl: 19,
            overshoot: 12,
            reaction_windows: 23,
            post_onset_windows: 31,
            converged: true,
            iterations: 45,
            discarded_windows: 6,
            reference_tput: 1234.5678,
        });
        let line = encode_outcome(&out);
        assert!(line.starts_with("X "), "{line}");
        let back = decode_outcome(&line).unwrap();
        assert_eq!(encode_outcome(&back), line);
        let chaos = back.as_chaos().expect("chaos outcome");
        assert_eq!(chaos.peak_mpl, 19);
        assert_eq!(chaos.reference_tput.to_bits(), 1234.5678f64.to_bits());
    }

    #[test]
    fn payloads_without_timings_still_decode() {
        let plan = tiny_plan();
        let shard = SweepExecutor::serial().run_shard(&plan, 0, 2);
        let stripped: String = shard
            .encode()
            .lines()
            .filter(|l| !l.starts_with("timing "))
            .map(|l| format!("{l}\n"))
            .collect();
        let decoded = ShardResult::decode(&stripped).unwrap();
        assert_eq!(decoded.entries.len(), shard.entries.len());
        assert!(decoded.timings.is_empty());
        // And the timing section never affects the merge.
        let other = SweepExecutor::serial().run_shard(&plan, 1, 2);
        let merged = ShardResult::merge(&plan, [&decoded, &other]).unwrap();
        assert_eq!(merged.len(), plan.scenarios.len());
    }

    #[test]
    fn merge_rejects_bad_partitions() {
        let plan = tiny_plan();
        let s0 = SweepExecutor::serial().run_shard(&plan, 0, 2);
        let s1 = SweepExecutor::serial().run_shard(&plan, 1, 2);
        // Missing shard → incomplete partition.
        let err = ShardResult::merge(&plan, [&s0]).unwrap_err();
        assert!(err.contains("incomplete"), "{err}");
        // Duplicate shard → overlap.
        let err = ShardResult::merge(&plan, [&s0, &s0, &s1]).unwrap_err();
        assert!(err.contains("more than one shard"), "{err}");
        // Different plan → fingerprint mismatch.
        let other = SweepPlan::new(plan.scenarios.clone()).replicated(2, 99);
        let err = ShardResult::merge(&other, [&s0, &s1]).unwrap_err();
        assert!(err.contains("different plan"), "{err}");
        // The right partition still works after all that.
        assert_eq!(
            ShardResult::merge(&plan, [&s1, &s0]).unwrap().len(),
            plan.scenarios.len()
        );
    }

    #[test]
    fn decode_payloads_splits_concatenated_streams() {
        let plan = tiny_plan();
        let s0 = SweepExecutor::serial().run_shard(&plan, 0, 2);
        let s1 = SweepExecutor::serial().run_shard(&plan, 1, 2);
        let stream = format!(
            "# experiment demo\n{}\n# next\n{}",
            s0.encode(),
            s1.encode()
        );
        let decoded = decode_payloads(&stream).unwrap();
        assert_eq!(decoded.len(), 2);
        let merged = ShardResult::merge(&plan, &decoded).unwrap();
        let direct = SweepExecutor::serial().run(&plan);
        assert_eq!(outcome_bits(&direct), outcome_bits(&merged));
    }

    #[test]
    fn failures_round_trip_through_the_codec() {
        let cases = [
            TaskFailure {
                error: TaskError::Panic("index out of bounds: the len is 3".to_string()),
                attempts: 3,
            },
            TaskFailure {
                error: TaskError::Panic(String::new()),
                attempts: 1,
            },
            TaskFailure {
                error: TaskError::Panic("smörgåsbord\n% weird %%".to_string()),
                attempts: 2,
            },
            TaskFailure {
                error: TaskError::Timeout(1.5),
                attempts: 4,
            },
            TaskFailure {
                error: TaskError::Injected("panic".to_string()),
                attempts: 1,
            },
        ];
        for f in &cases {
            let spec = encode_failure(f);
            assert!(
                spec.split_whitespace().count() == 3,
                "failure must encode as exactly three tokens: `{spec}`"
            );
            assert_eq!(&decode_failure(&spec).unwrap(), f, "{spec}");
        }
    }

    #[test]
    fn shard_with_failures_round_trips_and_merges() {
        let plan = tiny_plan();
        let mut s0 = SweepExecutor::serial().run_shard(&plan, 0, 2);
        let mut s1 = SweepExecutor::serial().run_shard(&plan, 1, 2);
        // Move one of s1's tasks into the failed set, as a keep-going
        // run with a panicking cell would report it.
        let (t, _) = s1.entries.pop().unwrap();
        s1.failures.push((
            t,
            TaskFailure {
                error: TaskError::Panic("boom at task".to_string()),
                attempts: 2,
            },
        ));
        let decoded = ShardResult::decode(&s1.encode()).unwrap();
        assert_eq!(decoded.failures, s1.failures);
        assert_eq!(decoded.entries.len(), s1.entries.len());
        // A failed task covers its index: the merge accepts the
        // partition and surfaces the failure on the right cell.
        let merged = ShardResult::merge(&plan, [&s0, &decoded]).unwrap();
        let failed: Vec<&TaskFailure> = merged.iter().flat_map(|r| r.failures.iter()).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(
            failed[0].error,
            TaskError::Panic("boom at task".to_string())
        );
        // But a task reported as BOTH an outcome and a failure is a
        // duplicate, same as appearing in two shards.
        s0.failures.push((
            s0.entries[0].0,
            TaskFailure {
                error: TaskError::Timeout(0.5),
                attempts: 1,
            },
        ));
        let err = ShardResult::merge(&plan, [&s0, &s1]).unwrap_err();
        assert!(err.contains("more than one shard"), "{err}");
    }

    #[test]
    fn decode_errors_carry_line_numbers_and_context() {
        let plan = tiny_plan();
        let shard = SweepExecutor::serial().run_shard(&plan, 0, 1);
        let good = shard.encode();

        // Corrupt one entry line: the error names that exact line.
        let mut lines: Vec<String> = good.lines().map(str::to_string).collect();
        lines[2] = "4 R not-hex-bits".to_string();
        let err = ShardResult::decode(&lines.join("\n")).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.context.starts_with("4 R not-hex"), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");

        // Header errors point at line 1.
        let err = ShardResult::decode("xsched-shard v1 plan=zzzz tasks=1 shard=0 of=1 entries=0")
            .unwrap_err();
        assert_eq!(err.line, 1);

        // Empty payloads have no line to blame.
        let err = ShardResult::decode("").unwrap_err();
        assert_eq!(err.line, 0);
        assert_eq!(err.to_string(), "empty shard payload");

        // In a multi-payload stream with comments and blanks, the line
        // number is absolute within the original stream.
        let s1 = SweepExecutor::serial().run_shard(&plan, 1, 2).encode();
        let mut s0 = SweepExecutor::serial().run_shard(&plan, 0, 2).encode();
        s0.push_str("garbage-entry-line\n");
        let stream = format!("# comment\n\n{s1}\n# between\n{s0}");
        let err = decode_payloads(&stream).unwrap_err();
        let expected_line = stream
            .lines()
            .position(|l| l == "garbage-entry-line")
            .unwrap()
            + 1;
        assert_eq!(err.line, expected_line, "{err}");
        assert_eq!(err.context, "garbage-entry-line");
    }

    #[test]
    fn special_floats_round_trip_exactly() {
        // Short runs leave rt_bm_half_width infinite and some Welford
        // fields NaN; the codec must carry them bit for bit.
        let mut r = match tiny_plan().scenarios[0].run(1) {
            ScenarioOutcome::Run(r) => r,
            _ => unreachable!(),
        };
        r.rt_bm_half_width = f64::INFINITY;
        r.c2_rt = f64::NAN;
        let line = encode_outcome(&ScenarioOutcome::Run(r.clone()));
        let back = decode_outcome(&line).unwrap();
        assert_eq!(line, encode_outcome(&back));
    }
}
