//! Structural cost model for sweep tasks.
//!
//! Grid cells in the paper's experiments differ in wall-clock cost by
//! orders of magnitude: a browsing-workload cell runs 5× the transactions
//! of an inventory cell (see `rc_for` in `xsched-bench`), an open-load
//! cell pays an extra capacity-reference run, and a priority or controller
//! cell runs a whole *family* of inner simulations. Static strided
//! sharding ignores all of that, so the slowest shard gates a multi-host
//! sweep. A [`CostModel`] predicts per-task cost from scenario
//! *structure* — transactions × MPL × load class × execution shape — and
//! [`SweepPlan::shard_balanced`](crate::SweepPlan::shard_balanced) turns
//! those predictions into LPT-balanced shard slices.
//!
//! Predictions come in two flavors:
//!
//! * [`CostModel::structural`] — pure structural units, no measurement
//!   needed. Good enough to beat striding on heterogeneous grids because
//!   the big cost ratios (run length, inner-simulation fan-out) are
//!   visible in the scenario itself.
//! * [`CostModel::calibrated`] — scales the structural units with
//!   measured seconds-per-unit per *bucket* (execution shape × arrival
//!   class × workload), fed by the per-cell timing telemetry every
//!   [`ShardResult`](crate::ShardResult) now records. `figures
//!   --timings out.json` dumps a run's telemetry; `--calibrate out.json`
//!   feeds it back into the next run's model.
//!
//! Balanced slicing is deterministic in `(plan, model)`: every shard
//! process must therefore use the same calibration file (or none), just
//! as every shard must already share the plan-defining flags. Merging
//! validates the partition either way, so a mismatch fails loudly instead
//! of silently double-running cells.

use crate::scenario::{ArrivalSpec, ExecSpec, MplSpec, Scenario};
use std::collections::BTreeMap;

/// One cell's timing telemetry: which cost bucket it fell in, the model's
/// structural units, the measured wall-clock seconds, and the
/// deterministic simulator event count.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// Calibration bucket key (see [`CostModel::bucket`]).
    pub bucket: String,
    /// Structural cost units predicted for the cell ([`CostModel::units`]).
    pub units: f64,
    /// Measured wall-clock seconds for the cell.
    pub secs: f64,
    /// Simulator events processed by the cell — a *deterministic* cost
    /// signal, identical on every host for the same `(scenario, seed)`,
    /// unlike `secs`. `0` means "not recorded" (legacy timing files);
    /// when every cell of a dump carries events, calibration uses them
    /// instead of seconds so the file is host-independent (see
    /// [`CostModel::calibrated`]).
    pub events: u64,
}

/// Predicts per-task wall-clock cost from scenario structure, optionally
/// calibrated against recorded per-cell timings.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// Measured seconds per structural unit, per bucket.
    scales: BTreeMap<String, f64>,
    /// Measured cost of one capacity (reference) run, per capacity class
    /// (`workload/c<cpus>d<disks>`), learned from the within-bucket
    /// spread of open-load cells (see [`CostModel::calibrated`]). Same
    /// currency as `scales` — seconds, or simulator events for
    /// events-complete calibration dumps.
    capacity_secs: BTreeMap<String, f64>,
    /// Fallback seconds-per-unit for buckets never observed (1.0 for the
    /// uncalibrated structural model, the global mean after calibration).
    default_scale: f64,
}

impl CostModel {
    /// The uncalibrated model: predictions are raw structural units.
    pub fn structural() -> CostModel {
        CostModel {
            scales: BTreeMap::new(),
            capacity_secs: BTreeMap::new(),
            default_scale: 1.0,
        }
    }

    /// A model with explicit per-bucket scales — the constructor the
    /// adversarial property tests use (zero, huge, or non-finite scales
    /// must still yield exact shard partitions).
    pub fn with_scales(scales: BTreeMap<String, f64>, default_scale: f64) -> CostModel {
        CostModel {
            scales,
            capacity_secs: BTreeMap::new(),
            default_scale,
        }
    }

    /// Fit per-bucket seconds-per-unit from recorded cell timings, with
    /// the global `Σ secs / Σ units` ratio as the fallback for unseen
    /// buckets. Per bucket the scale is the **minimum** observed ratio,
    /// not the mean: cells that happened to pay a shared capacity
    /// (reference) run or a scheduling hiccup read high, and the cheapest
    /// observation of a cell class is the best estimate of its marginal
    /// cost — the capacity run is charged separately, per shard per
    /// group (see [`CostModel::capacity_group`]). The reference cost
    /// itself is learned from the same telemetry: within an open-load
    /// bucket, the spread between the dearest and cheapest observation is
    /// one reference run (the dearest cell paid it, the cheapest hit the
    /// cache), and the largest spread over a capacity class's buckets
    /// estimates that class's reference seconds. Robust to junk input —
    /// non-finite or non-positive samples are dropped.
    ///
    /// **Currency.** When every kept sample (including `ref/` cells)
    /// carries a simulator event count, the fit uses events instead of
    /// seconds: events are deterministic in `(scenario, seed)`, so the
    /// calibration file — and the shard slices balanced from it — are
    /// identical on every host. Seconds remain the fallback for legacy
    /// or partial dumps. Only ratios matter downstream, so the switch is
    /// invisible to balancing quality; it only removes host noise.
    pub fn calibrated(timings: &[CellTiming]) -> CostModel {
        // `ref/` cells are direct observations of single reference runs
        // (see [`CostModel::ref_bucket`]); they feed `capacity_secs` and
        // must stay out of the per-bucket scales and the global ratio —
        // averaging a capacity run into a measured cell's bucket is
        // exactly the cross-contamination the split prefixes exist to
        // prevent.
        let (refs, timings): (Vec<&CellTiming>, Vec<&CellTiming>) =
            timings.iter().partition(|t| t.bucket.starts_with("ref/"));
        // Currency: wall-clock seconds are host-dependent, event counts
        // are pure in `(scenario, seed)`. When every usable sample —
        // measured cells and `ref/` cells alike — recorded an event
        // count, calibrate in events so the model (and therefore
        // cost-balanced slicing) is identical on every host. Any legacy
        // or partial dump falls back to seconds. All-or-nothing: only
        // *ratios* matter, so mixing currencies across buckets would skew
        // the balance toward whichever cells happened to carry events.
        let keep = |t: &CellTiming| {
            t.secs.is_finite() && t.units.is_finite() && t.secs > 0.0 && t.units > 0.0
        };
        let keep_ref = |t: &CellTiming| t.secs.is_finite() && t.secs > 0.0;
        let use_events = timings.iter().filter(|t| keep(t)).all(|t| t.events > 0)
            && refs.iter().filter(|t| keep_ref(t)).all(|t| t.events > 0);
        let cost = |t: &CellTiming| {
            if use_events {
                t.events as f64
            } else {
                t.secs
            }
        };
        let mut samples: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        let (mut all_cost, mut all_units) = (0.0f64, 0.0f64);
        for t in &timings {
            if !keep(t) {
                continue;
            }
            let ratio = cost(t) / t.units;
            if ratio.is_finite() && ratio > 0.0 {
                samples.entry(&t.bucket).or_default().push(cost(t));
                all_cost += cost(t);
                all_units += t.units;
            }
        }
        let global = if all_units > 0.0 && all_cost > 0.0 {
            all_cost / all_units
        } else {
            1.0
        };

        // Reference cost per capacity class (same currency as the
        // scales), from the within-bucket max−min spread of multi-sample
        // open-load buckets. Bucket keys are
        // `exec/arrivals/workload/cXdY/mZ`; the class is `workload/cXdY`.
        let mut capacity_secs: BTreeMap<String, f64> = BTreeMap::new();
        for (bucket, secs) in &samples {
            let parts: Vec<&str> = bucket.split('/').collect();
            let [_, arrivals, workload, hw, _] = parts[..] else {
                continue;
            };
            if arrivals != "open_load" || secs.len() < 2 {
                continue;
            }
            let max = secs.iter().cloned().fold(f64::MIN, f64::max);
            let min = secs.iter().cloned().fold(f64::MAX, f64::min);
            let spread = max - min;
            if spread > 0.0 && spread.is_finite() {
                let class = format!("{workload}/{hw}");
                let e = capacity_secs.entry(class).or_insert(0.0);
                *e = e.max(spread);
            }
        }

        // Direct `ref/` observations beat the spread heuristic: each is
        // the measured seconds of exactly one reference run, so the
        // cheapest positive sample per class is the class's marginal
        // reference cost. The spread estimate above stays as the
        // fallback for legacy timing files that carry no `ref/` cells.
        let mut direct: BTreeMap<String, f64> = BTreeMap::new();
        for t in &refs {
            if !keep_ref(t) {
                continue;
            }
            let parts: Vec<&str> = t.bucket.split('/').collect();
            let [_, _, workload, hw, _] = parts[..] else {
                continue;
            };
            let class = format!("{workload}/{hw}");
            direct
                .entry(class)
                .and_modify(|e| *e = e.min(cost(t)))
                .or_insert_with(|| cost(t));
        }
        capacity_secs.extend(direct);

        // Units cancel within a bucket (same cell class), so min cost
        // over the bucket divided by the mean units would equal the min
        // ratio; recompute ratios from the kept samples directly.
        let mut scales = BTreeMap::new();
        for t in &timings {
            if !keep(t) {
                continue;
            }
            let ratio = cost(t) / t.units;
            if ratio.is_finite() && ratio > 0.0 {
                let e = scales.entry(t.bucket.clone()).or_insert(f64::INFINITY);
                *e = f64::min(*e, ratio);
            }
        }
        scales.retain(|_, s| s.is_finite() && *s > 0.0);
        CostModel {
            scales,
            capacity_secs,
            default_scale: global,
        }
    }

    /// Calibration bucket of a scenario: execution shape × arrival class
    /// × workload × hardware × MPL class. Deliberately fine-grained — the
    /// primary calibration use is re-running the *same* grid (timings
    /// from one run feed the next), where a per-cell-class
    /// seconds-per-unit table beats any parametric fit: measured cost
    /// grows with MPL far faster than event-count scaling suggests (lock
    /// conflicts, abort work), and 1-CPU vs 2-CPU variants of a workload
    /// genuinely differ. Unseen buckets fall back to the global scale, so
    /// a coarser timing file still calibrates.
    pub fn bucket(scenario: &Scenario) -> String {
        let exec = match &scenario.exec {
            ExecSpec::Run {
                mpl: MplSpec::AtLoss(_),
                ..
            } => "run_atloss",
            ExecSpec::Run { .. } => "run",
            ExecSpec::PriorityAtLoss { .. } => "priority",
            ExecSpec::Controller { .. } => "controller",
            ExecSpec::Chaos { .. } => "chaos",
        };
        let arrivals = match &scenario.exec {
            ExecSpec::Run { arrivals, .. } => match arrivals {
                ArrivalSpec::Saturated => "saturated",
                ArrivalSpec::ClosedThink(_) => "closed_think",
                ArrivalSpec::OpenRate(_) => "open_rate",
                ArrivalSpec::OpenLoad(_) => "open_load",
            },
            // Priority and controller cells drive their own arrival
            // shapes internally.
            _ => "internal",
        };
        let mpl = match &scenario.exec {
            ExecSpec::Run { mpl, .. } => match mpl {
                MplSpec::Fixed(m) => format!("m{m}"),
                MplSpec::Unlimited => "munl".to_string(),
                MplSpec::AtLoss(_) => "mloss".to_string(),
            },
            _ => "m-".to_string(),
        };
        format!(
            "{exec}/{arrivals}/{}/c{}d{}/{mpl}",
            scenario.setup.workload.name, scenario.setup.hw.cpus, scenario.setup.hw.data_disks
        )
    }

    /// Structural cost units of a scenario: transactions × an MPL factor
    /// × multipliers for the execution shape and load class. Unit-free —
    /// only *ratios* between cells matter for balancing; calibration maps
    /// units onto seconds.
    pub fn units(scenario: &Scenario) -> f64 {
        let txns = (scenario.rc.warmup_txns + scenario.rc.measured_txns) as f64;
        // Cost per transaction grows with concurrency well beyond the
        // event-count increase — lock conflicts, deadlock handling, and
        // abort/retry work all scale with the admitted population.
        // Measured quick-grid cells run ~2–3× slower at MPL 40 than at
        // MPL 1 on the same run length; 1 + mpl/40 tracks that band.
        let mpl = match &scenario.exec {
            ExecSpec::Run { mpl, .. } => match mpl {
                MplSpec::Fixed(m) => f64::from(*m),
                MplSpec::Unlimited => f64::from(scenario.setup.clients),
                // Resolved by search; the search multiplier below carries
                // the real cost, use a mid-range population here.
                MplSpec::AtLoss(_) => 10.0,
            },
            _ => 10.0,
        };
        let mpl_factor = 1.0 + mpl / 40.0;
        let exec_mult = match &scenario.exec {
            ExecSpec::Run {
                mpl: MplSpec::AtLoss(_),
                ..
            } => 12.0, // exponential + binary MPL search ≈ a dozen runs
            ExecSpec::Run { .. } => 1.0,
            // The heavy multipliers cover the per-cell inner-simulation
            // fan-out; the shared reference run is charged separately,
            // once per shard per capacity group.
            ExecSpec::PriorityAtLoss { .. } => 14.0, // search + priority runs
            ExecSpec::Controller { .. } => 8.0,      // windowed sessions until convergence
            // Calibration plus a fixed post-onset observation budget: the
            // convergence break is off, so the session always runs its
            // full `session_txns` — costlier than a plain controller cell.
            ExecSpec::Chaos { .. } => 12.0,
        };
        txns * mpl_factor * exec_mult
    }

    /// Telemetry bucket for the reference (capacity) run a cell paid
    /// for: `ref/capacity/{workload}/c{cpus}d{disks}/mref`. The `ref/`
    /// prefix keeps capacity seconds out of the measured cell's own
    /// bucket — before the split, the first open-load cell per
    /// `(setup, seed)` billed its reference run into the same bucket its
    /// cache-hitting siblings used, and `--calibrate` averaged the
    /// unlike costs. Five `/`-separated parts, like every other bucket,
    /// so the calibration parser needs no special case.
    pub fn ref_bucket(scenario: &Scenario) -> String {
        format!(
            "ref/capacity/{}/c{}d{}/mref",
            scenario.setup.workload.name, scenario.setup.hw.cpus, scenario.setup.hw.data_disks
        )
    }

    /// Structural units of one reference run for this cell: a saturated
    /// MPL-less run over the full client population at the cell's run
    /// length (the same estimate [`CostModel::capacity_cost`] falls back
    /// to when nothing is calibrated).
    pub fn ref_units(scenario: &Scenario) -> f64 {
        let txns = (scenario.rc.warmup_txns + scenario.rc.measured_txns) as f64;
        txns * (1.0 + f64::from(scenario.setup.clients) / 40.0)
    }

    /// Split one executed cell's telemetry into calibration cells: the
    /// cell's own cost (total minus reference compute) in its
    /// [`CostModel::bucket`], plus — when the cell paid for a capacity
    /// run — a separate [`CostModel::ref_bucket`] cell carrying exactly
    /// the reference seconds. Event counts split the same way, so both
    /// cells stay internally consistent whichever currency calibration
    /// picks.
    pub fn timing_cells(
        scenario: &Scenario,
        secs: f64,
        ref_secs: f64,
        events: u64,
        ref_events: u64,
    ) -> Vec<CellTiming> {
        let mut cells = vec![CellTiming {
            bucket: Self::bucket(scenario),
            units: Self::units(scenario),
            secs: (secs - ref_secs).max(0.0),
            events: events.saturating_sub(ref_events),
        }];
        if ref_secs > 0.0 {
            cells.push(CellTiming {
                bucket: Self::ref_bucket(scenario),
                units: Self::ref_units(scenario),
                secs: ref_secs,
                events: ref_events,
            });
        }
        cells
    }

    /// Whether this cell resolves a capacity (reference) measurement
    /// through the plan-level [`MeasurementCache`](crate::MeasurementCache).
    /// Open-load runs need the capacity to convert load into an arrival
    /// rate; the heavy shapes (`AtLoss` searches, priority, controller,
    /// chaos sessions) all call `Driver::reference` while resolving their
    /// budgets and baselines — under the *same* cache key, since the key
    /// covers only `(setup, rc, seed)`, never the execution shape.
    fn resolves_reference(scenario: &Scenario) -> bool {
        match &scenario.exec {
            ExecSpec::Run {
                mpl: MplSpec::AtLoss(_),
                ..
            } => true,
            ExecSpec::Run { arrivals, .. } => matches!(arrivals, ArrivalSpec::OpenLoad(_)),
            ExecSpec::PriorityAtLoss { .. }
            | ExecSpec::Controller { .. }
            | ExecSpec::Chaos { .. } => true,
        }
    }

    /// The shared capacity-measurement group of a task, if its cell
    /// resolves a reference run through the plan-level
    /// [`MeasurementCache`](crate::MeasurementCache): every task with the
    /// same key performs (or reuses) **one** reference run per process.
    /// Cost-balanced slicing charges [`CostModel::capacity_cost`] once
    /// per shard per group — the marginal cost of the second such cell on
    /// a shard is much lower than the first's, and treating them as
    /// independent mispredicts both. The heavy shapes (`AtLoss`,
    /// priority, controller, chaos) join the same groups as open-load
    /// runs on the same `(setup, rc, seed)`: they share one cache entry,
    /// so their shared reference is charged once per shard too. Their
    /// inner-simulation fan-out stays in the execution-shape multiplier —
    /// that work runs per cell, on top of the shared reference.
    pub fn capacity_group(scenario: &Scenario, seed: u64) -> Option<String> {
        if !Self::resolves_reference(scenario) {
            return None;
        }
        let (a, b) = scenario.setup.stable_fingerprint();
        // Cover every RunConfig field a reference run depends on,
        // mirroring MeasurementKey: cells merged into one group here must
        // genuinely share a cache entry, or the balancer undercounts
        // reference runs.
        let rc = &scenario.rc;
        Some(format!(
            "{a:016x}{b:016x}|{}|{}|{:016x}|{:016x}|{}|{:016x}|{seed}",
            rc.warmup_txns,
            rc.measured_txns,
            rc.max_sim_time.to_bits(),
            rc.min_warmup_time.to_bits(),
            u8::from(rc.warm_pool),
            rc.high_fraction.to_bits(),
        ))
    }

    /// Predicted cost of one capacity (reference) run for this cell's
    /// group. Calibrated models that learned the class's reference
    /// seconds from timing telemetry use the measurement; otherwise the
    /// structural estimate is a saturated MPL-less run over the full
    /// client population at the cell's run length, scaled by the global
    /// calibration scale. Zero for cells with no capacity group.
    pub fn capacity_cost(&self, scenario: &Scenario) -> f64 {
        if !Self::resolves_reference(scenario) {
            return 0.0;
        }
        let class = format!(
            "{}/c{}d{}",
            scenario.setup.workload.name, scenario.setup.hw.cpus, scenario.setup.hw.data_disks
        );
        let cost = match self.capacity_secs.get(&class) {
            Some(&secs) => secs,
            None => {
                let txns = (scenario.rc.warmup_txns + scenario.rc.measured_txns) as f64;
                let units = txns * (1.0 + f64::from(scenario.setup.clients) / 40.0);
                units * self.default_scale
            }
        };
        if cost.is_finite() && cost > 0.0 {
            cost
        } else if cost == f64::INFINITY {
            f64::MAX
        } else {
            0.0
        }
    }

    /// Predicted cost of a scenario in (possibly calibrated) units.
    /// Always finite and non-negative, whatever the scales hold — the
    /// balancing code sums these into shard loads.
    pub fn predict(&self, scenario: &Scenario) -> f64 {
        let scale = self
            .scales
            .get(&Self::bucket(scenario))
            .copied()
            .unwrap_or(self.default_scale);
        let cost = Self::units(scenario) * scale;
        if cost.is_finite() && cost > 0.0 {
            cost
        } else if cost == f64::INFINITY {
            f64::MAX
        } else {
            0.0
        }
    }

    /// Number of calibrated buckets (0 for the structural model).
    pub fn calibrated_buckets(&self) -> usize {
        self.scales.len()
    }
}

// ---------------------------------------------------------------------------
// Timings file codec. The vendored serde is marker-only, so the dump the
// `figures --timings` flag writes is hand-rolled JSON in a fixed
// one-cell-per-line shape, and the reader parses exactly that shape. The
// round-trip test locks writer and reader together.

/// One cell timing as a single JSON object literal — the line shape
/// [`decode_timings`] parses. Shared by [`encode_timings`] and the
/// hotpath bench's `cells` block so the two cannot drift apart.
pub fn encode_timing_cell(c: &CellTiming) -> String {
    // Bucket keys are generated from identifiers and contain no
    // characters that need JSON escaping; drop any that would.
    let bucket: String = c
        .bucket
        .chars()
        .filter(|ch| ch.is_ascii() && *ch != '"' && *ch != '\\')
        .collect();
    format!(
        "{{\"bucket\": \"{bucket}\", \"units\": {:.3}, \"secs\": {:.6}, \"events\": {}}}",
        c.units, c.secs, c.events
    )
}

/// Render cell timings as the `xsched-timings-v1` JSON document.
pub fn encode_timings(cells: &[CellTiming]) -> String {
    let mut out = String::from("{\n  \"schema\": \"xsched-timings-v1\",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            encode_timing_cell(c),
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a document produced by [`encode_timings`].
pub fn decode_timings(text: &str) -> Result<Vec<CellTiming>, String> {
    if !text.contains("xsched-timings-v1") {
        return Err("not an xsched-timings-v1 document".to_string());
    }
    let mut cells = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"bucket\"") {
            continue;
        }
        let field = |name: &str| -> Result<&str, String> {
            let tag = format!("\"{name}\":");
            let rest = line
                .split_once(&tag)
                .ok_or_else(|| format!("cell line missing `{name}`: {line}"))?
                .1
                .trim_start();
            let end = rest
                .find([',', '}'])
                .ok_or_else(|| format!("unterminated `{name}` in: {line}"))?;
            Ok(rest[..end].trim())
        };
        let bucket = field("bucket")?.trim_matches('"').to_string();
        let num = |name: &str| -> Result<f64, String> {
            field(name)?
                .parse::<f64>()
                .map_err(|e| format!("bad `{name}` in `{line}`: {e}"))
        };
        // Legacy dumps carry no event counts; 0 = unknown, which makes
        // calibration fall back to the seconds currency.
        let events = field("events")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        cells.push(CellTiming {
            bucket,
            units: num("units")?,
            secs: num("secs")?,
            events,
        });
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{PolicyKind, RunConfig};
    use xsched_workload::setup;

    fn run_scenario(id: u32, mpl: u32, txns: u64, arrivals: ArrivalSpec) -> Scenario {
        Scenario {
            row: "r".into(),
            col: "c".into(),
            setup: setup(id),
            exec: ExecSpec::Run {
                mpl: MplSpec::Fixed(mpl),
                policy: PolicyKind::Fifo,
                arrivals,
            },
            rc: RunConfig {
                warmup_txns: txns / 4,
                measured_txns: txns,
                ..Default::default()
            },
        }
    }

    #[test]
    fn structural_units_track_the_big_cost_drivers() {
        let cheap = run_scenario(1, 5, 800, ArrivalSpec::Saturated);
        let long = run_scenario(1, 5, 4_000, ArrivalSpec::Saturated);
        let crowded = run_scenario(1, 40, 800, ArrivalSpec::Saturated);
        let open = run_scenario(1, 5, 800, ArrivalSpec::OpenLoad(0.9));
        let model = CostModel::structural();
        assert!(model.predict(&long) > 4.0 * model.predict(&cheap));
        assert!(model.predict(&crowded) > 1.5 * model.predict(&cheap));
        // An open-load cell's run cost matches its closed twin; the
        // shared reference run is charged separately, once per shard per
        // capacity group.
        assert!(model.capacity_cost(&cheap) == 0.0);
        assert!(model.capacity_cost(&open) > model.predict(&open));
        assert!(CostModel::capacity_group(&cheap, 42).is_none());
        let g1 = CostModel::capacity_group(&open, 42).unwrap();
        let g2 = CostModel::capacity_group(&open, 43).unwrap();
        assert_ne!(g1, g2, "capacity runs are per (setup, rc, seed)");
        assert_eq!(
            g1,
            CostModel::capacity_group(&run_scenario(1, 30, 800, ArrivalSpec::OpenLoad(0.7)), 42)
                .unwrap(),
            "cells differing only in MPL and load share one reference"
        );

        let heavy = Scenario {
            exec: ExecSpec::PriorityAtLoss { loss: 0.05 },
            ..cheap.clone()
        };
        assert!(
            model.predict(&heavy) > 10.0 * model.predict(&cheap),
            "a priority cell runs a family of inner simulations"
        );
    }

    /// The heavy shapes resolve their references through the same
    /// measurement-cache key as open-load runs, so they join the same
    /// capacity groups: one reference run per shard per (setup, rc, seed)
    /// no matter how many priority/controller/chaos/search cells share it.
    #[test]
    fn heavy_shapes_join_capacity_groups() {
        let open = run_scenario(1, 5, 800, ArrivalSpec::OpenLoad(0.9));
        let g_open = CostModel::capacity_group(&open, 42).unwrap();
        let model = CostModel::structural();
        for exec in [
            ExecSpec::Run {
                mpl: MplSpec::AtLoss(0.05),
                policy: PolicyKind::Fifo,
                arrivals: ArrivalSpec::Saturated,
            },
            ExecSpec::PriorityAtLoss { loss: 0.05 },
            ExecSpec::Controller {
                targets: crate::controller::Targets::five_percent(),
                start: None,
            },
        ] {
            let heavy = Scenario {
                exec,
                ..open.clone()
            };
            let g = CostModel::capacity_group(&heavy, 42)
                .unwrap_or_else(|| panic!("{:?} must join a group", heavy.exec));
            assert_eq!(g, g_open, "{:?} shares the open-load reference", heavy.exec);
            assert_ne!(
                CostModel::capacity_group(&heavy, 43).unwrap(),
                g,
                "groups stay per-seed"
            );
            assert!(
                model.capacity_cost(&heavy) > 0.0,
                "{:?} charges its reference once per shard",
                heavy.exec
            );
        }
        // Closed fixed-MPL runs still resolve no reference.
        assert!(
            CostModel::capacity_group(&run_scenario(1, 5, 800, ArrivalSpec::Saturated), 42)
                .is_none()
        );
    }

    #[test]
    fn buckets_separate_exec_arrival_and_workload() {
        let a = run_scenario(1, 5, 800, ArrivalSpec::Saturated);
        let b = run_scenario(1, 5, 800, ArrivalSpec::OpenLoad(0.7));
        let c = run_scenario(3, 5, 800, ArrivalSpec::Saturated);
        let keys: Vec<String> = [&a, &b, &c].iter().map(|s| CostModel::bucket(s)).collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert!(keys[0].starts_with("run/saturated/"));
    }

    #[test]
    fn calibration_scales_predictions_per_bucket() {
        let fast = run_scenario(1, 5, 800, ArrivalSpec::Saturated);
        let slow = run_scenario(3, 5, 800, ArrivalSpec::Saturated);
        // Same structural units, but the "slow" bucket measured 10× the
        // seconds per unit.
        let u = CostModel::units(&fast);
        let timings = vec![
            CellTiming {
                bucket: CostModel::bucket(&fast),
                units: u,
                secs: 0.1,
                events: 0,
            },
            CellTiming {
                bucket: CostModel::bucket(&slow),
                units: u,
                secs: 1.0,
                events: 0,
            },
        ];
        let model = CostModel::calibrated(&timings);
        assert_eq!(model.calibrated_buckets(), 2);
        let (pf, ps) = (model.predict(&fast), model.predict(&slow));
        assert!(
            (ps / pf - 10.0).abs() < 1e-9,
            "calibrated ratio must match measured ratio, got {}",
            ps / pf
        );
    }

    #[test]
    fn ref_cells_calibrate_capacity_directly_and_stay_out_of_scales() {
        let open = run_scenario(1, 5, 800, ArrivalSpec::OpenLoad(0.9));
        // One cell that paid a 0.5s reference on top of 0.1s of its own
        // work, one cache-hitting sibling at 0.1s flat.
        let mut timings = CostModel::timing_cells(&open, 0.6, 0.5, 0, 0);
        timings.extend(CostModel::timing_cells(&open, 0.1, 0.0, 0, 0));
        assert_eq!(timings.len(), 3);
        assert!(timings[1].bucket.starts_with("ref/capacity/"));
        assert_eq!(timings[1].bucket.split('/').count(), 5);

        let model = CostModel::calibrated(&timings);
        // The reference seconds are learned verbatim, not averaged into
        // (or out of) the measured cells' bucket.
        assert!((model.capacity_cost(&open) - 0.5).abs() < 1e-12);
        assert_eq!(model.calibrated_buckets(), 1, "ref/ cells make no scale");
        // Both measured observations now agree on the cell's marginal
        // cost, so the bucket scale reflects 0.1s per cell.
        let p = model.predict(&open);
        assert!(
            (p - 0.1).abs() < 1e-9,
            "reference-paying cell must not inflate its bucket: {p}"
        );
    }

    #[test]
    fn direct_ref_observation_beats_the_spread_heuristic() {
        let open = run_scenario(1, 5, 800, ArrivalSpec::OpenLoad(0.9));
        let u = CostModel::units(&open);
        let bucket = CostModel::bucket(&open);
        // Legacy-shaped spread evidence says ~0.9s…
        let mut timings = vec![
            CellTiming {
                bucket: bucket.clone(),
                units: u,
                secs: 1.0,
                events: 0,
            },
            CellTiming {
                bucket,
                units: u,
                secs: 0.1,
                events: 0,
            },
        ];
        let spread_only = CostModel::calibrated(&timings);
        assert!((spread_only.capacity_cost(&open) - 0.9).abs() < 1e-12);
        // …but a direct ref/ measurement of 0.4s wins outright.
        timings.push(CellTiming {
            bucket: CostModel::ref_bucket(&open),
            units: CostModel::ref_units(&open),
            secs: 0.4,
            events: 0,
        });
        let model = CostModel::calibrated(&timings);
        assert!((model.capacity_cost(&open) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn calibration_survives_junk_timings() {
        let s = run_scenario(1, 5, 800, ArrivalSpec::Saturated);
        let junk = vec![
            CellTiming {
                bucket: "x".into(),
                units: 0.0,
                secs: 1.0,
                events: 0,
            },
            CellTiming {
                bucket: "y".into(),
                units: f64::NAN,
                secs: 1.0,
                events: 7,
            },
            CellTiming {
                bucket: "z".into(),
                units: 10.0,
                secs: f64::INFINITY,
                events: 3,
            },
        ];
        let model = CostModel::calibrated(&junk);
        assert_eq!(model.calibrated_buckets(), 0);
        let p = model.predict(&s);
        assert!(p.is_finite() && p > 0.0, "junk-calibrated predict: {p}");
    }

    #[test]
    fn predictions_are_always_finite_and_non_negative() {
        let s = run_scenario(1, 5, 800, ArrivalSpec::Saturated);
        for scale in [0.0, -3.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let model = CostModel::with_scales(BTreeMap::new(), scale);
            let p = model.predict(&s);
            assert!(p.is_finite() && p >= 0.0, "scale {scale} gave {p}");
        }
    }

    #[test]
    fn timings_codec_round_trips() {
        let cells = vec![
            CellTiming {
                bucket: "run/saturated/W_CPU-inventory".into(),
                units: 945.0,
                secs: 0.1234,
                events: 123_456,
            },
            CellTiming {
                bucket: "priority/internal/W_CPU-browsing".into(),
                units: 67_200.5,
                secs: 12.5,
                events: 0,
            },
        ];
        let text = encode_timings(&cells);
        let back = decode_timings(&text).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in cells.iter().zip(&back) {
            assert_eq!(a.bucket, b.bucket);
            assert!((a.units - b.units).abs() < 1e-3);
            assert!((a.secs - b.secs).abs() < 1e-6);
            assert_eq!(a.events, b.events);
        }
        assert!(decode_timings("{}").is_err());
        assert!(decode_timings(&encode_timings(&[])).unwrap().is_empty());
        // Legacy dumps without an events field still decode (events = 0).
        let legacy = text.replace(", \"events\": 123456", "");
        let back = decode_timings(&legacy).unwrap();
        assert_eq!(back[0].events, 0);
    }

    /// The host-independence satellite: when every cell of a dump carries
    /// a simulator event count, calibration fits in events — the same
    /// dump produces the same model no matter what wall-clock the host
    /// happened to record. A single legacy (events = 0) cell falls the
    /// whole fit back to seconds.
    #[test]
    fn event_counts_calibrate_host_independently() {
        let fast = run_scenario(1, 5, 800, ArrivalSpec::Saturated);
        let slow = run_scenario(3, 5, 800, ArrivalSpec::Saturated);
        let u = CostModel::units(&fast);
        let cells = |fast_secs: f64, slow_secs: f64| {
            vec![
                CellTiming {
                    bucket: CostModel::bucket(&fast),
                    units: u,
                    secs: fast_secs,
                    events: 10_000,
                },
                CellTiming {
                    bucket: CostModel::bucket(&slow),
                    units: u,
                    secs: slow_secs,
                    events: 40_000,
                },
            ]
        };
        // Two "hosts" with wildly different wall-clocks but identical
        // event counts produce identical predictions.
        let a = CostModel::calibrated(&cells(0.1, 0.2));
        let b = CostModel::calibrated(&cells(3.0, 17.0));
        assert_eq!(a.predict(&fast).to_bits(), b.predict(&fast).to_bits());
        assert_eq!(a.predict(&slow).to_bits(), b.predict(&slow).to_bits());
        // And the fitted ratio is the event ratio, not the seconds ratio.
        let ratio = a.predict(&slow) / a.predict(&fast);
        assert!((ratio - 4.0).abs() < 1e-9, "event ratio expected: {ratio}");

        // One cell without events ⇒ seconds currency for everyone.
        let mut mixed = cells(0.1, 0.2);
        mixed[1].events = 0;
        let m = CostModel::calibrated(&mixed);
        let ratio = m.predict(&slow) / m.predict(&fast);
        assert!((ratio - 2.0).abs() < 1e-9, "seconds fallback: {ratio}");

        // Ref cells participate in the currency switch: an events-only
        // dump learns capacity cost in events too.
        let open = run_scenario(1, 5, 800, ArrivalSpec::OpenLoad(0.9));
        let mut with_ref = cells(0.1, 0.2);
        with_ref.push(CellTiming {
            bucket: CostModel::ref_bucket(&open),
            units: CostModel::ref_units(&open),
            secs: 0.4,
            events: 25_000,
        });
        let m = CostModel::calibrated(&with_ref);
        assert!((m.capacity_cost(&open) - 25_000.0).abs() < 1e-9);
    }
}
