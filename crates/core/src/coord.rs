//! Cross-host work-stealing sweep coordination with lease-based fault
//! recovery.
//!
//! Sharded execution (`figures --shard i/n`) fixes each host's slice up
//! front, so one dead host strands its share of the plan. This module
//! replaces the static slice with a small **task-queue coordinator**: a
//! server that hands out global task indices from a [`SweepPlan`] under
//! **time-bounded leases**, and worker clients that claim a task, execute
//! it through the exact [`SweepExecutor`] code path a shard would use,
//! and stream the outcome back through the same bit-exact codec shard
//! payloads and checkpoint journals travel on.
//!
//! Robustness model, in order of line of defense:
//!
//! 1. **Leases + heartbeats.** A claimed task is leased for
//!    [`CoordConfig::lease_secs`]; the executing worker extends the lease
//!    with heartbeats. A worker that dies (SIGKILL, network partition)
//!    stops heartbeating, the lease expires lazily on the next request,
//!    and the task returns to the pending queue for reassignment.
//! 2. **Keep-first outcomes.** Expiry can double-assign a task — the
//!    original worker may have been slow, not dead. Tasks are pure in
//!    `(scenario, seed)`, the coordinator keeps the **first** recorded
//!    outcome per task, and late duplicates are acknowledged and
//!    discarded — exactly the [`JournalReplay`] dedupe rule, so a
//!    double-assigned sweep still merges byte-identical to a direct run.
//! 3. **Worker reconnect.** Transport failures (coordinator restart,
//!    dropped frames) are retried with deterministic exponential backoff;
//!    the worker re-introduces itself with `hello` so the coordinator
//!    counts the reconnect. Bounded retries turn a truly dead
//!    coordinator into a typed [`WorkerError`].
//! 4. **Coordinator crash recovery.** Every recorded outcome is
//!    journaled through [`CheckpointJournal`] before it is acknowledged;
//!    a restarted coordinator replays its journal and serves only the
//!    remainder.
//! 5. **Graceful degradation.** A worker that can never reach the
//!    coordinator reports [`WorkerError::Unreachable`]; the CLI falls
//!    back to plain local execution.
//!
//! The protocol is line-based (one request line, one response line per
//! connection) so a frame is atomic at the transport layer and the
//! coordinator stays a transport-free state machine
//! ([`Coordinator::handle`]) with an injectable clock — every lease
//! expiry and reassignment path is unit-testable without sockets or
//! sleeps. [`WireFaultInjector`] completes the story: a deterministic
//! drop/duplicate/delay/truncate layer over any [`Transport`], pure in
//! `(seed, frame counter)`, under which a coordinated sweep must still
//! converge byte-identical (pinned by tests and CI).

use crate::fault::{relock, TaskFailure, TaskOutcome};
use crate::journal::{CheckpointJournal, JournalReplay};
use crate::observe::SweepObs;
use crate::shard::{
    decode_failure, decode_outcome, encode_failure, encode_outcome, DecodeError, ShardResult,
};
use crate::sweep::{SweepExecutor, SweepPlan};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xsched_obs::TraceEvent;
use xsched_sim::SimRng;

// ---------------------------------------------------------------------------
// Wire frames.

/// A client → coordinator frame. One line on the wire; see each
/// variant's `encode` arm for the exact grammar.
///
/// Every frame names its sweep **epoch** — the coordinator serves the
/// experiment list as consecutive epochs, and the epoch disambiguates a
/// worker that is one sweep ahead (told to wait) from one reporting a
/// straggler result for a sweep that already finished (acknowledged and
/// ignored).
// Record (carrying a full ScenarioOutcome) dwarfs the other variants,
// but it is also the dominant frame on the wire — boxing it would cost
// an allocation on exactly the hot path the lint wants to protect.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Request {
    /// Introduce a worker and validate that both sides built the same
    /// plan: `hello <worker> <epoch> <fingerprint:016x> <tasks>`.
    Hello {
        /// Worker name (a single whitespace-free token).
        worker: String,
        /// Sweep epoch the worker wants to join.
        epoch: u64,
        /// The worker's [`SweepPlan::fingerprint`].
        fingerprint: u64,
        /// The worker's [`SweepPlan::task_count`].
        task_count: usize,
    },
    /// Ask for a task lease: `claim <worker> <epoch>`.
    Claim {
        /// Worker name.
        worker: String,
        /// Sweep epoch.
        epoch: u64,
    },
    /// Extend the lease on a task still executing:
    /// `heartbeat <worker> <epoch> <task>`.
    Heartbeat {
        /// Worker name.
        worker: String,
        /// Sweep epoch.
        epoch: u64,
        /// Global task index being executed.
        task: usize,
    },
    /// Report a completed task:
    /// `record <worker> <epoch> <task> ok <outcome>` or
    /// `record <worker> <epoch> <task> failed <failure>`, with the
    /// payload in the bit-exact shard outcome codec.
    Record {
        /// Worker name.
        worker: String,
        /// Sweep epoch.
        epoch: u64,
        /// Global task index.
        task: usize,
        /// The task's outcome (success or typed failure).
        outcome: TaskOutcome,
    },
    /// Orderly departure; releases the worker's leases:
    /// `bye <worker> <epoch>`.
    Bye {
        /// Worker name.
        worker: String,
        /// Sweep epoch.
        epoch: u64,
    },
}

/// A coordinator → client frame. One line on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted:
    /// `welcome <epoch> <fingerprint:016x> <tasks> <lease_bits:016x>`
    /// (lease seconds travel as IEEE-754 bits like every float).
    Welcome {
        /// Epoch the coordinator is serving.
        epoch: u64,
        /// The coordinator's plan fingerprint.
        fingerprint: u64,
        /// The coordinator's task count.
        task_count: usize,
        /// Lease duration granted per claim, seconds.
        lease_secs: f64,
    },
    /// A task lease: `lease <task>`.
    Lease {
        /// Global task index to execute.
        task: usize,
    },
    /// Nothing to hand out right now (outstanding leases may still
    /// expire): `wait`.
    Wait,
    /// The sweep (or, for a stale epoch, that whole sweep) is complete:
    /// `done`.
    Done,
    /// Acknowledged: `ok`.
    Ok,
    /// Typed refusal or decode failure: `error <message…>` (the message
    /// is the rest of the line).
    Error {
        /// Human-readable reason.
        msg: String,
    },
}

fn fh(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Encode a [`TaskOutcome`] as the payload tail of a `record` frame.
fn encode_task_outcome(outcome: &TaskOutcome) -> String {
    match outcome {
        TaskOutcome::Ok(o) => format!("ok {}", encode_outcome(o)),
        TaskOutcome::Failed(f) => format!("failed {}", encode_failure(f)),
    }
}

fn decode_task_outcome(s: &str) -> Result<TaskOutcome, String> {
    if let Some(rest) = s.strip_prefix("ok ") {
        decode_outcome(rest).map(TaskOutcome::Ok)
    } else if let Some(rest) = s.strip_prefix("failed ") {
        decode_failure(rest).map(TaskOutcome::Failed)
    } else {
        Err(format!("unknown outcome payload `{s}`"))
    }
}

/// A worker name must be one non-empty whitespace-free token so the
/// line-based grammar stays unambiguous.
fn check_worker(name: &str) -> Result<String, String> {
    if name.is_empty() {
        return Err("empty worker name".to_string());
    }
    if name.chars().any(char::is_whitespace) {
        return Err(format!("worker name `{name}` contains whitespace"));
    }
    Ok(name.to_string())
}

impl Request {
    /// Serialize to one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Hello {
                worker,
                epoch,
                fingerprint,
                task_count,
            } => format!("hello {worker} {epoch} {fingerprint:016x} {task_count}"),
            Request::Claim { worker, epoch } => format!("claim {worker} {epoch}"),
            Request::Heartbeat {
                worker,
                epoch,
                task,
            } => format!("heartbeat {worker} {epoch} {task}"),
            Request::Record {
                worker,
                epoch,
                task,
                outcome,
            } => format!(
                "record {worker} {epoch} {task} {}",
                encode_task_outcome(outcome)
            ),
            Request::Bye { worker, epoch } => format!("bye {worker} {epoch}"),
        }
    }

    /// Parse one wire line. Never panics: any malformed, truncated, or
    /// garbage input returns a typed [`DecodeError`] naming the
    /// offending text.
    pub fn decode(line: &str) -> Result<Request, DecodeError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let fail = |msg: String| DecodeError::at(1, line, msg);
        let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
        let mut toks = rest.split_whitespace();
        let mut tok = |name: &str| -> Result<&str, DecodeError> {
            toks.next()
                .ok_or_else(|| fail(format!("truncated `{kind}` frame: missing `{name}`")))
        };
        let usize_of = |name: &str, s: &str| -> Result<usize, DecodeError> {
            s.parse().map_err(|e| fail(format!("bad `{name}`: {e}")))
        };
        let u64_of = |name: &str, s: &str| -> Result<u64, DecodeError> {
            s.parse().map_err(|e| fail(format!("bad `{name}`: {e}")))
        };
        match kind {
            "hello" => {
                let worker = check_worker(tok("worker")?).map_err(&fail)?;
                let epoch = u64_of("epoch", tok("epoch")?)?;
                let fp_tok = tok("fingerprint")?;
                let fingerprint = u64::from_str_radix(fp_tok, 16)
                    .map_err(|e| fail(format!("bad fingerprint `{fp_tok}`: {e}")))?;
                let task_count = usize_of("tasks", tok("tasks")?)?;
                Ok(Request::Hello {
                    worker,
                    epoch,
                    fingerprint,
                    task_count,
                })
            }
            "claim" => Ok(Request::Claim {
                worker: check_worker(tok("worker")?).map_err(&fail)?,
                epoch: u64_of("epoch", tok("epoch")?)?,
            }),
            "heartbeat" => Ok(Request::Heartbeat {
                worker: check_worker(tok("worker")?).map_err(&fail)?,
                epoch: u64_of("epoch", tok("epoch")?)?,
                task: usize_of("task", tok("task")?)?,
            }),
            "record" => {
                // The outcome payload contains spaces, so split the fixed
                // prefix manually instead of tokenizing the whole line.
                let mut parts = rest.splitn(4, ' ');
                let mut part = |name: &str| -> Result<&str, DecodeError> {
                    parts
                        .next()
                        .filter(|s| !s.is_empty())
                        .ok_or_else(|| fail(format!("truncated `record` frame: missing `{name}`")))
                };
                let worker = check_worker(part("worker")?).map_err(&fail)?;
                let epoch = u64_of("epoch", part("epoch")?)?;
                let task = usize_of("task", part("task")?)?;
                let outcome = decode_task_outcome(part("outcome")?).map_err(&fail)?;
                Ok(Request::Record {
                    worker,
                    epoch,
                    task,
                    outcome,
                })
            }
            "bye" => Ok(Request::Bye {
                worker: check_worker(tok("worker")?).map_err(&fail)?,
                epoch: u64_of("epoch", tok("epoch")?)?,
            }),
            other => Err(fail(format!("unknown request kind `{other}`"))),
        }
    }
}

impl Response {
    /// Serialize to one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Welcome {
                epoch,
                fingerprint,
                task_count,
                lease_secs,
            } => format!(
                "welcome {epoch} {fingerprint:016x} {task_count} {}",
                fh(*lease_secs)
            ),
            Response::Lease { task } => format!("lease {task}"),
            Response::Wait => "wait".to_string(),
            Response::Done => "done".to_string(),
            Response::Ok => "ok".to_string(),
            Response::Error { msg } => format!("error {}", msg.replace(['\n', '\r'], " ")),
        }
    }

    /// Parse one wire line; typed errors, never panics on garbage.
    pub fn decode(line: &str) -> Result<Response, DecodeError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let fail = |msg: String| DecodeError::at(1, line, msg);
        let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kind {
            "welcome" => {
                let mut toks = rest.split_whitespace();
                let mut tok = |name: &str| -> Result<&str, DecodeError> {
                    toks.next()
                        .ok_or_else(|| fail(format!("truncated `welcome` frame: missing `{name}`")))
                };
                let epoch = tok("epoch")?
                    .parse()
                    .map_err(|e| fail(format!("bad `epoch`: {e}")))?;
                let fp_tok = tok("fingerprint")?;
                let fingerprint = u64::from_str_radix(fp_tok, 16)
                    .map_err(|e| fail(format!("bad fingerprint `{fp_tok}`: {e}")))?;
                let task_count = tok("tasks")?
                    .parse()
                    .map_err(|e| fail(format!("bad `tasks`: {e}")))?;
                let bits_tok = tok("lease")?;
                let lease_secs = u64::from_str_radix(bits_tok, 16)
                    .map(f64::from_bits)
                    .map_err(|e| fail(format!("bad lease bits `{bits_tok}`: {e}")))?;
                Ok(Response::Welcome {
                    epoch,
                    fingerprint,
                    task_count,
                    lease_secs,
                })
            }
            "lease" => {
                let task = rest
                    .split_whitespace()
                    .next()
                    .ok_or_else(|| fail("truncated `lease` frame: missing `task`".to_string()))?;
                Ok(Response::Lease {
                    task: task.parse().map_err(|e| fail(format!("bad `task`: {e}")))?,
                })
            }
            "wait" if rest.is_empty() => Ok(Response::Wait),
            "done" if rest.is_empty() => Ok(Response::Done),
            "ok" if rest.is_empty() => Ok(Response::Ok),
            "error" => Ok(Response::Error {
                msg: rest.to_string(),
            }),
            other => Err(fail(format!("unknown response kind `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator state machine.

/// Coordinator tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordConfig {
    /// Lease duration per claim, seconds. A worker that neither records
    /// nor heartbeats within this window loses the task to reassignment.
    pub lease_secs: f64,
}

impl Default for CoordConfig {
    fn default() -> CoordConfig {
        CoordConfig { lease_secs: 10.0 }
    }
}

#[derive(Debug, Clone)]
struct LeaseState {
    worker: String,
    deadline: f64,
}

/// The coordinator's transport-free state machine: pending tasks,
/// outstanding leases, recorded outcomes. Drive it with
/// [`Coordinator::handle`] under any clock — the TCP front end
/// ([`CoordServer`]) feeds wall-clock seconds, tests feed a synthetic
/// clock to exercise expiry without sleeping.
///
/// Determinism contract: the *results* of a coordinated sweep are a pure
/// function of the plan — tasks are handed out in ascending index order
/// (expired tasks re-queue in ascending order too) and the first
/// recorded outcome per task wins, so worker count, claim interleaving,
/// lease timing, and duplicated frames never change a merged byte.
#[derive(Debug)]
pub struct Coordinator {
    epoch: u64,
    fingerprint: u64,
    task_count: usize,
    lease_secs: f64,
    pending: VecDeque<usize>,
    leases: BTreeMap<usize, LeaseState>,
    outcomes: BTreeMap<usize, TaskOutcome>,
    /// Tasks whose lease expired at least once — the next grant of one
    /// of these is a *reassignment*.
    expired_once: BTreeSet<usize>,
    /// Dense worker ids in hello order (for trace events).
    workers: Vec<String>,
    journal: Option<Arc<CheckpointJournal>>,
    obs: Option<Arc<SweepObs>>,
    resumed: usize,
}

impl Coordinator {
    /// A coordinator for one sweep: every task of `plan` pending, no
    /// leases, no outcomes.
    pub fn new(epoch: u64, plan: &SweepPlan, config: CoordConfig) -> Coordinator {
        Coordinator {
            epoch,
            fingerprint: plan.fingerprint(),
            task_count: plan.task_count(),
            lease_secs: config.lease_secs,
            pending: (0..plan.task_count()).collect(),
            leases: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            expired_once: BTreeSet::new(),
            workers: Vec::new(),
            journal: None,
            obs: None,
            resumed: 0,
        }
    }

    /// Durably journal every recorded outcome (fsync'd append) before it
    /// is acknowledged, so a coordinator crash loses nothing a worker
    /// was told is safe. Writes the sweep header immediately, exactly
    /// like [`SweepExecutor::with_journal`] does at the top of a shard.
    pub fn with_journal(self, journal: Arc<CheckpointJournal>) -> Coordinator {
        journal
            .begin_sweep(self.fingerprint, self.task_count)
            .expect("checkpoint journal write failed");
        Coordinator {
            journal: Some(journal),
            ..self
        }
    }

    /// Crash recovery: splice outcomes `replay` already holds for this
    /// plan, so a restarted coordinator serves only the remainder.
    /// Journaled outcomes travel the same codec as `record` frames, so
    /// the final merge stays byte-identical to an uninterrupted run.
    pub fn with_resume(mut self, replay: &JournalReplay) -> Coordinator {
        for t in 0..self.task_count {
            if let Some(outcome) = replay.outcome(self.fingerprint, t) {
                self.outcomes.insert(t, outcome.clone());
                self.resumed += 1;
            }
        }
        self.pending.retain(|t| !self.outcomes.contains_key(t));
        if self.resumed > 0 {
            eprintln!(
                "[coord] resume: {}/{} tasks already journaled (epoch {})",
                self.resumed, self.task_count, self.epoch
            );
        }
        self
    }

    /// Record coordination telemetry (`coord.*` counters and lease trace
    /// events) into `obs`. Strictly observational.
    pub fn with_obs(self, obs: Arc<SweepObs>) -> Coordinator {
        Coordinator {
            obs: Some(obs),
            ..self
        }
    }

    /// The epoch this coordinator serves.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True once every task has a recorded outcome.
    pub fn finished(&self) -> bool {
        self.outcomes.len() == self.task_count
    }

    /// Tasks still lacking an outcome.
    pub fn remaining(&self) -> usize {
        self.task_count - self.outcomes.len()
    }

    /// Tasks spliced from a journal replay rather than recorded live.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// The recorded outcomes as a single full-coverage [`ShardResult`]
    /// (shard 0 of 1), ready for [`ShardResult::merge`] — which validates
    /// that every task is covered and assembles tables byte-identical to
    /// a direct run. Timing telemetry stays with the workers that
    /// measured it; the coordinator reports none.
    pub fn into_shard_result(self) -> ShardResult {
        let mut entries = Vec::new();
        let mut failures = Vec::new();
        for (t, outcome) in self.outcomes {
            match outcome {
                TaskOutcome::Ok(o) => entries.push((t, o)),
                TaskOutcome::Failed(f) => failures.push((t, f)),
            }
        }
        ShardResult {
            shard: 0,
            of: 1,
            plan_fingerprint: self.fingerprint,
            task_count: self.task_count,
            entries,
            failures,
            timings: Vec::new(),
            ref_timings: Vec::new(),
            events: Vec::new(),
            ref_events: Vec::new(),
        }
    }

    fn counter(&self, name: &str) {
        if let Some(obs) = &self.obs {
            obs.registry().counter_add(name, 1);
        }
    }

    fn trace(&self, ev: TraceEvent) {
        if let Some(obs) = &self.obs {
            obs.record_task_event(ev);
        }
    }

    /// Dense id of `worker`, registering it on first sight.
    fn worker_id(&mut self, worker: &str) -> u64 {
        match self.workers.iter().position(|w| w == worker) {
            Some(i) => i as u64,
            None => {
                self.workers.push(worker.to_string());
                (self.workers.len() - 1) as u64
            }
        }
    }

    /// Lazily expire leases older than `now`: the task returns to the
    /// pending queue (ascending task order, after everything already
    /// queued) and its next grant counts as a reassignment.
    fn expire_leases(&mut self, now: f64) {
        let dead: Vec<usize> = self
            .leases
            .iter()
            .filter(|(_, l)| l.deadline <= now)
            .map(|(&t, _)| t)
            .collect();
        for t in dead {
            let lease = self.leases.remove(&t).expect("lease vanished mid-expiry");
            self.expired_once.insert(t);
            self.pending.push_back(t);
            self.counter("coord.leases_expired");
            let worker = self.worker_id(&lease.worker);
            self.trace(TraceEvent::LeaseExpired {
                task: t as u64,
                worker,
            });
        }
    }

    /// Handle one request at clock time `now` (seconds, any monotone
    /// origin). Pure state transition: all I/O lives in the transports.
    pub fn handle(&mut self, req: &Request, now: f64) -> Response {
        self.expire_leases(now);
        let (epoch, worker) = match req {
            Request::Hello { worker, epoch, .. }
            | Request::Claim { worker, epoch }
            | Request::Heartbeat { worker, epoch, .. }
            | Request::Record { worker, epoch, .. }
            | Request::Bye { worker, epoch } => (*epoch, worker.clone()),
        };
        // Epoch routing: a frame for an earlier sweep is answered
        // terminally (that sweep is over — `done` for control frames,
        // `ok` for fire-and-forget ones); a frame for a later sweep
        // waits until this coordinator is replaced.
        if epoch < self.epoch {
            return match req {
                Request::Hello { .. } | Request::Claim { .. } => Response::Done,
                _ => Response::Ok,
            };
        }
        if epoch > self.epoch {
            return Response::Wait;
        }
        match req {
            Request::Hello {
                fingerprint,
                task_count,
                ..
            } => {
                if *fingerprint != self.fingerprint || *task_count != self.task_count {
                    return Response::Error {
                        msg: format!(
                            "plan mismatch: worker built {:016x}/{} tasks, \
                             coordinator {:016x}/{} — are both sides running \
                             identical figures flags?",
                            fingerprint, task_count, self.fingerprint, self.task_count
                        ),
                    };
                }
                let known = self.workers.iter().any(|w| w == &worker);
                let id = self.worker_id(&worker);
                if known {
                    self.counter("coord.worker_reconnects");
                    self.trace(TraceEvent::WorkerReconnect { worker: id });
                }
                Response::Welcome {
                    epoch: self.epoch,
                    fingerprint: self.fingerprint,
                    task_count: self.task_count,
                    lease_secs: self.lease_secs,
                }
            }
            Request::Claim { .. } => {
                if self.finished() {
                    return Response::Done;
                }
                let Some(task) = self.pending.pop_front() else {
                    return Response::Wait;
                };
                let id = self.worker_id(&worker);
                self.leases.insert(
                    task,
                    LeaseState {
                        worker,
                        deadline: now + self.lease_secs,
                    },
                );
                self.counter("coord.leases_granted");
                if self.expired_once.contains(&task) {
                    self.counter("coord.tasks_reassigned");
                    self.trace(TraceEvent::TaskReassigned {
                        task: task as u64,
                        worker: id,
                    });
                } else {
                    self.trace(TraceEvent::LeaseGranted {
                        task: task as u64,
                        worker: id,
                    });
                }
                Response::Lease { task }
            }
            Request::Heartbeat { task, .. } => match self.leases.get_mut(task) {
                Some(lease) if lease.worker == worker => {
                    lease.deadline = now + self.lease_secs;
                    Response::Ok
                }
                // The lease expired (and was possibly re-granted): the
                // worker may keep computing — its record can still win —
                // but there is no lease left to extend.
                _ => Response::Error {
                    msg: format!("no active lease on task {task} for {worker}"),
                },
            },
            Request::Record { task, outcome, .. } => {
                if *task >= self.task_count {
                    return Response::Error {
                        msg: format!("task {task} out of range for {}", self.task_count),
                    };
                }
                // Keep-first: a duplicate (double-assignment, duplicated
                // frame, retried record) is acknowledged and discarded,
                // mirroring the journal replay rule.
                if self.outcomes.contains_key(task) {
                    return Response::Ok;
                }
                if let Some(journal) = &self.journal {
                    journal
                        .record(*task, outcome)
                        .expect("checkpoint journal write failed");
                }
                self.outcomes.insert(*task, outcome.clone());
                self.leases.remove(task);
                self.pending.retain(|&p| p != *task);
                Response::Ok
            }
            Request::Bye { .. } => {
                let held: Vec<usize> = self
                    .leases
                    .iter()
                    .filter(|(_, l)| l.worker == worker)
                    .map(|(&t, _)| t)
                    .collect();
                for t in held {
                    self.leases.remove(&t);
                    self.pending.push_back(t);
                }
                Response::Ok
            }
        }
    }
}

/// Decode one request line, handle it, encode the response — the shared
/// core of every server front end. Malformed input becomes an `error`
/// response; nothing panics on untrusted bytes.
pub fn serve_line(coord: &mut Coordinator, line: &str, now: f64) -> String {
    match Request::decode(line) {
        Ok(req) => coord.handle(&req, now).encode(),
        Err(e) => Response::Error {
            msg: format!("bad request: {e}"),
        }
        .encode(),
    }
}

// ---------------------------------------------------------------------------
// Transports.

/// One round trip to the coordinator: send a request line, receive a
/// response line. Implementations are connectionless per call (the TCP
/// transport opens a fresh connection each time), which keeps frames
/// atomic and makes reconnect-after-failure the *only* recovery path —
/// there is no session state to resynchronize.
pub trait Transport: Send + Sync {
    /// Send one encoded request line, return the raw response line.
    fn call_raw(&self, line: &str) -> Result<String, String>;
}

/// Typed round trip over any [`Transport`].
pub fn call(transport: &dyn Transport, req: &Request) -> Result<Response, String> {
    let raw = transport.call_raw(&req.encode())?;
    Response::decode(raw.trim_end()).map_err(|e| format!("bad response: {e}"))
}

/// In-process transport: requests go straight into a shared
/// [`Coordinator`] under the wall clock. The fallback when no socket is
/// wanted (tests, single-process demos) — byte-for-byte the same frames
/// as TCP, minus the network.
pub struct LocalTransport {
    coord: Arc<Mutex<Coordinator>>,
    started: Instant,
}

impl LocalTransport {
    /// A transport feeding `coord` directly.
    pub fn new(coord: Arc<Mutex<Coordinator>>) -> LocalTransport {
        LocalTransport {
            coord,
            started: Instant::now(),
        }
    }
}

impl Transport for LocalTransport {
    fn call_raw(&self, line: &str) -> Result<String, String> {
        let now = self.started.elapsed().as_secs_f64();
        Ok(serve_line(&mut relock(&self.coord), line, now))
    }
}

/// TCP transport: one connection per request — connect, write the line,
/// half-close, read the response line.
pub struct TcpTransport {
    addr: String,
    timeout: Duration,
}

impl TcpTransport {
    /// A transport for the coordinator at `addr` (`host:port`), with a
    /// per-call connect/read timeout.
    pub fn new(addr: &str, timeout: Duration) -> TcpTransport {
        TcpTransport {
            addr: addr.to_string(),
            timeout,
        }
    }
}

impl Transport for TcpTransport {
    fn call_raw(&self, line: &str) -> Result<String, String> {
        let addr: SocketAddr = self
            .addr
            .parse()
            .map_err(|e| format!("bad coordinator address `{}`: {e}", self.addr))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.timeout)
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| format!("socket setup: {e}"))?;
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.shutdown(std::net::Shutdown::Write))
            .map_err(|e| format!("send: {e}"))?;
        let mut resp = String::new();
        BufReader::new(stream)
            .read_line(&mut resp)
            .map_err(|e| format!("recv: {e}"))?;
        if resp.trim_end().is_empty() {
            return Err("empty response (coordinator closed the connection)".to_string());
        }
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Deterministic wire-fault injection.

/// What the wire-fault injector decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireFault {
    /// The frame is dropped: the call fails as a transport error and the
    /// worker's reconnect path takes over.
    Drop,
    /// The frame is sent twice (the duplicate's response is discarded) —
    /// exercising request idempotence.
    Duplicate,
    /// The frame is delayed this many wall-clock seconds before sending —
    /// exercising lease expiry under slow links.
    Delay(f64),
    /// Only a prefix of the frame reaches the coordinator, which must
    /// answer with a typed `error`, never a panic.
    Truncate,
}

/// Deterministic per-frame wire-fault decisions, pure in
/// `(seed, frame counter)` via the same derived-stream scheme the
/// harness fault injector uses — so a faulty-wire run reproduces its
/// exact fault sequence on every host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFaultInjector {
    /// Stream seed.
    pub seed: u64,
    /// Probability a frame is dropped.
    pub p_drop: f64,
    /// Probability a frame is duplicated (checked after the drop draw).
    pub p_dup: f64,
    /// Probability a frame is delayed (checked after the previous draws).
    pub p_delay: f64,
    /// Probability a frame is truncated (checked last).
    pub p_truncate: f64,
    /// Delay length in wall-clock seconds.
    pub delay_secs: f64,
}

impl WireFaultInjector {
    /// A mildly hostile wire: a few percent of every fault kind.
    pub fn chaos(seed: u64) -> WireFaultInjector {
        WireFaultInjector {
            seed,
            p_drop: 0.05,
            p_dup: 0.05,
            p_delay: 0.05,
            p_truncate: 0.05,
            delay_secs: 0.02,
        }
    }

    /// The decision for frame number `n`. Pure and deterministic.
    pub fn decide(&self, n: u64) -> Option<WireFault> {
        let mut rng = SimRng::derive(self.seed, &format!("wire/{n}"));
        let u = rng.uniform();
        if u < self.p_drop {
            Some(WireFault::Drop)
        } else if u < self.p_drop + self.p_dup {
            Some(WireFault::Duplicate)
        } else if u < self.p_drop + self.p_dup + self.p_delay {
            Some(WireFault::Delay(self.delay_secs))
        } else if u < self.p_drop + self.p_dup + self.p_delay + self.p_truncate {
            Some(WireFault::Truncate)
        } else {
            None
        }
    }
}

/// A [`Transport`] wrapper acting out [`WireFaultInjector`] decisions on
/// the client side of the wire. Safe by construction: drops surface as
/// transport errors (retried with backoff), duplicates are idempotent
/// (keep-first records, re-extendable heartbeats), delays at worst
/// expire a lease (reassignment), truncations draw a typed `error`
/// response — so a sweep under an arbitrarily faulty wire still merges
/// byte-identical, it just takes longer.
pub struct FaultyTransport<T> {
    inner: T,
    injector: WireFaultInjector,
    counter: AtomicU64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner`, acting out `injector`'s decision stream.
    pub fn new(inner: T, injector: WireFaultInjector) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            injector,
            counter: AtomicU64::new(0),
        }
    }

    /// Frames seen so far (fault decisions consumed).
    pub fn frames(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn call_raw(&self, line: &str) -> Result<String, String> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        match self.injector.decide(n) {
            None => self.inner.call_raw(line),
            Some(WireFault::Drop) => Err(format!("injected: dropped frame {n}")),
            Some(WireFault::Duplicate) => {
                let first = self.inner.call_raw(line);
                match self.inner.call_raw(line) {
                    // If the duplicate send fails, fall back to the
                    // first response — one of the two got through.
                    Ok(resp) => Ok(resp),
                    Err(_) => first,
                }
            }
            Some(WireFault::Delay(secs)) => {
                std::thread::sleep(Duration::from_secs_f64(secs));
                self.inner.call_raw(line)
            }
            Some(WireFault::Truncate) => {
                let mut cut = line.len() / 2;
                while cut > 0 && !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                self.inner.call_raw(&line[..cut])
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TCP server front end.

/// The coordinator's TCP front end: a bound listener serving one request
/// line per connection into a [`Coordinator`] state machine.
pub struct CoordServer {
    listener: TcpListener,
}

impl CoordServer {
    /// Bind `addr` (`host:port`; port 0 picks a free one).
    pub fn bind(addr: &str) -> std::io::Result<CoordServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(CoordServer { listener })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve one sweep to completion: accept connections, answer one
    /// frame each, until every task has an outcome — then keep answering
    /// for `linger_secs` so workers polling for their `done` are not met
    /// with a dead port.
    pub fn serve_sweep(&self, coord: &mut Coordinator, linger_secs: f64) -> std::io::Result<()> {
        let started = Instant::now();
        let mut finished_at: Option<Instant> = None;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // A failed conversation with one client must not take
                    // the coordinator down; the client retries.
                    let _ = Self::answer(stream, coord, &started);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
            if coord.finished() {
                let since = finished_at.get_or_insert_with(Instant::now);
                if since.elapsed().as_secs_f64() >= linger_secs {
                    return Ok(());
                }
            }
        }
    }

    fn answer(
        mut stream: TcpStream,
        coord: &mut Coordinator,
        started: &Instant,
    ) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line)?;
        let now = started.elapsed().as_secs_f64();
        let resp = serve_line(coord, &line, now);
        stream.write_all(resp.as_bytes())?;
        stream.write_all(b"\n")
    }
}

// ---------------------------------------------------------------------------
// Worker client.

/// Worker client tuning knobs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Worker name (one whitespace-free token, unique per worker).
    pub id: String,
    /// Base of the deterministic exponential reconnect backoff
    /// (`base · 2^(attempt−1)`, exponent capped at 6).
    pub backoff_base_secs: f64,
    /// Consecutive transport failures tolerated per request before the
    /// coordinator is declared gone.
    pub max_retries: u32,
    /// Poll interval while the coordinator answers `wait`, seconds.
    pub poll_secs: f64,
    /// Send lease-extending heartbeats while executing (at roughly a
    /// third of the lease interval).
    pub heartbeat: bool,
}

impl WorkerConfig {
    /// Defaults for worker `id`.
    pub fn new(id: &str) -> WorkerConfig {
        WorkerConfig {
            id: id.to_string(),
            backoff_base_secs: 0.05,
            max_retries: 8,
            poll_secs: 0.05,
            heartbeat: true,
        }
    }

    fn backoff_secs(&self, attempt: u32) -> f64 {
        if self.backoff_base_secs <= 0.0 || attempt == 0 {
            0.0
        } else {
            self.backoff_base_secs * f64::from(1u32 << (attempt - 1).min(6))
        }
    }
}

/// Why a worker gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerError {
    /// The coordinator never answered the initial hello: the caller
    /// should degrade to local execution.
    Unreachable(String),
    /// The coordinator disappeared mid-sweep and stayed gone past the
    /// retry budget.
    Lost(String),
    /// The coordinator answered, but not with anything in the protocol
    /// (or refused the handshake).
    Protocol(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Unreachable(e) => write!(f, "coordinator unreachable: {e}"),
            WorkerError::Lost(e) => write!(f, "coordinator lost mid-sweep: {e}"),
            WorkerError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// What one worker did for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Tasks this worker executed and recorded.
    pub tasks_executed: usize,
    /// Transport-failure recoveries (client-side count; the coordinator
    /// counts the matching `coord.worker_reconnects` on re-hello).
    pub reconnects: u64,
}

/// Run one worker against one sweep: hello, then claim → execute →
/// record until the coordinator says `done`. Tasks execute through
/// [`SweepExecutor::run_task_list`], the exact code path of a sharded
/// run, so a coordinated sweep's outcomes are bit-identical to a direct
/// one whatever the claim interleaving.
///
/// `executor` should carry the worker's thread/fault/cache/obs
/// configuration but **not** a journal or resume replay — durability is
/// the coordinator's job.
pub fn run_worker(
    plan: &SweepPlan,
    epoch: u64,
    executor: &SweepExecutor,
    transport: &dyn Transport,
    config: &WorkerConfig,
) -> Result<WorkerSummary, WorkerError> {
    let fingerprint = plan.fingerprint();
    let task_count = plan.task_count();
    let hello = Request::Hello {
        worker: config.id.clone(),
        epoch,
        fingerprint,
        task_count,
    };
    let mut summary = WorkerSummary::default();

    // Handshake: bounded retries, then Unreachable so the caller can
    // degrade to local execution. A `wait` means the coordinator is
    // still on an earlier sweep — poll, it is reachable.
    let lease_secs = {
        let mut attempt = 0u32;
        loop {
            match call(transport, &hello) {
                Ok(Response::Welcome { lease_secs, .. }) => break lease_secs,
                Ok(Response::Done) => return Ok(summary),
                Ok(Response::Wait) => std::thread::sleep(Duration::from_secs_f64(config.poll_secs)),
                Ok(Response::Error { msg }) if msg.contains("plan mismatch") => {
                    return Err(WorkerError::Protocol(msg));
                }
                // `bad request` means the frame was mangled in transit
                // (the wire-fault injector truncates lines by design):
                // the coordinator never saw a parseable hello, so
                // resending is safe — treat it like a transport failure.
                Ok(Response::Error { msg }) if msg.starts_with("bad request") => {
                    attempt += 1;
                    if attempt > config.max_retries {
                        return Err(WorkerError::Unreachable(msg));
                    }
                    std::thread::sleep(Duration::from_secs_f64(config.backoff_secs(attempt)));
                }
                Ok(other) => {
                    return Err(WorkerError::Protocol(format!(
                        "unexpected hello response: {other:?}"
                    )));
                }
                Err(e) => {
                    attempt += 1;
                    if attempt > config.max_retries {
                        return Err(WorkerError::Unreachable(e));
                    }
                    std::thread::sleep(Duration::from_secs_f64(config.backoff_secs(attempt)));
                }
            }
        }
    };

    // One request with reconnect: deterministic exponential backoff
    // between attempts, a re-hello before each retry (so the coordinator
    // counts the reconnect), a typed Lost error past the budget.
    let rpc = |req: &Request, summary: &mut WorkerSummary| -> Result<Response, WorkerError> {
        let mut attempt = 0u32;
        loop {
            // A `bad request` reply means the frame was mangled in
            // transit (e.g. the wire-fault injector truncated it): the
            // coordinator never saw a parseable request, so resending
            // is safe for every frame type — duplicate records are
            // deduplicated keep-first on the coordinator. Any other
            // in-protocol error is the handler speaking and is
            // surfaced to the caller.
            let failure = match call(transport, req) {
                Ok(Response::Error { msg }) if msg.starts_with("bad request") => msg,
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            attempt += 1;
            if attempt > config.max_retries {
                return Err(WorkerError::Lost(failure));
            }
            std::thread::sleep(Duration::from_secs_f64(config.backoff_secs(attempt)));
            summary.reconnects += 1;
            let _ = call(transport, &hello);
        }
    };

    loop {
        match rpc(
            &Request::Claim {
                worker: config.id.clone(),
                epoch,
            },
            &mut summary,
        )? {
            Response::Lease { task } => {
                if task >= task_count {
                    return Err(WorkerError::Protocol(format!(
                        "leased task {task} out of range for {task_count}"
                    )));
                }
                let outcome =
                    execute_task(plan, epoch, executor, transport, config, task, lease_secs);
                match rpc(
                    &Request::Record {
                        worker: config.id.clone(),
                        epoch,
                        task,
                        outcome,
                    },
                    &mut summary,
                )? {
                    Response::Ok | Response::Done => {}
                    Response::Error { msg } => return Err(WorkerError::Protocol(msg)),
                    other => {
                        return Err(WorkerError::Protocol(format!(
                            "unexpected record response: {other:?}"
                        )));
                    }
                }
                summary.tasks_executed += 1;
            }
            Response::Wait => std::thread::sleep(Duration::from_secs_f64(config.poll_secs)),
            Response::Done => {
                let _ = call(
                    transport,
                    &Request::Bye {
                        worker: config.id.clone(),
                        epoch,
                    },
                );
                return Ok(summary);
            }
            // A truncated or garbled frame drew a typed refusal; treat
            // it like a transport hiccup and claim again.
            Response::Error { .. } => {
                std::thread::sleep(Duration::from_secs_f64(config.backoff_secs(1)))
            }
            other => {
                return Err(WorkerError::Protocol(format!(
                    "unexpected claim response: {other:?}"
                )));
            }
        }
    }
}

/// Execute one leased task, heartbeating at a third of the lease
/// interval from a side thread so a long cell outlives its lease.
/// Heartbeat responses are advisory — a lost lease does not stop the
/// computation, because a late result can still win the keep-first race.
fn execute_task(
    plan: &SweepPlan,
    epoch: u64,
    executor: &SweepExecutor,
    transport: &dyn Transport,
    config: &WorkerConfig,
    task: usize,
    lease_secs: f64,
) -> TaskOutcome {
    let run = || {
        let shard = executor.run_task_list(plan, vec![task], 0, 1);
        shard_outcome(shard, task)
    };
    if !config.heartbeat || lease_secs <= 0.0 {
        return run();
    }
    let stop = AtomicBool::new(false);
    let interval = (lease_secs / 3.0).max(0.01);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let beat = Request::Heartbeat {
                worker: config.id.clone(),
                epoch,
                task,
            };
            // Sleep in short slices so the thread exits promptly once
            // the task lands.
            let slice = Duration::from_millis(10);
            let mut slept = 0.0;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                slept += slice.as_secs_f64();
                if slept >= interval {
                    slept = 0.0;
                    let _ = call(transport, &beat);
                }
            }
        });
        let outcome = run();
        stop.store(true, Ordering::Relaxed);
        outcome
    })
}

/// Extract the single task's outcome from its one-task [`ShardResult`].
fn shard_outcome(shard: ShardResult, task: usize) -> TaskOutcome {
    if let Some((_, o)) = shard.entries.into_iter().find(|&(t, _)| t == task) {
        return TaskOutcome::Ok(o);
    }
    if let Some((_, f)) = shard.failures.into_iter().find(|(t, _)| *t == task) {
        return TaskOutcome::Failed(f);
    }
    // Unreachable for a well-formed executor; degrade to a typed failure
    // rather than panicking the worker loop.
    TaskOutcome::Failed(TaskFailure {
        error: crate::fault::TaskError::Panic(format!("executor produced no outcome for {task}")),
        attempts: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::RunConfig;
    use crate::scenario::Scenario;
    use crate::shard::encode_outcome;
    use xsched_workload::setup;

    fn tiny_plan() -> SweepPlan {
        let rc = RunConfig {
            warmup_txns: 20,
            measured_txns: 120,
            ..Default::default()
        };
        let scenarios = [1u32, 4, 9]
            .iter()
            .map(|&m| Scenario::tput("s1", setup(1), m, rc.clone()))
            .collect();
        SweepPlan::new(scenarios).replicated(2, 42)
    }

    fn outcome_bits(results: &[crate::sweep::ScenarioResult]) -> Vec<String> {
        results
            .iter()
            .flat_map(|r| r.outcomes.iter().map(encode_outcome))
            .collect()
    }

    fn hello(worker: &str, plan: &SweepPlan) -> Request {
        Request::Hello {
            worker: worker.to_string(),
            epoch: 0,
            fingerprint: plan.fingerprint(),
            task_count: plan.task_count(),
        }
    }

    fn claim(worker: &str) -> Request {
        Request::Claim {
            worker: worker.to_string(),
            epoch: 0,
        }
    }

    #[test]
    fn frames_round_trip_through_the_codec() {
        let outcome = TaskOutcome::Ok(tiny_plan().scenarios[0].run(7));
        let reqs = [
            Request::Hello {
                worker: "w0".into(),
                epoch: 3,
                fingerprint: 0xdeadbeef,
                task_count: 42,
            },
            Request::Claim {
                worker: "w1".into(),
                epoch: 0,
            },
            Request::Heartbeat {
                worker: "w0".into(),
                epoch: 1,
                task: 17,
            },
            Request::Record {
                worker: "w2".into(),
                epoch: 2,
                task: 5,
                outcome,
            },
            Request::Bye {
                worker: "w9".into(),
                epoch: 0,
            },
        ];
        for req in &reqs {
            let line = req.encode();
            let back = Request::decode(&line).unwrap();
            assert_eq!(back.encode(), line, "{line}");
        }
        let resps = [
            Response::Welcome {
                epoch: 1,
                fingerprint: 0xfeed,
                task_count: 9,
                lease_secs: 2.5,
            },
            Response::Lease { task: 3 },
            Response::Wait,
            Response::Done,
            Response::Ok,
            Response::Error {
                msg: "plan mismatch: something went wrong".into(),
            },
        ];
        for resp in &resps {
            let line = resp.encode();
            assert_eq!(&Response::decode(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn garbage_frames_decode_to_typed_errors_not_panics() {
        for junk in [
            "",
            " ",
            "hello",
            "hello w0",
            "hello w0 0 zzzz 4",
            "claim",
            "heartbeat w0 0",
            "record w0 0",
            "record w0 0 3",
            "record w0 0 3 ok",
            "record w0 0 3 ok R not-bits",
            "record w0 0 notanumber ok R",
            "frobnicate the wire",
            "hello  0 5 4",
            "lease-but-a-request",
            "record w0 0 3 maybe X",
        ] {
            let err = Request::decode(junk).unwrap_err();
            assert!(!err.msg.is_empty(), "`{junk}` must carry a message");
        }
        for junk in [
            "",
            "welcome",
            "welcome 0 zz 3 0",
            "lease",
            "lease x",
            "nope",
        ] {
            assert!(Response::decode(junk).is_err(), "`{junk}` must not parse");
        }
        // Valid-but-suffixed simple responses are rejected too.
        assert!(Response::decode("done extra").is_err());
    }

    #[test]
    fn coordinator_hands_out_every_task_once_and_finishes() {
        let plan = tiny_plan();
        let mut coord = Coordinator::new(0, &plan, CoordConfig::default());
        assert!(matches!(
            coord.handle(&hello("w0", &plan), 0.0),
            Response::Welcome { .. }
        ));
        let mut got = Vec::new();
        for _ in 0..plan.task_count() {
            match coord.handle(&claim("w0"), 0.1) {
                Response::Lease { task } => got.push(task),
                other => panic!("expected lease, got {other:?}"),
            }
        }
        assert_eq!(got, (0..plan.task_count()).collect::<Vec<_>>());
        // Queue drained but leases outstanding: wait, not done.
        assert_eq!(coord.handle(&claim("w0"), 0.2), Response::Wait);
        for &t in &got {
            let outcome = TaskOutcome::Ok(plan.scenarios[plan.tasks()[t].0].run(plan.tasks()[t].1));
            let rec = Request::Record {
                worker: "w0".into(),
                epoch: 0,
                task: t,
                outcome,
            };
            assert_eq!(coord.handle(&rec, 0.3), Response::Ok);
        }
        assert!(coord.finished());
        assert_eq!(coord.handle(&claim("w0"), 0.4), Response::Done);
    }

    #[test]
    fn expired_leases_are_reassigned_and_heartbeats_prevent_expiry() {
        let plan = tiny_plan();
        let mut coord = Coordinator::new(0, &plan, CoordConfig { lease_secs: 5.0 });
        let Response::Lease { task } = coord.handle(&claim("w0"), 0.0) else {
            panic!("no lease");
        };
        // Heartbeats extend: at t=4 extend to 9; t=8 still held.
        let beat = Request::Heartbeat {
            worker: "w0".into(),
            epoch: 0,
            task,
        };
        assert_eq!(coord.handle(&beat, 4.0), Response::Ok);
        // w1 claims at t=8: the heartbeat kept w0's lease alive, so w1
        // gets the *next* task, not w0's.
        let Response::Lease { task: t1 } = coord.handle(&claim("w1"), 8.0) else {
            panic!("no lease for w1");
        };
        assert_ne!(t1, task);
        // Past t=9 with no further heartbeat, w0's lease dies and the
        // task reassigns (w1's own lease is still fresh).
        let Response::Lease { task: t2 } = coord.handle(&claim("w1"), 9.5) else {
            panic!("no reassignment lease");
        };
        // w0's expired task goes to the back of the queue; pending tasks
        // (2, 3, …) come first.
        assert_ne!(t2, task);
        let mut seen = vec![task, t1, t2];
        loop {
            match coord.handle(&claim("w1"), 9.6) {
                Response::Lease { task } => seen.push(task),
                Response::Wait => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        // Now every task is leased, with w0's original task re-granted
        // to w1 at the back.
        assert_eq!(*seen.last().unwrap(), task);
        // A dead worker's heartbeat on the lost lease is refused.
        assert!(matches!(coord.handle(&beat, 9.7), Response::Error { .. }));
    }

    #[test]
    fn first_record_wins_and_duplicates_are_acknowledged() {
        let plan = tiny_plan();
        let mut coord = Coordinator::new(0, &plan, CoordConfig { lease_secs: 1.0 });
        let (si, seed) = plan.tasks()[0];
        let real = TaskOutcome::Ok(plan.scenarios[si].run(seed));
        let fake = TaskOutcome::Failed(TaskFailure {
            error: crate::fault::TaskError::Panic("late loser".into()),
            attempts: 1,
        });
        let rec = |outcome: TaskOutcome| Request::Record {
            worker: "w0".into(),
            epoch: 0,
            task: 0,
            outcome,
        };
        assert_eq!(coord.handle(&rec(real.clone()), 0.0), Response::Ok);
        // The duplicate (different payload — a late double-assigned
        // loser) is acknowledged but discarded.
        assert_eq!(coord.handle(&rec(fake), 0.1), Response::Ok);
        let shard = coord.into_shard_result();
        assert_eq!(shard.entries.len(), 1);
        assert!(shard.failures.is_empty());
        let TaskOutcome::Ok(kept) = real else {
            unreachable!()
        };
        assert_eq!(encode_outcome(&shard.entries[0].1), encode_outcome(&kept));
    }

    #[test]
    fn epoch_routing_separates_consecutive_sweeps() {
        let plan = tiny_plan();
        let mut coord = Coordinator::new(2, &plan, CoordConfig::default());
        // Stale epoch: control frames are told the sweep is done.
        let mut old = hello("w0", &plan);
        if let Request::Hello { epoch, .. } = &mut old {
            *epoch = 1;
        }
        assert_eq!(coord.handle(&old, 0.0), Response::Done);
        // Future epoch: wait for the next coordinator.
        let mut future = hello("w0", &plan);
        if let Request::Hello { epoch, .. } = &mut future {
            *epoch = 3;
        }
        assert_eq!(coord.handle(&future, 0.0), Response::Wait);
        // A stale record is acknowledged (and discarded).
        let rec = Request::Record {
            worker: "w0".into(),
            epoch: 1,
            task: 0,
            outcome: TaskOutcome::Ok(plan.scenarios[0].run(42)),
        };
        assert_eq!(coord.handle(&rec, 0.0), Response::Ok);
        assert_eq!(coord.remaining(), plan.task_count());
    }

    #[test]
    fn hello_validates_the_plan_and_counts_reconnects() {
        let plan = tiny_plan();
        let obs = Arc::new(SweepObs::new());
        let mut coord =
            Coordinator::new(0, &plan, CoordConfig::default()).with_obs(Arc::clone(&obs));
        assert!(matches!(
            coord.handle(&hello("w0", &plan), 0.0),
            Response::Welcome { .. }
        ));
        assert_eq!(obs.registry().counter("coord.worker_reconnects"), 0);
        // Same worker helloing again = a reconnect.
        assert!(matches!(
            coord.handle(&hello("w0", &plan), 1.0),
            Response::Welcome { .. }
        ));
        assert_eq!(obs.registry().counter("coord.worker_reconnects"), 1);
        // A different plan is refused with a typed message.
        let bad = Request::Hello {
            worker: "w1".into(),
            epoch: 0,
            fingerprint: 0x1234,
            task_count: plan.task_count(),
        };
        match coord.handle(&bad, 2.0) {
            Response::Error { msg } => assert!(msg.contains("plan mismatch"), "{msg}"),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn coordinated_sweep_merges_bit_identical_to_direct_run() {
        let plan = tiny_plan();
        let direct = SweepExecutor::parallel(3).run(&plan);

        let coord = Arc::new(Mutex::new(Coordinator::new(
            0,
            &plan,
            CoordConfig { lease_secs: 30.0 },
        )));
        let transport = LocalTransport::new(Arc::clone(&coord));
        // Two workers race over the in-process transport.
        let summaries: Vec<WorkerSummary> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let transport = &transport;
                    let plan = &plan;
                    scope.spawn(move || {
                        let executor = SweepExecutor::serial();
                        run_worker(
                            plan,
                            0,
                            &executor,
                            transport,
                            &WorkerConfig::new(&format!("w{i}")),
                        )
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let executed: usize = summaries.iter().map(|s| s.tasks_executed).sum();
        assert_eq!(executed, plan.task_count());

        drop(transport);
        let coord = Arc::into_inner(coord).unwrap().into_inner().unwrap();
        assert!(coord.finished());
        let shard = coord.into_shard_result();
        let merged = ShardResult::merge(&plan, [&shard]).unwrap();
        assert_eq!(outcome_bits(&direct), outcome_bits(&merged));
    }

    #[test]
    fn coordinated_sweep_survives_a_faulty_wire_bit_identically() {
        let plan = tiny_plan();
        let direct = SweepExecutor::parallel(3).run(&plan);

        let coord = Arc::new(Mutex::new(Coordinator::new(
            0,
            &plan,
            // Short leases so injected delays/drops can actually expire
            // one mid-test.
            CoordConfig { lease_secs: 0.5 },
        )));
        let transport = FaultyTransport::new(
            LocalTransport::new(Arc::clone(&coord)),
            WireFaultInjector::chaos(1234),
        );
        let mut config = WorkerConfig::new("w0");
        config.backoff_base_secs = 0.005;
        config.max_retries = 64;
        config.poll_secs = 0.005;
        let executor = SweepExecutor::serial();
        let summary = run_worker(&plan, 0, &executor, &transport, &config).unwrap();
        assert!(summary.tasks_executed >= plan.task_count());
        assert!(transport.frames() > 0);

        drop(transport);
        let coord = Arc::into_inner(coord).unwrap().into_inner().unwrap();
        let merged = ShardResult::merge(&plan, [&coord.into_shard_result()]).unwrap();
        assert_eq!(outcome_bits(&direct), outcome_bits(&merged));
    }

    #[test]
    fn truncate_heavy_wire_still_converges_bit_identically() {
        // A third of all frames cut in half: every truncated request
        // earns an `error bad request` reply, which the worker must
        // treat as a transport fault (resend) — not a fatal protocol
        // error. Regression for the worker aborting on a truncated
        // `record` frame.
        let plan = tiny_plan();
        let direct = SweepExecutor::parallel(3).run(&plan);

        let coord = Arc::new(Mutex::new(Coordinator::new(
            0,
            &plan,
            CoordConfig { lease_secs: 5.0 },
        )));
        let transport = FaultyTransport::new(
            LocalTransport::new(Arc::clone(&coord)),
            WireFaultInjector {
                seed: 99,
                p_drop: 0.0,
                p_dup: 0.0,
                p_delay: 0.0,
                p_truncate: 0.34,
                delay_secs: 0.0,
            },
        );
        let mut config = WorkerConfig::new("w0");
        config.backoff_base_secs = 0.002;
        config.max_retries = 64;
        config.poll_secs = 0.005;
        let executor = SweepExecutor::serial();
        let summary = run_worker(&plan, 0, &executor, &transport, &config).unwrap();
        assert!(summary.tasks_executed >= plan.task_count());

        drop(transport);
        let coord = Arc::into_inner(coord).unwrap().into_inner().unwrap();
        let merged = ShardResult::merge(&plan, [&coord.into_shard_result()]).unwrap();
        assert_eq!(outcome_bits(&direct), outcome_bits(&merged));
    }

    #[test]
    fn wire_fault_decisions_are_deterministic() {
        let inj = WireFaultInjector::chaos(42);
        for n in 0..200 {
            assert_eq!(inj.decide(n), inj.decide(n));
        }
        // All four kinds appear somewhere in a long stream.
        let kinds: std::collections::BTreeSet<String> = (0..2000)
            .filter_map(|n| inj.decide(n))
            .map(|f| format!("{f:?}").split('(').next().unwrap().to_string())
            .collect();
        assert_eq!(kinds.len(), 4, "{kinds:?}");
        // And a zero-rate injector never fires.
        let quiet = WireFaultInjector {
            seed: 42,
            p_drop: 0.0,
            p_dup: 0.0,
            p_delay: 0.0,
            p_truncate: 0.0,
            delay_secs: 0.0,
        };
        assert!((0..500).all(|n| quiet.decide(n).is_none()));
    }

    #[test]
    fn coordinator_journal_recovery_resumes_the_remainder() {
        let dir = std::env::temp_dir().join(format!("xsched-coord-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("coord-recovery.journal");
        let _ = std::fs::remove_file(&path);
        let plan = tiny_plan();
        let direct = SweepExecutor::parallel(3).run(&plan);

        // First incarnation records half the tasks, then "crashes".
        {
            let journal = Arc::new(CheckpointJournal::create(&path).unwrap());
            let mut coord =
                Coordinator::new(0, &plan, CoordConfig::default()).with_journal(journal);
            for t in 0..plan.task_count() / 2 {
                let (si, seed) = plan.tasks()[t];
                let rec = Request::Record {
                    worker: "w0".into(),
                    epoch: 0,
                    task: t,
                    outcome: TaskOutcome::Ok(plan.scenarios[si].run(seed)),
                };
                assert_eq!(coord.handle(&rec, 0.0), Response::Ok);
            }
            assert!(!coord.finished());
        }

        // Second incarnation replays the journal and serves the rest.
        let replay = Arc::new(JournalReplay::load(&path).unwrap());
        let journal = Arc::new(CheckpointJournal::append(&path).unwrap());
        let coord = Coordinator::new(0, &plan, CoordConfig { lease_secs: 30.0 })
            .with_journal(journal)
            .with_resume(&replay);
        assert_eq!(coord.resumed(), plan.task_count() / 2);
        let coord = Arc::new(Mutex::new(coord));
        let transport = LocalTransport::new(Arc::clone(&coord));
        let executor = SweepExecutor::serial();
        let summary =
            run_worker(&plan, 0, &executor, &transport, &WorkerConfig::new("w1")).unwrap();
        assert_eq!(
            summary.tasks_executed,
            plan.task_count() - plan.task_count() / 2
        );
        drop(transport);
        let coord = Arc::into_inner(coord).unwrap().into_inner().unwrap();
        let merged = ShardResult::merge(&plan, [&coord.into_shard_result()]).unwrap();
        assert_eq!(outcome_bits(&direct), outcome_bits(&merged));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unreachable_coordinator_reports_a_typed_degradation_error() {
        struct DeadTransport;
        impl Transport for DeadTransport {
            fn call_raw(&self, _line: &str) -> Result<String, String> {
                Err("connection refused".to_string())
            }
        }
        let plan = tiny_plan();
        let mut config = WorkerConfig::new("w0");
        config.backoff_base_secs = 0.0;
        config.max_retries = 3;
        let executor = SweepExecutor::serial();
        match run_worker(&plan, 0, &executor, &DeadTransport, &config) {
            Err(WorkerError::Unreachable(e)) => assert!(e.contains("refused"), "{e}"),
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn tcp_server_round_trips_a_sweep_end_to_end() {
        let plan = tiny_plan();
        let direct = SweepExecutor::parallel(3).run(&plan);
        let server = CoordServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let mut coord = Coordinator::new(0, &plan, CoordConfig { lease_secs: 30.0 });

        let worker = std::thread::spawn({
            let plan = plan.clone();
            let addr = addr.clone();
            move || {
                let transport = TcpTransport::new(&addr, Duration::from_secs(2));
                let executor = SweepExecutor::serial();
                run_worker(
                    &plan,
                    0,
                    &executor,
                    &transport,
                    &WorkerConfig::new("tcp-w0"),
                )
                .unwrap()
            }
        });
        server.serve_sweep(&mut coord, 0.3).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.tasks_executed, plan.task_count());
        let merged = ShardResult::merge(&plan, [&coord.into_shard_result()]).unwrap();
        assert_eq!(outcome_bits(&direct), outcome_bits(&merged));
    }
}
