//! External-queue ordering disciplines.
//!
//! The external scheduler's power comes from being able to reorder the
//! external queue arbitrarily (§1). The paper's prioritization experiment
//! uses strict two-class priority with FIFO within a class ([`PriorityFifo`],
//! §5.1); [`Fifo`] is the neutral baseline; [`Sjf`] is a
//! shortest-job-first extension exercising the "custom-tailored policy"
//! flexibility the paper advertises (it assumes the application can
//! estimate transaction demands, e.g. from query plans).

use std::collections::VecDeque;
use xsched_dbms::txn::{Priority, TxnBody};

/// A transaction waiting in the external queue.
#[derive(Debug, Clone)]
pub struct QueuedTxn {
    /// The transaction program.
    pub body: TxnBody,
    /// Time it arrived at the external queue, seconds.
    pub arrival: f64,
}

/// An ordering discipline for the external queue.
pub trait QueuePolicy {
    /// Add a transaction to the queue.
    fn push(&mut self, txn: QueuedTxn);
    /// Remove the next transaction to admit, if any.
    fn pop(&mut self) -> Option<QueuedTxn>;
    /// Number of queued transactions.
    fn len(&self) -> usize;
    /// True if nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl QueuePolicy for Box<dyn QueuePolicy> {
    fn push(&mut self, txn: QueuedTxn) {
        (**self).push(txn)
    }
    fn pop(&mut self) -> Option<QueuedTxn> {
        (**self).pop()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
}

/// First-in-first-out: the no-differentiation baseline.
#[derive(Debug, Default)]
pub struct Fifo {
    q: VecDeque<QueuedTxn>,
}

impl Fifo {
    /// An empty FIFO queue.
    pub fn new() -> Fifo {
        Fifo::default()
    }
}

impl QueuePolicy for Fifo {
    fn push(&mut self, txn: QueuedTxn) {
        self.q.push_back(txn);
    }
    fn pop(&mut self) -> Option<QueuedTxn> {
        self.q.pop_front()
    }
    fn len(&self) -> usize {
        self.q.len()
    }
}

/// Strict two-class priority, FIFO within each class: "high-priority
/// transactions are given first priority, and low-priority transactions
/// are only chosen if there are no more high-priority transactions" (§5.1).
#[derive(Debug, Default)]
pub struct PriorityFifo {
    high: VecDeque<QueuedTxn>,
    low: VecDeque<QueuedTxn>,
}

impl PriorityFifo {
    /// An empty two-class queue.
    pub fn new() -> PriorityFifo {
        PriorityFifo::default()
    }

    /// Number of queued high-priority transactions.
    pub fn high_len(&self) -> usize {
        self.high.len()
    }
}

impl QueuePolicy for PriorityFifo {
    fn push(&mut self, txn: QueuedTxn) {
        match txn.body.priority {
            Priority::High => self.high.push_back(txn),
            Priority::Low => self.low.push_back(txn),
        }
    }
    fn pop(&mut self) -> Option<QueuedTxn> {
        self.high.pop_front().or_else(|| self.low.pop_front())
    }
    fn len(&self) -> usize {
        self.high.len() + self.low.len()
    }
}

/// Weighted fair sharing between the two priority classes: when both
/// classes are backlogged, a fraction `w_high` of dispatches goes to the
/// high class (credit-based, deterministic). Unlike strict priority this
/// cannot starve the low class — the "class-based QoS" policy direction
/// of the authors' companion paper (Schroeder et al., "Achieving
/// class-based QoS for transactional workloads", ICDE 2006, ref. 22 of the paper).
#[derive(Debug)]
pub struct WeightedFair {
    w_high: f64,
    credit: f64,
    high: VecDeque<QueuedTxn>,
    low: VecDeque<QueuedTxn>,
}

impl WeightedFair {
    /// `w_high` in `(0, 1)`: share of dispatches reserved for the high
    /// class while both classes are backlogged.
    pub fn new(w_high: f64) -> WeightedFair {
        assert!((0.0..=1.0).contains(&w_high));
        WeightedFair {
            w_high,
            credit: 0.0,
            high: VecDeque::new(),
            low: VecDeque::new(),
        }
    }
}

impl QueuePolicy for WeightedFair {
    fn push(&mut self, txn: QueuedTxn) {
        match txn.body.priority {
            Priority::High => self.high.push_back(txn),
            Priority::Low => self.low.push_back(txn),
        }
    }
    fn pop(&mut self) -> Option<QueuedTxn> {
        if self.high.is_empty() {
            return self.low.pop_front();
        }
        if self.low.is_empty() {
            return self.high.pop_front();
        }
        self.credit += self.w_high;
        if self.credit >= 1.0 {
            self.credit -= 1.0;
            self.high.pop_front()
        } else {
            self.low.pop_front()
        }
    }
    fn len(&self) -> usize {
        self.high.len() + self.low.len()
    }
}

/// Shortest-job-first on estimated intrinsic demand (CPU plus uncached
/// I/O time). Ties break FIFO. An *extension* beyond the paper's
/// experiments, enabled by the same external mechanism.
#[derive(Debug)]
pub struct Sjf {
    io_cost: f64,
    // (key, seq) kept sorted ascending; pop from the front. A Vec with
    // binary-search insert beats a BinaryHeap at the queue lengths seen
    // here and keeps iteration deterministic.
    q: Vec<(f64, u64, QueuedTxn)>,
    seq: u64,
}

impl Sjf {
    /// `io_cost` is the assumed time of one uncached page access, used to
    /// convert page counts into seconds when estimating demands.
    pub fn new(io_cost: f64) -> Sjf {
        Sjf {
            io_cost,
            q: Vec::new(),
            seq: 0,
        }
    }

    fn demand(&self, body: &TxnBody) -> f64 {
        body.total_cpu() + body.total_pages() as f64 * self.io_cost
    }
}

impl QueuePolicy for Sjf {
    fn push(&mut self, txn: QueuedTxn) {
        let key = self.demand(&txn.body);
        let seq = self.seq;
        self.seq += 1;
        let pos = self
            .q
            .partition_point(|(k, s, _)| *k < key || (*k == key && *s < seq));
        self.q.insert(pos, (key, seq, txn));
    }
    fn pop(&mut self) -> Option<QueuedTxn> {
        if self.q.is_empty() {
            None
        } else {
            Some(self.q.remove(0).2)
        }
    }
    fn len(&self) -> usize {
        self.q.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsched_dbms::txn::Step;

    fn txn(priority: Priority, cpu: f64, arrival: f64) -> QueuedTxn {
        QueuedTxn {
            body: TxnBody {
                txn_type: 0,
                priority,
                steps: vec![Step::compute(cpu)],
            },
            arrival,
        }
    }

    #[test]
    fn fifo_preserves_order() {
        let mut q = Fifo::new();
        for i in 0..5 {
            q.push(txn(Priority::Low, 0.001, i as f64));
        }
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|t| t.arrival)).collect();
        assert_eq!(order, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert!(q.is_empty());
    }

    #[test]
    fn priority_fifo_serves_high_first() {
        let mut q = PriorityFifo::new();
        q.push(txn(Priority::Low, 0.001, 0.0));
        q.push(txn(Priority::High, 0.001, 1.0));
        q.push(txn(Priority::Low, 0.001, 2.0));
        q.push(txn(Priority::High, 0.001, 3.0));
        assert_eq!(q.len(), 4);
        assert_eq!(q.high_len(), 2);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|t| t.arrival)).collect();
        assert_eq!(order, vec![1.0, 3.0, 0.0, 2.0], "high FIFO then low FIFO");
    }

    #[test]
    fn sjf_orders_by_demand() {
        let mut q = Sjf::new(0.005);
        q.push(txn(Priority::Low, 0.030, 0.0));
        q.push(txn(Priority::Low, 0.010, 1.0));
        q.push(txn(Priority::Low, 0.020, 2.0));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|t| t.arrival)).collect();
        assert_eq!(order, vec![1.0, 2.0, 0.0]);
    }

    #[test]
    fn sjf_counts_io_in_demand() {
        let mut q = Sjf::new(0.005);
        // 1 ms CPU + 10 pages = 51 ms estimated; vs 30 ms pure CPU.
        let mut io_heavy = txn(Priority::Low, 0.001, 0.0);
        io_heavy.body.steps[0].pages = (0..10).map(xsched_dbms::txn::PageId).collect();
        q.push(io_heavy);
        q.push(txn(Priority::Low, 0.030, 1.0));
        assert_eq!(q.pop().unwrap().arrival, 1.0, "pure-CPU txn is shorter");
    }

    #[test]
    fn sjf_ties_break_fifo() {
        let mut q = Sjf::new(0.0);
        q.push(txn(Priority::Low, 0.010, 0.0));
        q.push(txn(Priority::Low, 0.010, 1.0));
        assert_eq!(q.pop().unwrap().arrival, 0.0);
        assert_eq!(q.pop().unwrap().arrival, 1.0);
    }

    #[test]
    fn empty_pops_none() {
        assert!(Fifo::new().pop().is_none());
        assert!(PriorityFifo::new().pop().is_none());
        assert!(Sjf::new(0.0).pop().is_none());
        assert!(WeightedFair::new(0.5).pop().is_none());
    }

    #[test]
    fn weighted_fair_respects_share_under_backlog() {
        let mut q = WeightedFair::new(0.25);
        for i in 0..100 {
            q.push(txn(Priority::High, 0.001, i as f64));
            q.push(txn(Priority::Low, 0.001, 1000.0 + i as f64));
        }
        let mut high = 0;
        for _ in 0..80 {
            if q.pop().unwrap().arrival < 1000.0 {
                high += 1;
            }
        }
        assert_eq!(high, 20, "25% of 80 dispatches go high");
    }

    #[test]
    fn weighted_fair_never_starves_either_class() {
        let mut q = WeightedFair::new(0.9);
        for i in 0..10 {
            q.push(txn(Priority::High, 0.001, i as f64));
            q.push(txn(Priority::Low, 0.001, 1000.0 + i as f64));
        }
        let popped: Vec<f64> = std::iter::from_fn(|| q.pop().map(|t| t.arrival)).collect();
        assert_eq!(popped.len(), 20, "everything is eventually served");
        assert!(popped[..10].iter().any(|a| *a >= 1000.0), "low not starved");
    }

    #[test]
    fn weighted_fair_drains_single_class() {
        let mut q = WeightedFair::new(0.1);
        for i in 0..5 {
            q.push(txn(Priority::High, 0.001, i as f64));
        }
        let n = std::iter::from_fn(|| q.pop()).count();
        assert_eq!(n, 5, "sole class is served at full rate");
    }
}
