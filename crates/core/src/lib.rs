#![warn(missing_docs)]
//! External transaction scheduling with an automatically tuned MPL.
//!
//! This crate is the paper's primary contribution (Schroeder et al., ICDE
//! 2006): keep most transactions in an *external* queue the application
//! controls, admit at most MPL of them into the DBMS, and tune that MPL to
//! the lowest value that does not hurt throughput or overall mean response
//! time.
//!
//! * [`policy`] — ordering disciplines for the external queue (FIFO,
//!   two-class priority as in §5.1, and SJF extensions);
//! * [`gate`] — the MPL counting gate, safe under live resizing;
//! * [`scheduler`] — [`ExternalScheduler`], the queue + gate composition
//!   every application-facing API goes through;
//! * [`controller`] — the feedback controller of §4.3: observation windows
//!   gated on sample count and confidence-interval width, ±1 reactions
//!   with hysteresis, and a queueing-theoretic jump start
//!   (`xsched-queueing`);
//! * [`driver`] — the experiment driver marrying a workload generator, the
//!   external scheduler and the simulated DBMS; implements every
//!   experiment shape the paper reports (throughput curves, open-system
//!   response times, priority differentiation, controller convergence);
//! * [`scenario`] — serializable, self-contained experiment descriptions:
//!   a [`Scenario`] is one cell of a figure (setup × execution shape ×
//!   run configuration), pure in `(scenario, seed)`;
//! * [`sweep`] — [`SweepPlan`] (scenarios × replication seeds) and the
//!   multi-threaded [`SweepExecutor`], bit-identical to serial execution
//!   and feeding Student-t confidence intervals from replications;
//! * [`cache`] — the plan-level [`MeasurementCache`] memoizing capacity
//!   (reference) runs so open-load grids measure each `(setup, seed)`
//!   capacity exactly once;
//! * [`cost`] — the [`CostModel`] predicting per-task wall-clock cost
//!   from scenario structure (calibratable from recorded per-cell
//!   timings), which drives cost-balanced shard slicing
//!   ([`SweepPlan::shard_balanced`]) and longest-cell-first task claiming
//!   inside the executor;
//! * [`shard`] — [`ShardResult`] and its bit-exact merge/codec, so a
//!   sweep's flat task grid can be split across processes or hosts and
//!   reassembled identically to an unsharded run;
//! * [`observe`] — [`SweepObs`], the shared observability sink (metrics
//!   registry, controller telemetry series, embedded timings) behind
//!   `figures --metrics`; strictly observational, never changes a result
//!   byte;
//! * [`fault`] — the sweep's fault-tolerance layer: typed
//!   [`TaskError`]/[`TaskOutcome`], the [`FaultPolicy`] (panic isolation,
//!   deterministic retry, watchdog deadlines, keep-going degradation) and
//!   the deterministic [`FaultInjector`] that makes those paths testable;
//! * [`journal`] — the kill-safe [`CheckpointJournal`]: completed task
//!   outcomes fsync'd through the shard codec, with truncation-tolerant
//!   [`JournalReplay`] so `--resume` skips finished work and merges
//!   byte-identical to an uninterrupted run;
//! * [`coord`] — the cross-host work-stealing layer: a [`Coordinator`]
//!   handing out task leases over a line-based wire protocol, worker
//!   clients with heartbeats and deterministic reconnect backoff, lease
//!   expiry + reassignment for dead workers, journal-backed coordinator
//!   crash recovery, and a deterministic wire-fault injector — all under
//!   the invariant that a coordinated sweep merges byte-identical to a
//!   direct run.

pub mod cache;
pub mod controller;
pub mod coord;
pub mod cost;
pub mod driver;
pub mod fault;
pub mod gate;
pub mod journal;
pub mod observe;
pub mod policy;
pub mod scenario;
pub mod scheduler;
pub mod shard;
pub mod sweep;

pub use cache::{MeasurementCache, MeasurementKey, MeasurementKind};
pub use controller::{ControllerConfig, Decision, MplController, Reference, Targets};
pub use coord::{
    call, run_worker, serve_line, CoordConfig, CoordServer, Coordinator, FaultyTransport,
    LocalTransport, Request, Response, TcpTransport, Transport, WireFault, WireFaultInjector,
    WorkerConfig, WorkerError, WorkerSummary,
};
pub use cost::{CellTiming, CostModel};
pub use driver::{
    combine_subruns, ChaosOutcome, ControllerOutcome, Driver, PolicyKind, PriorityOutcome,
    RunConfig, RunResult,
};
pub use fault::{
    relock, FaultInjector, FaultPolicy, InjectedFault, TaskError, TaskFailure, TaskOutcome,
};
pub use gate::MplGate;
pub use journal::{CheckpointJournal, JournalReplay};
pub use observe::SweepObs;
pub use policy::{Fifo, PriorityFifo, QueuePolicy, QueuedTxn, Sjf, WeightedFair};
pub use scenario::{
    ArrivalSpec, ExecSpec, MplSpec, Scenario, ScenarioOutcome, UnitCost, UnitOutcome,
};
pub use scheduler::ExternalScheduler;
pub use shard::{DecodeError, ShardResult};
pub use sweep::{BalanceMode, FoldStats, ScenarioResult, SweepExecutor, SweepPlan};
