//! Kill-safe checkpoint journal for sweep execution.
//!
//! A [`CheckpointJournal`] appends every completed task outcome to a
//! plain-text file the moment it finishes, reusing the bit-exact shard
//! codec ([`encode_outcome`](crate::shard::encode_outcome) /
//! [`encode_failure`](crate::shard::encode_failure)) so a journaled
//! outcome replays byte-identically. Three properties make it safe to
//! `SIGKILL` the writer at any instant:
//!
//! * **Atomic-enough appends.** Each record is one `write(2)` of
//!   `<record> ;\n` followed by `fdatasync`. A kill can only truncate the
//!   *final* line; everything before it is durable and complete.
//! * **Completeness markers.** Every durable line ends with the ` ;`
//!   marker. This matters because a *truncated* record could otherwise
//!   still parse: floats travel as hex bit patterns, and a hex token cut
//!   short is a different — valid-looking — number. The marker turns any
//!   truncation into a detectable partial line.
//! * **Truncation-tolerant replay.** [`JournalReplay::decode`] drops a
//!   marker-less line when it is the journal's final line (the classic
//!   kill point) or immediately precedes the header a resuming process
//!   appended; a marker-less line anywhere else is real corruption and a
//!   typed [`DecodeError`]. Duplicate records (a task journaled by both
//!   the killed run and its resume) keep the first copy — both are
//!   bit-identical by the determinism contract, so this is only
//!   bookkeeping.
//!
//! The journal is sweep-aware: [`CheckpointJournal::begin_sweep`] writes
//! a header carrying the plan fingerprint, and replay groups records per
//! fingerprint — one journal file safely accumulates the several plans a
//! `figures` invocation runs (one per experiment).

use crate::fault::{relock, TaskOutcome};
use crate::shard::{decode_failure, decode_outcome, encode_failure, encode_outcome, DecodeError};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Marker suffix proving a journal line was written in full.
const MARKER: &str = " ;";

/// An append-only, fsync'd journal of completed task outcomes.
#[derive(Debug)]
pub struct CheckpointJournal {
    file: Mutex<File>,
    path: PathBuf,
}

impl CheckpointJournal {
    /// Start a fresh journal at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<CheckpointJournal> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(CheckpointJournal {
            file: Mutex::new(file),
            path,
        })
    }

    /// Open `path` for appending (creating it if absent) — the resume
    /// path. If a killed writer left a partial final line without a
    /// newline, a newline is appended first so the partial bytes stay
    /// isolated on their own (marker-less, hence ignored) line instead
    /// of fusing with the next record.
    pub fn append(path: impl AsRef<Path>) -> io::Result<CheckpointJournal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            let mut reader = File::open(&path)?;
            reader.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            reader.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
                file.sync_data()?;
            }
        }
        Ok(CheckpointJournal {
            file: Mutex::new(file),
            path,
        })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Write the sweep header: subsequent records belong to the plan
    /// with this fingerprint.
    pub fn begin_sweep(&self, plan_fingerprint: u64, task_count: usize) -> io::Result<()> {
        self.write_line(&format!(
            "xsched-journal v1 plan={plan_fingerprint:016x} tasks={task_count}"
        ))
    }

    /// Durably record one completed task (measured or failed). Called
    /// from worker threads; the internal lock serializes appends.
    pub fn record(&self, task: usize, outcome: &TaskOutcome) -> io::Result<()> {
        let line = match outcome {
            TaskOutcome::Ok(o) => format!("{task} {}", encode_outcome(o)),
            TaskOutcome::Failed(f) => format!("failed {task} {}", encode_failure(f)),
        };
        self.write_line(&line)
    }

    fn write_line(&self, line: &str) -> io::Result<()> {
        let mut file = relock(&self.file);
        file.write_all(format!("{line}{MARKER}\n").as_bytes())?;
        file.sync_data()
    }
}

/// The decoded contents of a checkpoint journal: per-plan-fingerprint
/// maps from global task index to the journaled [`TaskOutcome`].
#[derive(Debug, Default)]
pub struct JournalReplay {
    sweeps: HashMap<u64, HashMap<usize, TaskOutcome>>,
    dropped_partial: usize,
}

impl JournalReplay {
    /// Load and decode the journal at `path`. A missing file is an empty
    /// replay (resuming against a journal nothing was written to yet).
    pub fn load(path: impl AsRef<Path>) -> Result<JournalReplay, DecodeError> {
        let text = match std::fs::read_to_string(path.as_ref()) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalReplay::default()),
            Err(e) => {
                return Err(DecodeError {
                    line: 0,
                    context: path.as_ref().display().to_string(),
                    msg: format!("cannot read journal: {e}"),
                })
            }
        };
        Self::decode(&text)
    }

    /// Decode journal text, tolerating the partial final line a
    /// `SIGKILL` can leave behind (see the module docs for exactly when
    /// a marker-less line is tolerated vs. typed as corruption).
    pub fn decode(text: &str) -> Result<JournalReplay, DecodeError> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        let mut sweeps: HashMap<u64, HashMap<usize, TaskOutcome>> = HashMap::new();
        let mut current: Option<u64> = None;
        let mut dropped_partial = 0usize;
        for (pos, &(no, raw)) in lines.iter().enumerate() {
            let fail = |msg: String| DecodeError::at(no, raw, msg);
            let Some(line) = raw.strip_suffix(MARKER) else {
                let next_is_header = lines
                    .get(pos + 1)
                    .is_none_or(|(_, l)| l.starts_with("xsched-journal "));
                if next_is_header {
                    dropped_partial += 1;
                    continue;
                }
                return Err(fail(
                    "record is missing its completeness marker".to_string(),
                ));
            };
            if let Some(rest) = line.strip_prefix("xsched-journal ") {
                let mut fields = rest.split_whitespace();
                if fields.next() != Some("v1") {
                    return Err(fail(format!("not a v1 journal header: `{line}`")));
                }
                let plan_tok = fields
                    .next()
                    .and_then(|tok| tok.strip_prefix("plan="))
                    .ok_or_else(|| fail("journal header missing `plan=`".to_string()))?;
                let fp = u64::from_str_radix(plan_tok, 16)
                    .map_err(|e| fail(format!("bad plan fingerprint: {e}")))?;
                current = Some(fp);
                continue;
            }
            let fp = current
                .ok_or_else(|| fail("record appears before any journal header".to_string()))?;
            let (t, outcome) = if let Some(rest) = line.strip_prefix("failed ") {
                let (idx, spec) = rest
                    .split_once(' ')
                    .ok_or_else(|| fail("malformed failed record".to_string()))?;
                let t: usize = idx
                    .parse()
                    .map_err(|e| fail(format!("bad task index: {e}")))?;
                (t, TaskOutcome::Failed(decode_failure(spec).map_err(&fail)?))
            } else {
                let (idx, rest) = line
                    .split_once(' ')
                    .ok_or_else(|| fail("malformed journal record".to_string()))?;
                let t: usize = idx
                    .parse()
                    .map_err(|e| fail(format!("bad task index: {e}")))?;
                (t, TaskOutcome::Ok(decode_outcome(rest).map_err(&fail)?))
            };
            sweeps.entry(fp).or_default().entry(t).or_insert(outcome);
        }
        Ok(JournalReplay {
            sweeps,
            dropped_partial,
        })
    }

    /// The journaled outcome for `task` of the plan with this
    /// fingerprint, if any.
    pub fn outcome(&self, plan_fingerprint: u64, task: usize) -> Option<&TaskOutcome> {
        self.sweeps.get(&plan_fingerprint)?.get(&task)
    }

    /// How many tasks are journaled for this plan fingerprint.
    pub fn tasks_for(&self, plan_fingerprint: u64) -> usize {
        self.sweeps.get(&plan_fingerprint).map_or(0, HashMap::len)
    }

    /// True when the journal held no complete records at all.
    pub fn is_empty(&self) -> bool {
        self.sweeps.values().all(HashMap::is_empty)
    }

    /// How many partial (truncated) lines replay tolerated and dropped.
    pub fn dropped_partial(&self) -> usize {
        self.dropped_partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ChaosOutcome;
    use crate::fault::{TaskError, TaskFailure};
    use crate::scenario::ScenarioOutcome;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xsched-journal-{}-{name}", std::process::id()));
        p
    }

    fn chaos(final_mpl: u32) -> ScenarioOutcome {
        ScenarioOutcome::Chaos(ChaosOutcome {
            final_mpl,
            peak_mpl: final_mpl + 3,
            overshoot: 2,
            reaction_windows: 5,
            post_onset_windows: 9,
            converged: true,
            iterations: 11,
            discarded_windows: 0,
            reference_tput: 123.456,
        })
    }

    fn bits(o: &TaskOutcome) -> String {
        match o {
            TaskOutcome::Ok(o) => encode_outcome(o),
            TaskOutcome::Failed(f) => format!("failed {}", encode_failure(f)),
        }
    }

    #[test]
    fn record_and_replay_round_trip() {
        let path = tmp("roundtrip");
        let journal = CheckpointJournal::create(&path).unwrap();
        journal.begin_sweep(0xabcd, 3).unwrap();
        let ok = TaskOutcome::Ok(chaos(7));
        let failed = TaskOutcome::Failed(TaskFailure {
            error: TaskError::Panic("kaboom with spaces".to_string()),
            attempts: 2,
        });
        journal.record(0, &ok).unwrap();
        journal.record(2, &failed).unwrap();
        let replay = JournalReplay::load(&path).unwrap();
        assert_eq!(replay.tasks_for(0xabcd), 2);
        assert_eq!(bits(replay.outcome(0xabcd, 0).unwrap()), bits(&ok));
        assert_eq!(bits(replay.outcome(0xabcd, 2).unwrap()), bits(&failed));
        assert!(replay.outcome(0xabcd, 1).is_none());
        assert!(replay.outcome(0x9999, 0).is_none());
        assert_eq!(replay.dropped_partial(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_is_an_empty_replay() {
        let replay = JournalReplay::load(tmp("never-created")).unwrap();
        assert!(replay.is_empty());
        assert_eq!(replay.tasks_for(1), 0);
    }

    #[test]
    fn every_truncation_point_replays_a_durable_prefix() {
        let path = tmp("truncate");
        let journal = CheckpointJournal::create(&path).unwrap();
        journal.begin_sweep(0xfeed, 4).unwrap();
        for t in 0..4 {
            journal
                .record(t, &TaskOutcome::Ok(chaos(t as u32 + 1)))
                .unwrap();
        }
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for cut in 0..=full.len() {
            let replay = JournalReplay::decode(&full[..cut]).unwrap();
            // Every fully-written record before the cut is recovered;
            // the cut line itself never yields a bogus record.
            let complete_records = full[..cut]
                .lines()
                .filter(|l| l.ends_with(MARKER) && !l.starts_with("xsched-journal "))
                .count();
            assert_eq!(replay.tasks_for(0xfeed), complete_records, "cut={cut}");
            assert!(replay.dropped_partial() <= 1, "cut={cut}");
        }
    }

    #[test]
    fn append_after_kill_isolates_the_partial_line() {
        let path = tmp("kill-resume");
        let journal = CheckpointJournal::create(&path).unwrap();
        journal.begin_sweep(0xbeef, 3).unwrap();
        journal.record(0, &TaskOutcome::Ok(chaos(1))).unwrap();
        journal.record(1, &TaskOutcome::Ok(chaos(2))).unwrap();
        drop(journal);
        // Simulate a SIGKILL mid-write: chop the file mid-record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 9]).unwrap();
        // Resume: append mode isolates the partial line, writes a fresh
        // header, and re-records the task the kill destroyed.
        let resumed = CheckpointJournal::append(&path).unwrap();
        resumed.begin_sweep(0xbeef, 3).unwrap();
        resumed.record(1, &TaskOutcome::Ok(chaos(2))).unwrap();
        resumed.record(2, &TaskOutcome::Ok(chaos(3))).unwrap();
        let replay = JournalReplay::load(&path).unwrap();
        assert_eq!(replay.tasks_for(0xbeef), 3);
        assert_eq!(replay.dropped_partial(), 1);
        assert_eq!(
            bits(replay.outcome(0xbeef, 1).unwrap()),
            bits(&TaskOutcome::Ok(chaos(2)))
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_records_keep_the_first_copy() {
        let mut text = String::new();
        text.push_str("xsched-journal v1 plan=000000000000002a tasks=2 ;\n");
        text.push_str(&format!("0 {} ;\n", encode_outcome(&chaos(5))));
        text.push_str(&format!("0 {} ;\n", encode_outcome(&chaos(9))));
        let replay = JournalReplay::decode(&text).unwrap();
        assert_eq!(replay.tasks_for(0x2a), 1);
        assert_eq!(
            bits(replay.outcome(0x2a, 0).unwrap()),
            bits(&TaskOutcome::Ok(chaos(5)))
        );
    }

    #[test]
    fn marker_less_line_mid_journal_is_typed_corruption() {
        let mut text = String::new();
        text.push_str("xsched-journal v1 plan=0000000000000001 tasks=2 ;\n");
        text.push_str("0 X 1 2 3 4 5 1 6 7\n"); // no marker, not final, not pre-header
        text.push_str(&format!("1 {} ;\n", encode_outcome(&chaos(5))));
        let err = JournalReplay::decode(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("completeness marker"), "{err}");
    }

    #[test]
    fn records_before_a_header_are_rejected() {
        let text = format!("0 {} ;\n", encode_outcome(&chaos(5)));
        let err = JournalReplay::decode(&text).unwrap_err();
        assert!(err.msg.contains("before any journal header"), "{err}");
    }
}
