//! Property-based tests for the analytic solvers.

use proptest::prelude::*;
use xsched_queueing::{ctmc, ClosedNetwork, FlexServer, Mat, H2};

proptest! {
    /// LU solve actually solves: A·x = b reproduces b.
    #[test]
    fn lu_solves(
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Diagonally dominant matrix => well conditioned and nonsingular.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = next();
                    a[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            a[(i, i)] = row_sum + 1.0;
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.solve(&b);
        let back = a.mul_vec(&x);
        for (g, w) in back.iter().zip(&b) {
            prop_assert!((g - w).abs() < 1e-8, "residual too large");
        }
        // And the inverse round-trips.
        let err = a.mul(&a.inverse()).sub(&Mat::identity(n)).max_abs();
        prop_assert!(err < 1e-8);
    }

    /// MVA response times satisfy Little's law at every population:
    /// X(n) · R(n) = n (zero think time).
    #[test]
    fn mva_littles_law(
        demands in proptest::collection::vec(0.01f64..2.0, 1..6),
        n in 1u32..40,
    ) {
        let net = ClosedNetwork::new(demands);
        for s in net.solve_series(n) {
            prop_assert!((s.throughput * s.response_time - s.population as f64).abs() < 1e-9);
            for u in &s.utilizations {
                prop_assert!(*u <= 1.0 + 1e-9, "utilization above 1");
            }
        }
    }

    /// The matrix-geometric and truncated-chain solvers agree for any
    /// stable parameterization.
    #[test]
    fn qbd_agrees_with_truncation(
        c2 in 1.0f64..10.0,
        rho in 0.2f64..0.8,
        mpl in 1u32..8,
    ) {
        let h2 = H2::fit(0.05, c2);
        let lambda = rho / 0.05;
        let fs = FlexServer::new(lambda, h2, mpl);
        let a = fs.solve().mean_response_time;
        let b = ctmc::solve_truncated(&fs, 500).mean_response_time;
        prop_assert!((a - b).abs() / b < 1e-4, "qbd {a} vs truncated {b}");
    }

    /// Response time decreases (weakly) in the MPL — holding back work
    /// never helps the mean when sizes are H2 (FIFO end is worst).
    #[test]
    fn flex_monotone_in_mpl(c2 in 1.0f64..10.0, rho in 0.2f64..0.8) {
        let h2 = H2::fit(0.05, c2);
        let lambda = rho / 0.05;
        let mut prev = f64::INFINITY;
        for mpl in [1u32, 2, 4, 8, 16] {
            let t = FlexServer::new(lambda, h2, mpl).mean_response_time();
            prop_assert!(t <= prev * (1.0 + 1e-9), "not monotone at MPL {mpl}");
            prev = t;
        }
    }
}
