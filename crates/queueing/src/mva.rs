//! Exact Mean Value Analysis of closed product-form networks.
//!
//! The paper's throughput model (§4.1, Fig. 6) represents the DBMS
//! internals as a closed network with one exponential station per hardware
//! resource (CPU, each disk), service rates proportional to the resource's
//! utilization in the MPL-unlimited system, and the MPL as the fixed
//! customer population. Only *relative* throughput matters, so the absolute
//! demand scale is irrelevant — exactly the observation that makes the
//! simple model sufficient.
//!
//! The classic MVA recursion (Reiser & Lavenberg) gives exact results for
//! load-independent FCFS/PS stations plus an optional delay (think-time)
//! station:
//!
//! ```text
//! R_k(n) = D_k · (1 + Q_k(n-1))
//! X(n)   = n / (Z + Σ_k R_k(n))
//! Q_k(n) = X(n) · R_k(n)
//! ```

use serde::{Deserialize, Serialize};

/// A closed single-class queueing network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedNetwork {
    /// Per-station total service demand of one job (visit ratio × mean
    /// service time), in seconds.
    demands: Vec<f64>,
    /// Think time at the delay station (0 for a pure queueing network).
    think_time: f64,
}

/// Solved performance metrics at a given population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MvaSolution {
    /// Population the network was solved for.
    pub population: u32,
    /// System throughput X(n) in jobs/second.
    pub throughput: f64,
    /// Mean response time per job across all queueing stations (excludes
    /// think time), R(n) in seconds.
    pub response_time: f64,
    /// Mean number of jobs at each queueing station.
    pub queue_lengths: Vec<f64>,
    /// Utilization of each station, X(n) · D_k.
    pub utilizations: Vec<f64>,
}

impl ClosedNetwork {
    /// Network of queueing stations with the given per-job demands
    /// (seconds), no think time.
    pub fn new(demands: Vec<f64>) -> ClosedNetwork {
        assert!(!demands.is_empty(), "need at least one station");
        assert!(
            demands.iter().all(|d| *d >= 0.0),
            "demands must be nonnegative"
        );
        assert!(
            demands.iter().any(|d| *d > 0.0),
            "at least one demand must be positive"
        );
        ClosedNetwork {
            demands,
            think_time: 0.0,
        }
    }

    /// Add a delay (infinite-server) station with the given think time.
    pub fn with_think_time(mut self, z: f64) -> ClosedNetwork {
        assert!(z >= 0.0);
        self.think_time = z;
        self
    }

    /// A balanced network: `stations` equal stations sharing `total_demand`
    /// seconds of per-job demand (the "evenly striped disks" worst case of
    /// §4.1).
    pub fn balanced(stations: usize, total_demand: f64) -> ClosedNetwork {
        assert!(stations > 0);
        ClosedNetwork::new(vec![total_demand / stations as f64; stations])
    }

    /// Station demands.
    pub fn demands(&self) -> &[f64] {
        &self.demands
    }

    /// Asymptotic maximum throughput `1 / max_k D_k` (jobs/second).
    pub fn max_throughput(&self) -> f64 {
        let dmax = self.demands.iter().cloned().fold(0.0, f64::max);
        1.0 / dmax
    }

    /// Solve for population `n` (exact MVA; O(n·K)).
    pub fn solve(&self, n: u32) -> MvaSolution {
        self.solve_series(n)
            .pop()
            .expect("solve_series returns n entries for n >= 1")
    }

    /// Solve for every population `1..=n` in one recursion pass.
    pub fn solve_series(&self, n: u32) -> Vec<MvaSolution> {
        assert!(n >= 1, "population must be at least 1");
        let k = self.demands.len();
        let mut q = vec![0.0; k];
        let mut out = Vec::with_capacity(n as usize);
        for pop in 1..=n {
            let mut r = vec![0.0; k];
            let mut rtot = 0.0;
            for i in 0..k {
                r[i] = self.demands[i] * (1.0 + q[i]);
                rtot += r[i];
            }
            let x = pop as f64 / (self.think_time + rtot);
            for i in 0..k {
                q[i] = x * r[i];
            }
            out.push(MvaSolution {
                population: pop,
                throughput: x,
                response_time: rtot,
                queue_lengths: q.clone(),
                utilizations: self.demands.iter().map(|d| x * d).collect(),
            });
        }
        out
    }

    /// Throughput at population `n` (convenience).
    pub fn throughput(&self, n: u32) -> f64 {
        self.solve(n).throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_station_saturates_immediately() {
        // One queueing station, no think time: X(n) = 1/D for every n >= 1.
        let net = ClosedNetwork::new(vec![0.25]);
        for n in 1..=10 {
            assert!((net.throughput(n) - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn balanced_network_closed_form() {
        // K equal stations with demand D each: X(n) = n / (D (n + K - 1)).
        let d = 0.2;
        let k = 4;
        let net = ClosedNetwork::new(vec![d; k]);
        for n in 1..=20u32 {
            let want = n as f64 / (d * (n as f64 + k as f64 - 1.0));
            let got = net.throughput(n);
            assert!((got - want).abs() < 1e-10, "n={n}: got {got} want {want}");
        }
    }

    #[test]
    fn queue_lengths_sum_to_population() {
        let net = ClosedNetwork::new(vec![0.1, 0.3, 0.05]);
        for n in [1u32, 5, 17] {
            let sol = net.solve(n);
            let total: f64 = sol.queue_lengths.iter().sum();
            assert!(
                (total - n as f64).abs() < 1e-9,
                "population {n}: ΣQ = {total}"
            );
        }
    }

    #[test]
    fn think_time_conservation_includes_delay_station() {
        let net = ClosedNetwork::new(vec![0.1, 0.1]).with_think_time(1.0);
        let sol = net.solve(8);
        let queued: f64 = sol.queue_lengths.iter().sum();
        let thinking = sol.throughput * 1.0; // Little's law at the delay station
        assert!(((queued + thinking) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_monotone_and_bounded() {
        let net = ClosedNetwork::new(vec![0.05, 0.2, 0.1]);
        let series = net.solve_series(50);
        let xmax = net.max_throughput();
        let mut prev = 0.0;
        for s in &series {
            assert!(s.throughput >= prev - 1e-12, "throughput must not decrease");
            assert!(s.throughput <= xmax + 1e-9, "throughput exceeds bound");
            prev = s.throughput;
        }
        // With a long series the bottleneck bound is approached.
        assert!(series.last().unwrap().throughput > 0.97 * xmax);
    }

    #[test]
    fn utilization_of_bottleneck_tends_to_one() {
        let net = ClosedNetwork::new(vec![0.3, 0.1]);
        let sol = net.solve(40);
        assert!(sol.utilizations[0] > 0.97);
        assert!(sol.utilizations[0] <= 1.0 + 1e-9);
        assert!(sol.utilizations[1] < 0.5);
    }

    #[test]
    fn response_time_grows_with_population() {
        let net = ClosedNetwork::balanced(4, 1.0);
        let r1 = net.solve(1).response_time;
        let r20 = net.solve(20).response_time;
        assert!((r1 - 1.0).abs() < 1e-12, "no queueing with one job");
        assert!(r20 > 4.0, "heavy queueing with 20 jobs: {r20}");
    }

    #[test]
    fn more_disks_need_higher_population_for_same_fraction() {
        // The Fig. 7 trend: the MPL needed for 95% of max throughput grows
        // with the number of (balanced) disks.
        let need = |disks: usize| {
            let net = ClosedNetwork::balanced(disks, 1.0);
            let xmax = net.max_throughput();
            net.solve_series(400)
                .iter()
                .find(|s| s.throughput >= 0.95 * xmax)
                .unwrap()
                .population
        };
        let n1 = need(1);
        let n4 = need(4);
        let n8 = need(8);
        assert!(n1 < n4 && n4 < n8, "{n1} {n4} {n8}");
    }

    #[test]
    #[should_panic(expected = "at least one demand")]
    fn all_zero_demands_rejected() {
        ClosedNetwork::new(vec![0.0, 0.0]);
    }
}
