#![warn(missing_docs)]
//! Queueing-theoretic models from Schroeder et al. (ICDE 2006), §4.
//!
//! Two models drive the paper's MPL controller:
//!
//! * **Throughput vs. MPL** (§4.1, Figs. 6–7): the DBMS internals are
//!   modelled as a closed product-form network of exponential stations (one
//!   per CPU/disk, rates proportional to their utilization in the
//!   MPL-unlimited system). We solve it with exact Mean Value Analysis
//!   ([`mva`]) and extract the lowest MPL that achieves a target fraction of
//!   the maximum throughput ([`recommend`]).
//!
//! * **Response time vs. MPL** (§4.2, Figs. 8–10): external scheduling is an
//!   unbounded FIFO queue feeding a processor-sharing server that at most
//!   MPL jobs may share — the *flexible multiserver queue*. With 2-phase
//!   hyperexponential job sizes ([`h2`]) the system is a level-independent
//!   QBD process which we solve with the matrix-geometric method ([`flex`]),
//!   cross-checked by an exact block-tridiagonal solve of the truncated
//!   chain ([`ctmc`]).
//!
//! [`mg1`] provides the M/M/1, M/G/1 (Pollaczek–Khinchine) and M/G/1-PS
//! closed forms used as sanity anchors and as the PS reference line of
//! Fig. 10.

pub mod ctmc;
pub mod flex;
pub mod h2;
pub mod linalg;
pub mod mg1;
pub mod mva;
pub mod recommend;

pub use flex::FlexServer;
pub use h2::H2;
pub use linalg::Mat;
pub use mva::ClosedNetwork;
pub use recommend::{min_mpl_for_response_time, min_mpl_for_throughput, ThroughputModel};
