//! MPL recommendation — the queueing-theoretic "jump start" of §4.3.
//!
//! The controller needs a good initial MPL. Two bounds are combined:
//!
//! * [`min_mpl_for_throughput`] — lowest population at which the closed
//!   resource model ([`crate::mva`]) reaches a target fraction of its
//!   asymptotic maximum throughput (the squares/circles of Fig. 7);
//! * [`min_mpl_for_response_time`] — lowest MPL at which the flexible
//!   multiserver queue ([`crate::flex`]) is within a given slack of the
//!   pure-PS mean response time (the flattening points of Fig. 10).
//!
//! The recommended starting MPL is the maximum of the two: it must be high
//! enough for *both* throughput and response time.

use crate::flex::FlexServer;
use crate::h2::H2;
use crate::mg1;
use crate::mva::ClosedNetwork;
use serde::{Deserialize, Serialize};

/// The paper's throughput model: one exponential station per utilized
/// hardware resource, service rates proportional to the utilizations
/// observed in the MPL-unlimited system (§4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputModel {
    network: ClosedNetwork,
}

impl ThroughputModel {
    /// Build from per-resource utilizations of the unlimited system.
    ///
    /// Only relative values matter; resources with (near-)zero utilization
    /// are dropped — they never constrain the MPL.
    pub fn from_utilizations(utilizations: &[f64]) -> ThroughputModel {
        let demands: Vec<f64> = utilizations.iter().copied().filter(|u| *u > 1e-6).collect();
        assert!(
            !demands.is_empty(),
            "at least one resource must be utilized"
        );
        ThroughputModel {
            network: ClosedNetwork::new(demands),
        }
    }

    /// The worst-case balanced model used for the Fig. 7 analysis:
    /// `resources` equally utilized stations.
    pub fn balanced(resources: usize) -> ThroughputModel {
        ThroughputModel {
            network: ClosedNetwork::balanced(resources, 1.0),
        }
    }

    /// Relative throughput (fraction of the asymptotic maximum) at
    /// population `n`.
    pub fn relative_throughput(&self, n: u32) -> f64 {
        self.network.throughput(n) / self.network.max_throughput()
    }

    /// The underlying closed network.
    pub fn network(&self) -> &ClosedNetwork {
        &self.network
    }
}

/// Lowest MPL whose predicted throughput is at least `fraction` of the
/// maximum (e.g. `fraction = 0.95` for a 5% loss budget).
pub fn min_mpl_for_throughput(model: &ThroughputModel, fraction: f64) -> u32 {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
    let series = model.network.solve_series(100_000.min(guess_cap(model)));
    let xmax = model.network.max_throughput();
    for s in &series {
        if s.throughput >= fraction * xmax {
            return s.population;
        }
    }
    series.last().map(|s| s.population).unwrap_or(1)
}

fn guess_cap(model: &ThroughputModel) -> u32 {
    // The MPL for 99.9% of max throughput is O(K / (1 - fraction)); a cap of
    // 1000·K is far beyond anything the controller will use.
    (model.network.demands().len() as u32)
        .saturating_mul(1000)
        .max(1000)
}

/// Lowest MPL at which the flexible multiserver queue's mean response time
/// is within `slack` (e.g. 0.05 for 5%) of the pure-PS response time, given
/// job-size mean/C² and the arrival rate.
///
/// Returns `max_mpl` if even that does not reach the target (callers treat
/// that as "effectively unlimited").
pub fn min_mpl_for_response_time(job_size: H2, lambda: f64, slack: f64, max_mpl: u32) -> u32 {
    assert!(slack >= 0.0);
    let ps = mg1::mg1_ps_response_time(lambda, job_size.mean());
    let target = ps * (1.0 + slack);
    // E[T](mpl) is monotone nonincreasing in MPL for H2 job sizes, so a
    // linear scan with early exit is both simple and robust; each solve is
    // cheap at the small MPLs that matter.
    for mpl in 1..=max_mpl {
        let t = FlexServer::new(lambda, job_size, mpl).mean_response_time();
        if t <= target {
            return mpl;
        }
    }
    max_mpl
}

/// Combined jump-start: the MPL must satisfy both the throughput and the
/// response-time constraint, so take the maximum of the two bounds.
pub fn jumpstart_mpl(
    model: &ThroughputModel,
    tput_fraction: f64,
    job_size: H2,
    lambda: f64,
    rt_slack: f64,
    max_mpl: u32,
) -> u32 {
    let a = min_mpl_for_throughput(model, tput_fraction);
    let b = min_mpl_for_response_time(job_size, lambda, rt_slack, max_mpl);
    a.max(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_resource_needs_mpl_one() {
        let m = ThroughputModel::from_utilizations(&[0.9]);
        assert_eq!(min_mpl_for_throughput(&m, 0.95), 1);
    }

    #[test]
    fn fig7_mpl_grows_linearly_with_disks() {
        // The circles (80%) and squares (95%) of Fig. 7 fall on straight
        // lines in the number of disks.
        let mpl80: Vec<u32> = [1usize, 2, 3, 4, 8, 16]
            .iter()
            .map(|&d| min_mpl_for_throughput(&ThroughputModel::balanced(d), 0.80))
            .collect();
        let mpl95: Vec<u32> = [1usize, 2, 3, 4, 8, 16]
            .iter()
            .map(|&d| min_mpl_for_throughput(&ThroughputModel::balanced(d), 0.95))
            .collect();
        // Monotone growth.
        assert!(mpl80.windows(2).all(|w| w[0] <= w[1]), "{mpl80:?}");
        assert!(mpl95.windows(2).all(|w| w[0] <= w[1]), "{mpl95:?}");
        // Exact linearity: for K balanced stations X(n)/Xmax = n/(n+K−1),
        // so the minimum n for fraction f is ceil(f(K−1)/(1−f)) — linear
        // in K. Check the computed points against it.
        for (&d, &got) in [1usize, 2, 3, 4, 8, 16].iter().zip(&mpl95) {
            let k = d as f64;
            let want = (0.95 * (k - 1.0) / 0.05).ceil().max(1.0) as u32;
            assert_eq!(got, want, "95% point for {d} disks");
        }
        // 95% needs more than 80%.
        for (a, b) in mpl80.iter().zip(&mpl95) {
            assert!(a <= b);
        }
    }

    #[test]
    fn zero_utilization_resources_are_ignored() {
        let a = ThroughputModel::from_utilizations(&[0.5, 0.0, 0.0]);
        let b = ThroughputModel::from_utilizations(&[0.5]);
        assert_eq!(
            min_mpl_for_throughput(&a, 0.95),
            min_mpl_for_throughput(&b, 0.95)
        );
    }

    #[test]
    fn low_c2_needs_small_mpl_high_c2_needs_large() {
        // §4.2's summary: C² ≈ 1 ⇒ MPL ≈ 1–5 suffices; C² ≈ 15 at load 0.9
        // needs ~30.
        let lambda_07 = 7.0;
        let lambda_09 = 9.0;
        let lo = H2::fit(0.1, 1.0);
        let hi = H2::fit(0.1, 15.0);
        let m_lo = min_mpl_for_response_time(lo, lambda_07, 0.05, 100);
        let m_hi_07 = min_mpl_for_response_time(hi, lambda_07, 0.05, 100);
        let m_hi_09 = min_mpl_for_response_time(hi, lambda_09, 0.05, 100);
        assert!(m_lo <= 2, "exponential workload: {m_lo}");
        assert!(m_hi_07 >= 5, "C2=15 at 0.7: {m_hi_07}");
        assert!(
            m_hi_09 > m_hi_07,
            "load 0.9 needs more: {m_hi_09} vs {m_hi_07}"
        );
    }

    #[test]
    fn jumpstart_takes_the_max() {
        let model = ThroughputModel::balanced(4);
        let h2 = H2::fit(0.1, 15.0);
        let j = jumpstart_mpl(&model, 0.95, h2, 7.0, 0.05, 100);
        assert!(j >= min_mpl_for_throughput(&model, 0.95));
        assert!(j >= min_mpl_for_response_time(h2, 7.0, 0.05, 100));
    }

    #[test]
    fn max_mpl_is_a_hard_cap() {
        let h2 = H2::fit(0.1, 15.0);
        assert_eq!(min_mpl_for_response_time(h2, 9.5, 0.0, 7), 7);
    }
}
