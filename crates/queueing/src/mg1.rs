//! Closed-form single-server results.
//!
//! These anchor the numerical solvers: the flexible multiserver queue must
//! collapse to M/G/1-FIFO at MPL = 1 and approach M/G/1-PS as MPL → ∞
//! (Fig. 10's "PS" reference line).

use crate::h2::H2;

/// Mean response time of an M/M/1 queue with arrival rate `lambda` and mean
/// service time `es`. Requires ρ = λ·`E[S]` < 1.
pub fn mm1_response_time(lambda: f64, es: f64) -> f64 {
    let rho = lambda * es;
    assert!(rho < 1.0, "unstable M/M/1 (rho = {rho})");
    es / (1.0 - rho)
}

/// Mean response time of an M/G/1 FIFO queue (Pollaczek–Khinchine):
/// `E[T] = E[S] + λ·E[S²] / (2 (1 − ρ))`.
pub fn mg1_fifo_response_time(lambda: f64, es: f64, es2: f64) -> f64 {
    let rho = lambda * es;
    assert!(rho < 1.0, "unstable M/G/1 (rho = {rho})");
    es + lambda * es2 / (2.0 * (1.0 - rho))
}

/// Mean response time of an M/G/1 processor-sharing queue:
/// `E[T] = E[S] / (1 − ρ)` — famously insensitive to the job-size
/// distribution beyond its mean.
pub fn mg1_ps_response_time(lambda: f64, es: f64) -> f64 {
    let rho = lambda * es;
    assert!(rho < 1.0, "unstable M/G/1-PS (rho = {rho})");
    es / (1.0 - rho)
}

/// Convenience: P-K mean response time for an H2 job-size distribution.
pub fn mg1_fifo_response_time_h2(lambda: f64, h2: &H2) -> f64 {
    mg1_fifo_response_time(lambda, h2.mean(), h2.second_moment())
}

/// Offered load ρ = λ·`E[S]`.
pub fn utilization(lambda: f64, es: f64) -> f64 {
    lambda * es
}

/// Erlang-C probability of waiting in an M/M/c queue with arrival rate
/// `lambda`, mean service time `es` and `c` servers.
pub fn erlang_c(lambda: f64, es: f64, c: u32) -> f64 {
    let a = lambda * es; // offered load in Erlangs
    let rho = a / c as f64;
    assert!(rho < 1.0, "unstable M/M/c (rho = {rho})");
    let c = c as f64;
    // P_wait = (a^c / c!) / ((1-rho) * sum_{k<c} a^k/k! + a^c/c!)
    let mut term = 1.0; // a^k / k!
    let mut sum = 0.0;
    let mut k = 0.0;
    while k < c {
        sum += term;
        k += 1.0;
        term *= a / k;
    }
    // term now holds a^c / c!
    let top = term / (1.0 - rho);
    top / (sum + top)
}

/// Mean response time of an M/M/c queue (Erlang-C):
/// `E[T] = E[S] + P_wait · E[S] / (c (1 − ρ))`.
pub fn mmc_response_time(lambda: f64, es: f64, c: u32) -> f64 {
    let rho = lambda * es / c as f64;
    assert!(rho < 1.0, "unstable M/M/c (rho = {rho})");
    es + erlang_c(lambda, es, c) * es / (c as f64 * (1.0 - rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_matches_pk_for_exponential() {
        let es = 0.1;
        let lambda = 7.0; // rho = 0.7
        let es2 = 2.0 * es * es;
        let pk = mg1_fifo_response_time(lambda, es, es2);
        let mm1 = mm1_response_time(lambda, es);
        assert!((pk - mm1).abs() < 1e-12, "pk {pk} mm1 {mm1}");
    }

    #[test]
    fn ps_equals_mm1_for_exponential_mean() {
        assert_eq!(mg1_ps_response_time(5.0, 0.1), mm1_response_time(5.0, 0.1));
    }

    #[test]
    fn fifo_suffers_from_variability_ps_does_not() {
        let lambda = 7.0;
        let lo = H2::fit(0.1, 1.0);
        let hi = H2::fit(0.1, 15.0);
        let fifo_lo = mg1_fifo_response_time_h2(lambda, &lo);
        let fifo_hi = mg1_fifo_response_time_h2(lambda, &hi);
        assert!(
            fifo_hi > 5.0 * fifo_lo,
            "P-K should grow with C2: {fifo_lo} vs {fifo_hi}"
        );
        // PS depends only on the mean.
        assert_eq!(
            mg1_ps_response_time(lambda, lo.mean()),
            mg1_ps_response_time(lambda, hi.mean())
        );
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn overload_panics() {
        mm1_response_time(11.0, 0.1);
    }

    #[test]
    fn erlang_c_single_server_is_rho() {
        // For c = 1, P_wait = rho.
        for &rho in &[0.3, 0.7, 0.9] {
            let p = erlang_c(rho / 0.1, 0.1, 1);
            assert!((p - rho).abs() < 1e-12, "rho {rho}: {p}");
        }
    }

    #[test]
    fn mmc_collapses_to_mm1() {
        let got = mmc_response_time(7.0, 0.1, 1);
        let want = mm1_response_time(7.0, 0.1);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn mmc_reference_value() {
        // Classic textbook case: c=2, a=1.2 (rho=0.6): P_wait = a^2/2 /
        // ((1-rho)(1+a) + a^2/2) = 0.72/(0.88+0.72)... computed: 0.45/ ...
        let p = erlang_c(12.0, 0.1, 2);
        // direct formula check
        let a: f64 = 1.2;
        let top = a * a / 2.0 / (1.0 - 0.6);
        let want = top / (1.0 + a + top);
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    #[test]
    fn more_servers_cut_waiting() {
        let t2 = mmc_response_time(12.0, 0.1, 2);
        let t4 = mmc_response_time(12.0, 0.1, 4);
        assert!(t4 < t2);
        assert!(t4 > 0.1, "cannot beat the bare service time");
    }

    #[test]
    fn utilization_is_lambda_es() {
        assert!((utilization(9.0, 0.1) - 0.9).abs() < 1e-12);
    }
}
