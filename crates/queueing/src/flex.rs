//! The *flexible multiserver queue* of Section 4.2.
//!
//! External scheduling with parameter MPL = m is an unbounded FIFO queue
//! feeding a processor-sharing server that at most `m` jobs may share
//! (Fig. 8). The paper represents it as an equivalent "flexible multiserver
//! queue" whose number of servers fluctuates between 1 and `m` while the
//! *sum* of service rates stays equal to the single PS server's rate
//! (Fig. 9). With Poisson(λ) arrivals and 2-phase hyperexponential job
//! sizes the state `(n, j)` — `n` jobs in system, `j` of the
//! `k = min(n, m)` in-service jobs in phase 1 — is a level-independent
//! quasi-birth-death (QBD) process for `n ≥ m`, which we solve exactly with
//! the matrix-geometric method (Neuts; Latouche & Ramaswami, both cited by
//! the paper).
//!
//! Transitions from `(n, j)`, with `k = min(n, m)` and server speed 1 split
//! equally (each in-service job is served at rate `1/k`, so a phase-`i` job
//! completes at rate `μᵢ/k`):
//!
//! * arrival, rate λ: if `n < m` the job enters service and draws its phase
//!   (`j+1` w.p. `p`, else `j`); if `n ≥ m` it waits (`j` unchanged);
//! * phase-1 completion, rate `j·μ₁/k`: if `n > m` the head-of-line waiter
//!   enters service and draws its phase (net `j` w.p. `p`, `j−1` w.p. `q`);
//!   otherwise `j−1`;
//! * phase-2 completion, rate `(k−j)·μ₂/k`: if `n > m`, net `j+1` w.p. `p`,
//!   `j` w.p. `q`; otherwise `j`.
//!
//! MPL = 1 makes this M/H2/1-FIFO (checked against Pollaczek–Khinchine);
//! MPL → ∞ makes it M/H2/∞-style PS (checked against `E[S]/(1−ρ)`); and
//! with C² = 1 it collapses to M/M/1 for *every* MPL (checked too).

use crate::h2::H2;
use crate::linalg::Mat;
use serde::{Deserialize, Serialize};

/// The flexible multiserver queue: Poisson arrivals, H2 job sizes, at most
/// `mpl` jobs sharing a unit-speed PS server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlexServer {
    /// Arrival rate λ (jobs/second).
    pub lambda: f64,
    /// Job-size distribution.
    pub job_size: H2,
    /// Multi-programming limit m ≥ 1.
    pub mpl: u32,
}

/// Steady-state solution of a [`FlexServer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlexSolution {
    /// Mean number of jobs in the system (in service + waiting).
    pub mean_jobs: f64,
    /// Mean number of jobs waiting in the external FIFO queue.
    pub mean_waiting: f64,
    /// Mean response time `E[T] = E[N]/λ` (Little's law), seconds.
    pub mean_response_time: f64,
    /// Probability that the system is empty.
    pub p_empty: f64,
    /// Probability that an arriving job must wait (n ≥ mpl).
    pub p_wait: f64,
    /// Offered load ρ = λ·`E[S]`.
    pub rho: f64,
    /// Iterations the R fixed point needed.
    pub r_iterations: u32,
}

impl FlexServer {
    /// Create a model; panics if unstable (ρ ≥ 1) or `mpl == 0`.
    pub fn new(lambda: f64, job_size: H2, mpl: u32) -> FlexServer {
        assert!(mpl >= 1, "MPL must be at least 1");
        let rho = lambda * job_size.mean();
        assert!(
            rho < 1.0,
            "unstable flexible multiserver queue (rho = {rho})"
        );
        FlexServer {
            lambda,
            job_size,
            mpl,
        }
    }

    /// Offered load ρ = λ·`E[S]`.
    pub fn rho(&self) -> f64 {
        self.lambda * self.job_size.mean()
    }

    /// The repeating QBD blocks `(A0, A1, A2)` for levels `n ≥ m+1`,
    /// each `(m+1) × (m+1)` over phase index `j = 0..=m`.
    pub fn repeating_blocks(&self) -> (Mat, Mat, Mat) {
        let m = self.mpl as usize;
        let (p, mu1, mu2) = (self.job_size.p, self.job_size.mu1, self.job_size.mu2);
        let q = 1.0 - p;
        let lam = self.lambda;
        let sz = m + 1;

        let a0 = Mat::identity(sz).scale(lam);
        let mut a1 = Mat::zeros(sz, sz);
        let mut a2 = Mat::zeros(sz, sz);
        for j in 0..=m {
            let c1 = j as f64 * mu1 / m as f64;
            let c2 = (m - j) as f64 * mu2 / m as f64;
            a1[(j, j)] = -(lam + c1 + c2);
            // Phase-1 completion; HOL waiter backfills and draws a phase.
            if c1 > 0.0 {
                a2[(j, j)] += c1 * p;
                a2[(j, j - 1)] += c1 * q;
            }
            // Phase-2 completion; backfill likewise.
            if c2 > 0.0 {
                if j < m {
                    a2[(j, j + 1)] += c2 * p;
                }
                a2[(j, j)] += c2 * q;
            }
        }
        (a0, a1, a2)
    }

    /// Up-transition block from boundary level `n < m` (size
    /// `(n+1) × (n+2)`): arrival enters service and draws its phase.
    pub(crate) fn boundary_up(&self, n: usize) -> Mat {
        let p = self.job_size.p;
        let lam = self.lambda;
        let mut up = Mat::zeros(n + 1, n + 2);
        for j in 0..=n {
            up[(j, j + 1)] += lam * p;
            up[(j, j)] += lam * (1.0 - p);
        }
        up
    }

    /// Down-transition block from level `1 ≤ n ≤ m` (size `(n+1) × n`):
    /// completion with no queue to backfill from.
    pub(crate) fn boundary_down(&self, n: usize) -> Mat {
        let (mu1, mu2) = (self.job_size.mu1, self.job_size.mu2);
        let mut down = Mat::zeros(n + 1, n);
        for j in 0..=n {
            let c1 = j as f64 * mu1 / n as f64;
            let c2 = (n - j) as f64 * mu2 / n as f64;
            if c1 > 0.0 {
                down[(j, j - 1)] += c1;
            }
            if c2 > 0.0 && j < n {
                down[(j, j)] += c2;
            }
        }
        down
    }

    /// Diagonal of the local block at boundary level `n ≤ m`.
    pub(crate) fn boundary_diag(&self, n: usize) -> Vec<f64> {
        let (mu1, mu2) = (self.job_size.mu1, self.job_size.mu2);
        let lam = self.lambda;
        (0..=n)
            .map(|j| {
                if n == 0 {
                    -lam
                } else {
                    let c1 = j as f64 * mu1 / n as f64;
                    let c2 = (n - j) as f64 * mu2 / n as f64;
                    -(lam + c1 + c2)
                }
            })
            .collect()
    }

    /// Compute the minimal nonnegative solution `R` of
    /// `A0 + R·A1 + R²·A2 = 0` by functional iteration
    /// `R ← −(A0 + R²·A2)·A1⁻¹` (A1 is diagonal, so the inverse is a
    /// column scaling). Returns `(R, iterations)`.
    pub fn solve_r(&self) -> (Mat, u32) {
        let (a0, a1, a2) = self.repeating_blocks();
        let sz = a0.rows();
        let inv_diag: Vec<f64> = (0..sz).map(|j| -1.0 / a1[(j, j)]).collect();
        let mut r = Mat::zeros(sz, sz);
        let mut iters = 0;
        loop {
            iters += 1;
            let r2a2 = r.mul(&r).mul(&a2);
            let mut next = a0.add(&r2a2);
            // next ← next · (−A1)⁻¹ (diagonal).
            for i in 0..sz {
                for j in 0..sz {
                    next[(i, j)] *= inv_diag[j];
                }
            }
            let delta = next.sub(&r).max_abs();
            r = next;
            if delta < 1e-13 || iters >= 500_000 {
                break;
            }
        }
        (r, iters)
    }

    /// Solve for the steady state and return the summary metrics.
    pub fn solve(&self) -> FlexSolution {
        let m = self.mpl as usize;
        let (r, r_iters) = self.solve_r();
        let sz = m + 1;
        let (_, a1, a2) = self.repeating_blocks();

        // Unknowns: x = [π_0, π_1, ..., π_m], total S entries.
        let offsets: Vec<usize> = (0..=m)
            .scan(0, |acc, n| {
                let o = *acc;
                *acc += n + 1;
                Some(o)
            })
            .collect();
        let s_total = offsets[m] + (m + 1);

        // Assemble the balance equations x·G = 0 where G[(row=from, col=to)]
        // holds generator rates between boundary states, with the level-m
        // column block folded through R (π_{m+1} = π_m R).
        let mut g = Mat::zeros(s_total, s_total);
        for n in 0..=m {
            let off = offsets[n];
            let diag = self.boundary_diag(n);
            for j in 0..=n {
                g[(off + j, off + j)] += diag[j];
            }
            if n < m {
                let up = self.boundary_up(n);
                let off_up = offsets[n + 1];
                for j in 0..=n {
                    for j2 in 0..=(n + 1) {
                        let v = up[(j, j2)];
                        if v != 0.0 {
                            g[(off + j, off_up + j2)] += v;
                        }
                    }
                }
            }
            if n >= 1 {
                let down = self.boundary_down(n);
                let off_dn = offsets[n - 1];
                for j in 0..=n {
                    for j2 in 0..n {
                        let v = down[(j, j2)];
                        if v != 0.0 {
                            g[(off + j, off_dn + j2)] += v;
                        }
                    }
                }
            }
        }
        // Level-m balance also receives π_{m+1}·A2 = π_m·R·A2, and the
        // diagonal of level m must be the repeating A1 diagonal (it already
        // is: boundary_diag(m) == diag(A1)).
        debug_assert!((0..sz).all(|j| { (self.boundary_diag(m)[j] - a1[(j, j)]).abs() < 1e-9 }));
        let ra2 = r.mul(&a2);
        let off_m = offsets[m];
        for j in 0..sz {
            for j2 in 0..sz {
                let v = ra2[(j, j2)];
                if v != 0.0 {
                    g[(off_m + j, off_m + j2)] += v;
                }
            }
        }

        // Normalization: Σ_{n<m} π_n·1 + π_m·(I−R)⁻¹·1 = 1.
        let i_minus_r = Mat::identity(sz).sub(&r);
        let inv_imr = i_minus_r.inverse();
        let ones = vec![1.0; sz];
        let tail_weight = inv_imr.mul_vec(&ones); // (I−R)⁻¹·1

        // Solve x·G = 0 with the last balance equation replaced by the
        // normalization. Columns of G are equations; replace column S−1.
        let mut a = Mat::zeros(s_total, s_total);
        for eq in 0..s_total {
            if eq == s_total - 1 {
                for st in 0..s_total {
                    let w = if st >= off_m {
                        tail_weight[st - off_m]
                    } else {
                        1.0
                    };
                    a[(eq, st)] = w;
                }
            } else {
                for st in 0..s_total {
                    a[(eq, st)] = g[(st, eq)];
                }
            }
        }
        let mut b = vec![0.0; s_total];
        b[s_total - 1] = 1.0;
        let x = a.solve(&b);

        // Moments. Tail sums: Σ_{k≥0} π_m R^k = π_m (I−R)⁻¹;
        // Σ_{k≥0} k·π_m R^k = π_m R (I−R)⁻².
        let pi_m = &x[off_m..off_m + sz];
        let inv2 = inv_imr.mul(&inv_imr);
        let r_inv2 = r.mul(&inv2);
        let tail_mass: f64 = pi_m
            .iter()
            .zip(inv_imr.mul_vec(&ones).iter())
            .map(|(p, w)| p * w)
            .sum();
        let tail_excess: f64 = pi_m
            .iter()
            .zip(r_inv2.mul_vec(&ones).iter())
            .map(|(p, w)| p * w)
            .sum();

        let mut mean_jobs = 0.0;
        let mut p_wait = 0.0;
        for n in 0..m {
            let lvl: f64 = x[offsets[n]..offsets[n] + n + 1].iter().sum();
            mean_jobs += n as f64 * lvl;
        }
        // Levels ≥ m: Σ (m+k) π_{m+k}·1 = m·tail_mass + tail_excess.
        mean_jobs += m as f64 * tail_mass + tail_excess;
        p_wait += tail_mass; // P(n ≥ m): arrival waits (PASTA).

        let mean_waiting = tail_excess; // Σ (n−m)⁺ π_n·1
        let p_empty = x[0];
        FlexSolution {
            mean_jobs,
            mean_waiting,
            mean_response_time: mean_jobs / self.lambda,
            p_empty,
            p_wait,
            rho: self.rho(),
            r_iterations: r_iters,
        }
    }

    /// Mean response time (convenience).
    pub fn mean_response_time(&self) -> f64 {
        self.solve().mean_response_time
    }

    /// Steady-state distribution of the number of jobs in the system,
    /// `P(N = n)` for `n = 0..len`, computed to at least `1 - epsilon`
    /// total mass (the geometric tail is rolled out level by level).
    pub fn queue_length_distribution(&self, epsilon: f64) -> Vec<f64> {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let m = self.mpl as usize;
        let (r, _) = self.solve_r();
        // Re-run the boundary solve to get the level vectors.
        let sol_levels = self.boundary_levels(&r);
        let mut out: Vec<f64> = sol_levels.iter().map(|v| v.iter().sum()).collect();
        // Roll the geometric tail: π_{m+k} = π_m R^k.
        let mut tail = sol_levels[m].clone();
        let mut covered: f64 = out.iter().sum();
        while covered < 1.0 - epsilon && out.len() < 100_000 {
            tail = r.vec_mul(&tail);
            let mass: f64 = tail.iter().sum();
            out.push(mass);
            covered += mass;
            if mass < 1e-18 {
                break;
            }
        }
        out
    }

    /// The boundary level vectors `π_0 .. π_m` (helper shared with the
    /// full solve; kept private to the crate).
    fn boundary_levels(&self, r: &Mat) -> Vec<Vec<f64>> {
        let m = self.mpl as usize;
        let sz = m + 1;
        let (_, _, a2) = self.repeating_blocks();
        let offsets: Vec<usize> = (0..=m)
            .scan(0, |acc, n| {
                let o = *acc;
                *acc += n + 1;
                Some(o)
            })
            .collect();
        let s_total = offsets[m] + (m + 1);
        let mut g = Mat::zeros(s_total, s_total);
        for n in 0..=m {
            let off = offsets[n];
            let diag = self.boundary_diag(n);
            for j in 0..=n {
                g[(off + j, off + j)] += diag[j];
            }
            if n < m {
                let up = self.boundary_up(n);
                let off_up = offsets[n + 1];
                for j in 0..=n {
                    for j2 in 0..=(n + 1) {
                        let v = up[(j, j2)];
                        if v != 0.0 {
                            g[(off + j, off_up + j2)] += v;
                        }
                    }
                }
            }
            if n >= 1 {
                let down = self.boundary_down(n);
                let off_dn = offsets[n - 1];
                for j in 0..=n {
                    for j2 in 0..n {
                        let v = down[(j, j2)];
                        if v != 0.0 {
                            g[(off + j, off_dn + j2)] += v;
                        }
                    }
                }
            }
        }
        let ra2 = r.mul(&a2);
        let off_m = offsets[m];
        for j in 0..sz {
            for j2 in 0..sz {
                let v = ra2[(j, j2)];
                if v != 0.0 {
                    g[(off_m + j, off_m + j2)] += v;
                }
            }
        }
        let i_minus_r = Mat::identity(sz).sub(r);
        let tail_weight = i_minus_r.inverse().mul_vec(&vec![1.0; sz]);
        let mut a = Mat::zeros(s_total, s_total);
        for eq in 0..s_total {
            if eq == s_total - 1 {
                for st in 0..s_total {
                    let w = if st >= off_m {
                        tail_weight[st - off_m]
                    } else {
                        1.0
                    };
                    a[(eq, st)] = w;
                }
            } else {
                for st in 0..s_total {
                    a[(eq, st)] = g[(st, eq)];
                }
            }
        }
        let mut b = vec![0.0; s_total];
        b[s_total - 1] = 1.0;
        let x = a.solve(&b);
        (0..=m)
            .map(|n| x[offsets[n]..offsets[n] + n + 1].to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1;

    #[test]
    fn mm1_for_any_mpl_when_c2_is_one() {
        // With exponential job sizes the flexible multiserver queue is an
        // M/M/1 regardless of the MPL: total service rate is constant.
        let h2 = H2::exponential(0.1);
        let lambda = 7.0;
        let want = mg1::mm1_response_time(lambda, 0.1);
        for mpl in [1u32, 2, 5, 20] {
            let fs = FlexServer::new(lambda, h2, mpl);
            let got = fs.mean_response_time();
            assert!(
                (got - want).abs() / want < 1e-6,
                "mpl={mpl}: got {got} want {want}"
            );
        }
    }

    #[test]
    fn mpl_one_is_mg1_fifo() {
        for &c2 in &[2.0, 5.0, 10.0] {
            for &rho in &[0.5, 0.7, 0.9] {
                let h2 = H2::fit(0.1, c2);
                let lambda = rho / 0.1;
                let fs = FlexServer::new(lambda, h2, 1);
                let got = fs.mean_response_time();
                let want = mg1::mg1_fifo_response_time_h2(lambda, &h2);
                assert!(
                    (got - want).abs() / want < 1e-6,
                    "c2={c2} rho={rho}: got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn large_mpl_approaches_ps() {
        let h2 = H2::fit(0.1, 10.0);
        let lambda = 7.0;
        let ps = mg1::mg1_ps_response_time(lambda, 0.1);
        let fs = FlexServer::new(lambda, h2, 80);
        let got = fs.mean_response_time();
        assert!(
            (got - ps).abs() / ps < 0.03,
            "MPL=80 should be within 3% of PS: got {got}, ps {ps}"
        );
    }

    #[test]
    fn response_time_decreases_with_mpl_for_high_c2() {
        let h2 = H2::fit(0.1, 15.0);
        let lambda = 7.0;
        let t1 = FlexServer::new(lambda, h2, 1).mean_response_time();
        let t5 = FlexServer::new(lambda, h2, 5).mean_response_time();
        let t20 = FlexServer::new(lambda, h2, 20).mean_response_time();
        assert!(t1 > t5 && t5 > t20, "{t1} {t5} {t20}");
    }

    #[test]
    fn higher_load_needs_higher_mpl() {
        // Fig. 10: at load 0.9 the curve flattens much later than at 0.7.
        let h2 = H2::fit(0.1, 15.0);
        let gap = |rho: f64, mpl: u32| {
            let lambda = rho / 0.1;
            let ps = mg1::mg1_ps_response_time(lambda, 0.1);
            (FlexServer::new(lambda, h2, mpl).mean_response_time() - ps) / ps
        };
        // With MPL = 10 the 0.7-load system is much closer to PS than the
        // 0.9-load system.
        assert!(gap(0.7, 10) < 0.5 * gap(0.9, 10));
    }

    #[test]
    fn solution_probabilities_are_sane() {
        let h2 = H2::fit(0.2, 5.0);
        let fs = FlexServer::new(3.5, h2, 4); // rho = 0.7
        let sol = fs.solve();
        assert!(sol.p_empty > 0.0 && sol.p_empty < 1.0);
        assert!(sol.p_wait > 0.0 && sol.p_wait < 1.0);
        assert!(sol.mean_waiting >= 0.0);
        assert!(sol.mean_jobs >= sol.mean_waiting);
        assert!((sol.rho - 0.7).abs() < 1e-12);
    }

    #[test]
    fn r_is_nonnegative_with_spectral_radius_below_one() {
        let h2 = H2::fit(0.1, 10.0);
        let fs = FlexServer::new(9.0, h2, 6); // rho = 0.9
        let (r, _) = fs.solve_r();
        for i in 0..r.rows() {
            for j in 0..r.cols() {
                assert!(r[(i, j)] >= -1e-12, "negative R entry at ({i},{j})");
            }
        }
        // Row sums of R^k must vanish: check spectral radius via power.
        let mut pow = r.clone();
        for _ in 0..200 {
            pow = pow.mul(&r);
        }
        assert!(pow.max_abs() < 1.0, "R^201 should be contracting");
    }

    #[test]
    fn queue_length_distribution_normalizes_and_matches_moments() {
        let h2 = H2::fit(0.1, 5.0);
        let fs = FlexServer::new(7.0, h2, 4);
        let dist = fs.queue_length_distribution(1e-10);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-8, "mass {total}");
        let mean: f64 = dist.iter().enumerate().map(|(n, p)| n as f64 * p).sum();
        let sol = fs.solve();
        assert!(
            (mean - sol.mean_jobs).abs() < 1e-6,
            "distribution mean {mean} vs solver {}",
            sol.mean_jobs
        );
        assert!((dist[0] - sol.p_empty).abs() < 1e-10);
    }

    #[test]
    fn queue_length_distribution_mm1_geometric() {
        // M/M/1: P(N = n) = (1-rho) rho^n.
        let fs = FlexServer::new(6.0, H2::exponential(0.1), 3);
        let dist = fs.queue_length_distribution(1e-12);
        for (n, p) in dist.iter().take(20).enumerate() {
            let want = 0.4 * 0.6f64.powi(n as i32);
            assert!((p - want).abs() < 1e-9, "n={n}: {p} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn overload_rejected() {
        FlexServer::new(11.0, H2::exponential(0.1), 4);
    }

    #[test]
    #[should_panic(expected = "MPL must be at least 1")]
    fn zero_mpl_rejected() {
        FlexServer::new(1.0, H2::exponential(0.1), 0);
    }
}
