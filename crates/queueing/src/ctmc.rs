//! Exact solution of the *truncated* flexible multiserver chain.
//!
//! Cross-check for the matrix-geometric solver in [`crate::flex`]: the same
//! CTMC truncated at a finite level `N` (arrivals at level `N` are dropped,
//! i.e. a finite buffer) is block tridiagonal and can be solved exactly by
//! backward level reduction — compute matrices `S_n` with
//! `π_{n+1} = π_n · S_n` from the top down, then propagate from level 0 and
//! normalize. For truncation levels well above the typical backlog the two
//! solvers agree to many digits; the tests enforce that.

use crate::flex::FlexServer;
use crate::linalg::Mat;

/// Solution of the truncated chain.
#[derive(Debug, Clone)]
pub struct TruncatedSolution {
    /// Mean number in system.
    pub mean_jobs: f64,
    /// Mean response time by Little's law with the *effective* arrival rate
    /// `λ·(1 − P(level = N))`.
    pub mean_response_time: f64,
    /// Probability mass at the truncation level (should be ≈ 0 for a valid
    /// truncation; callers can assert on it).
    pub truncation_mass: f64,
    /// Per-level total probabilities.
    pub level_probs: Vec<f64>,
}

/// Solve the flexible multiserver queue truncated at level `n_max`
/// (`n_max ≥ mpl + 1`).
pub fn solve_truncated(fs: &FlexServer, n_max: usize) -> TruncatedSolution {
    let m = fs.mpl as usize;
    assert!(n_max > m, "truncation must exceed the MPL");
    let (a0, a1, a2) = fs.repeating_blocks();
    let sz = m + 1;

    // Per-level blocks. Level n has width w(n) = min(n, m) + 1.
    let width = |n: usize| n.min(m) + 1;

    // Local (diagonal) block of level n. For the truncated top level the
    // arrival rate is removed from the diagonal so rows still sum to zero.
    let local = |n: usize| -> Mat {
        if n <= m {
            let d = fs_boundary_diag(fs, n, n == n_max);
            Mat::diag(&d)
        } else {
            let mut d = a1.clone();
            if n == n_max {
                for j in 0..sz {
                    d[(j, j)] += fs.lambda;
                }
            }
            d
        }
    };
    // Up block from level n to n+1 (only defined for n < n_max).
    let up = |n: usize| -> Mat {
        if n < m {
            fs_boundary_up(fs, n)
        } else {
            a0.clone()
        }
    };
    // Down block from level n to n−1 (n ≥ 1).
    let down = |n: usize| -> Mat {
        if n <= m {
            fs_boundary_down(fs, n)
        } else {
            a2.clone()
        }
    };

    // Backward reduction: S_{n} with π_{n+1} = π_n S_n.
    // At the top: π_{N−1}·Up(N−1) + π_N·Local(N) = 0
    //   ⇒ S_{N−1} = −Up(N−1)·Local(N)⁻¹.
    // Inner:      π_{n−1}·Up(n−1) + π_n·(Local(n) + S_n·Down(n+1)) = 0
    //   ⇒ S_{n−1} = −Up(n−1)·(Local(n) + S_n·Down(n+1))⁻¹.
    let mut s: Vec<Mat> = vec![Mat::zeros(0, 0); n_max];
    s[n_max - 1] = up(n_max - 1).scale(-1.0).mul(&local(n_max).inverse());
    for n in (1..n_max).rev() {
        let inner = local(n).add(&s[n].mul(&down(n + 1)));
        s[n - 1] = up(n - 1).scale(-1.0).mul(&inner.inverse());
    }

    // Level 0 is a single state; π_0 fixed by normalization.
    let mut pis: Vec<Vec<f64>> = Vec::with_capacity(n_max + 1);
    pis.push(vec![1.0]);
    for n in 0..n_max {
        let next = s[n].vec_mul(&pis[n]);
        debug_assert_eq!(next.len(), width(n + 1));
        pis.push(next);
    }
    let total: f64 = pis.iter().map(|v| v.iter().sum::<f64>()).sum();
    for v in pis.iter_mut() {
        for x in v.iter_mut() {
            *x /= total;
        }
    }

    let level_probs: Vec<f64> = pis.iter().map(|v| v.iter().sum()).collect();
    let mean_jobs: f64 = level_probs
        .iter()
        .enumerate()
        .map(|(n, p)| n as f64 * p)
        .sum();
    let truncation_mass = level_probs[n_max];
    let lambda_eff = fs.lambda * (1.0 - truncation_mass);
    TruncatedSolution {
        mean_jobs,
        mean_response_time: mean_jobs / lambda_eff,
        truncation_mass,
        level_probs,
    }
}

// Thin wrappers so this module can reuse FlexServer's boundary blocks
// without widening their visibility beyond the crate.
fn fs_boundary_up(fs: &FlexServer, n: usize) -> Mat {
    fs.boundary_up(n)
}
fn fs_boundary_down(fs: &FlexServer, n: usize) -> Mat {
    fs.boundary_down(n)
}
fn fs_boundary_diag(fs: &FlexServer, n: usize, top: bool) -> Vec<f64> {
    let mut d = fs.boundary_diag(n);
    if top {
        for x in d.iter_mut() {
            *x += fs.lambda;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h2::H2;
    use crate::mg1;

    #[test]
    fn truncated_mm1_matches_closed_form() {
        // M/M/1 with finite buffer N: for N large it converges to M/M/1.
        let fs = FlexServer::new(5.0, H2::exponential(0.1), 1);
        let sol = solve_truncated(&fs, 200);
        let want = mg1::mm1_response_time(5.0, 0.1);
        assert!(sol.truncation_mass < 1e-12);
        assert!(
            (sol.mean_response_time - want).abs() / want < 1e-9,
            "got {} want {want}",
            sol.mean_response_time
        );
    }

    #[test]
    fn agrees_with_matrix_geometric() {
        for &(c2, rho, mpl) in &[
            (2.0, 0.7, 3u32),
            (5.0, 0.7, 6),
            (10.0, 0.8, 4),
            (15.0, 0.7, 10),
        ] {
            let h2 = H2::fit(0.1, c2);
            let lambda = rho / 0.1;
            let fs = FlexServer::new(lambda, h2, mpl);
            let qbd = fs.solve();
            let trunc = solve_truncated(&fs, 800);
            assert!(trunc.truncation_mass < 1e-8, "truncation too low");
            let rel = (qbd.mean_response_time - trunc.mean_response_time).abs()
                / trunc.mean_response_time;
            assert!(
                rel < 1e-6,
                "c2={c2} rho={rho} mpl={mpl}: qbd {} vs truncated {}",
                qbd.mean_response_time,
                trunc.mean_response_time
            );
        }
    }

    #[test]
    fn level_probabilities_sum_to_one_and_decay() {
        let fs = FlexServer::new(6.0, H2::fit(0.1, 5.0), 4);
        let sol = solve_truncated(&fs, 400);
        let total: f64 = sol.level_probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        // Geometric tail: deep levels carry exponentially less mass.
        assert!(sol.level_probs[300] < sol.level_probs[30]);
    }

    #[test]
    #[should_panic(expected = "truncation must exceed")]
    fn rejects_tiny_truncation() {
        let fs = FlexServer::new(1.0, H2::exponential(0.1), 5);
        solve_truncated(&fs, 4);
    }
}
