//! Small dense matrices.
//!
//! The QBD blocks are at most `(MPL+1) × (MPL+1)` (a few dozen rows), so a
//! simple row-major dense matrix with partial-pivot LU is all we need — no
//! external linear-algebra dependency.

use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// An `n × n` diagonal matrix with the given diagonal.
    pub fn diag(d: &[f64]) -> Mat {
        let mut m = Mat::zeros(d.len(), d.len());
        for (i, &x) in d.iter().enumerate() {
            m[(i, i)] = x;
        }
        m
    }

    /// Build from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in mul");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Row-vector × matrix: `v · self`.
    pub fn vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "dimension mismatch in vec_mul");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for j in 0..self.cols {
                out[j] += vi * self[(i, j)];
            }
        }
        out
    }

    /// Matrix × column-vector: `self · v`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut s = 0.0;
            for j in 0..self.cols {
                s += self[(i, j)] * v[j];
            }
            out[i] = s;
        }
        out
    }

    /// Element-wise `self + rhs`.
    pub fn add(&self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        out
    }

    /// Element-wise `self - rhs`.
    pub fn sub(&self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
        out
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Mat {
        let mut out = self.clone();
        for a in out.data.iter_mut() {
            *a *= s;
        }
        out
    }

    /// Maximum absolute element (∞ norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Solve `x · self = b` for the row vector `x` (i.e. solve
    /// `selfᵀ xᵀ = bᵀ`). Panics if the matrix is singular.
    pub fn solve_left(&self, b: &[f64]) -> Vec<f64> {
        let t = self.transpose();
        t.solve(b)
    }

    /// Solve `self · x = b` by LU with partial pivoting. Panics if the
    /// matrix is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        // Forward elimination with partial pivoting.
        for col in 0..n {
            let mut piv = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            assert!(best > 1e-300, "singular matrix in solve (col {col})");
            if piv != col {
                for j in 0..n {
                    a.swap(col * n + j, piv * n + j);
                }
                x.swap(col, piv);
            }
            let d = a[col * n + col];
            for r in (col + 1)..n {
                let f = a[r * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for j in (col + 1)..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in (col + 1)..n {
                s -= a[col * n + j] * x[j];
            }
            x[col] = s / a[col * n + col];
        }
        x
    }

    /// Matrix inverse via `n` solves. Panics if singular.
    pub fn inverse(&self) -> Mat {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let mut out = Mat::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            e[j] = 0.0;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mul() {
        let i = Mat::identity(3);
        let a = Mat::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(i.mul(&a), a);
        assert_eq!(a.mul(&i), a);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
        let mut a = Mat::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = a.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the diagonal forces a pivot swap.
        let mut a = Mat::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let x = a.solve(&[2.0, 3.0]);
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Mat::from_fn(4, 4, |i, j| {
            if i == j {
                4.0
            } else {
                1.0 / (1.0 + (i + 2 * j) as f64)
            }
        });
        let inv = a.inverse();
        let prod = a.mul(&inv);
        let err = prod.sub(&Mat::identity(4)).max_abs();
        assert!(err < 1e-10, "err {err}");
    }

    #[test]
    fn vec_mul_matches_mul() {
        let a = Mat::from_fn(3, 4, |i, j| (i + j) as f64);
        let v = [1.0, 2.0, 3.0];
        let got = a.vec_mul(&v);
        for j in 0..4 {
            let want: f64 = (0..3).map(|i| v[i] * a[(i, j)]).sum();
            assert!((got[j] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_left_is_transpose_solve() {
        let a = Mat::from_fn(3, 3, |i, j| if i == j { 3.0 } else { 0.5 });
        let b = [1.0, 2.0, 3.0];
        let x = a.solve_left(&b);
        let back = a.vec_mul(&x);
        for (g, w) in back.iter().zip(b.iter()) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_panics() {
        let a = Mat::zeros(2, 2);
        a.solve(&[1.0, 1.0]);
    }

    #[test]
    fn transpose_diag_scale() {
        let d = Mat::diag(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d.transpose(), d);
        assert_eq!(d.scale(2.0)[(1, 1)], 4.0);
        assert_eq!(d.add(&d)[(0, 0)], 2.0);
        assert_eq!(d.sub(&d).max_abs(), 0.0);
    }
}
