//! Two-phase hyperexponential (H2) job-size distributions.
//!
//! The paper models transaction service requirements with an H2 so that the
//! squared coefficient of variation C² can be dialled arbitrarily (§4.2).
//! This mirrors `xsched_sim::Dist::HyperExp2` but is expressed in *rates*
//! (μ1, μ2), which is the natural parameterization for generator matrices.

use serde::{Deserialize, Serialize};

/// H2(p, μ1, μ2): with probability `p` the job is Exp(μ1), else Exp(μ2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct H2 {
    /// Probability of the first phase.
    pub p: f64,
    /// Rate of the first exponential phase.
    pub mu1: f64,
    /// Rate of the second exponential phase.
    pub mu2: f64,
}

impl H2 {
    /// Balanced-means fit matching `mean` and `c2` (requires `c2 ≥ 1`).
    ///
    /// For `c2 == 1` the two phases coincide and the distribution is
    /// exponential — every formula below degenerates correctly.
    pub fn fit(mean: f64, c2: f64) -> H2 {
        assert!(mean > 0.0, "mean must be positive");
        assert!(c2 >= 1.0, "H2 requires c2 >= 1, got {c2}");
        if (c2 - 1.0).abs() < 1e-12 {
            return H2 {
                p: 1.0,
                mu1: 1.0 / mean,
                mu2: 1.0 / mean,
            };
        }
        let p = 0.5 * (1.0 + ((c2 - 1.0) / (c2 + 1.0)).sqrt());
        H2 {
            p,
            mu1: 2.0 * p / mean,
            mu2: 2.0 * (1.0 - p) / mean,
        }
    }

    /// An exponential distribution viewed as a degenerate H2.
    pub fn exponential(mean: f64) -> H2 {
        H2::fit(mean, 1.0)
    }

    /// Mean job size `E[S]` = p/μ1 + (1-p)/μ2.
    pub fn mean(&self) -> f64 {
        self.p / self.mu1 + (1.0 - self.p) / self.mu2
    }

    /// Second moment `E[S²]` = 2p/μ1² + 2(1-p)/μ2².
    pub fn second_moment(&self) -> f64 {
        2.0 * self.p / (self.mu1 * self.mu1) + 2.0 * (1.0 - self.p) / (self.mu2 * self.mu2)
    }

    /// Squared coefficient of variation.
    pub fn c2(&self) -> f64 {
        let m = self.mean();
        self.second_moment() / (m * m) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_moments() {
        for &c2 in &[1.0, 2.0, 5.0, 10.0, 15.0] {
            for &mean in &[0.03, 1.0, 20.0] {
                let h = H2::fit(mean, c2);
                assert!((h.mean() - mean).abs() < 1e-9 * mean, "mean for c2={c2}");
                assert!((h.c2() - c2).abs() < 1e-9, "c2: want {c2} got {}", h.c2());
                assert!(h.p > 0.0 && h.p <= 1.0);
                assert!(h.mu1 > 0.0 && h.mu2 > 0.0);
            }
        }
    }

    #[test]
    fn exponential_degenerate() {
        let h = H2::exponential(0.5);
        assert!((h.mean() - 0.5).abs() < 1e-12);
        assert!((h.c2() - 1.0).abs() < 1e-12);
        assert_eq!(h.mu1, h.mu2);
    }

    #[test]
    fn first_phase_is_the_fast_one() {
        let h = H2::fit(1.0, 10.0);
        // Balanced-means puts the high-probability phase on the small jobs.
        assert!(h.p > 0.5);
        assert!(h.mu1 > h.mu2);
    }

    #[test]
    #[should_panic(expected = "c2 >= 1")]
    fn rejects_low_variability() {
        H2::fit(1.0, 0.3);
    }
}
