//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the real `serde` cannot be vendored. Nothing in the workspace performs
//! wire serialization yet — the derives only mark experiment-description
//! types (`Scenario`, `RunConfig`, ...) as serializable so a future PR can
//! swap the real `serde` in without touching call sites. These derives
//! parse just enough of the item to emit a marker-trait impl:
//! `impl serde::Serialize for T {}` / `impl<'de> serde::Deserialize<'de> for T {}`.
//!
//! Limitations (deliberate, asserted at compile time): no generic types,
//! no `#[serde(...)]` attributes.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct`/`enum`/`union` keyword and
/// reject generic parameter lists (the workspace derives only on concrete
/// types; supporting generics without `syn` is not worth the complexity).
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde stub derive: expected type name, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        panic!(
                            "serde stub derive: generic type `{name}` unsupported; \
                             vendor the real serde or hand-write the impl"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("serde stub derive: no struct/enum/union found");
}

/// Derive a marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}

/// Derive a marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}
