#![warn(missing_docs)]
//! Offline stand-in for `serde`.
//!
//! The workspace builds in an environment without crates.io access, so
//! this crate supplies the two trait names the codebase derives
//! (`Serialize`, `Deserialize`) as marker traits plus the matching derive
//! macros from the sibling `serde_derive` stub. No serialization is
//! performed anywhere yet; the derives exist so experiment-description
//! types keep a serde-shaped API surface that the real crate can slot
//! into later without touching call sites. Human-readable encoding of
//! sweep plans is done by hand (see `xsched_core::scenario`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>` (no methods in the stub).
pub trait Deserialize<'de> {}
