#![warn(missing_docs)]
//! Offline mini benchmark harness with a `criterion`-shaped API.
//!
//! The workspace builds without crates.io access, so this crate implements
//! the subset of `criterion` the `xsched-bench` benchmarks use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: warm up, then time batches of
//! iterations until a fixed wall-clock budget is spent, and report the
//! per-iteration mean and minimum. There is no statistical regression
//! machinery — swap the real criterion in when network access allows and
//! the bench sources compile unchanged.
//!
//! Beyond printing, every measurement is recorded on the [`Criterion`]
//! instance ([`Criterion::records`]), so bench binaries with a custom
//! `main` can emit machine-readable baselines (the `hotpath` bench writes
//! `BENCH_hotpath.json` from these records).

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: a name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("setup1", mpl)` renders as `setup1/<mpl>`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    /// Total measurement budget for this benchmark.
    budget: Duration,
    /// (label, mean seconds/iter, min seconds/iter, iterations) collected.
    result: Option<(f64, f64, u64)>,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            budget,
            result: None,
        }
    }

    /// Run `f` repeatedly within the measurement budget and record
    /// per-iteration timing.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: one call, also used to size batches.
        let t0 = Instant::now();
        black_box(f());
        let probe = t0.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(5).as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;

        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let mut min_batch = f64::INFINITY;
        while total < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t.elapsed();
            min_batch = min_batch.min(dt.as_secs_f64() / batch as f64);
            total += dt;
            iters += batch;
        }
        let mean = total.as_secs_f64() / iters as f64;
        self.result = Some((mean, min_batch, iters));
    }
}

/// One finished measurement, as recorded on the [`Criterion`] instance.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark label (`group/name/param`).
    pub name: String,
    /// Mean seconds per iteration.
    pub mean_secs: f64,
    /// Fastest observed batch, seconds per iteration.
    pub min_secs: f64,
    /// Iterations measured.
    pub iters: u64,
}

fn report(label: &str, b: &Bencher, records: &mut Vec<BenchRecord>) {
    match b.result {
        Some((mean, min, iters)) => {
            println!(
                "{label:<40} mean {:>12}  min {:>12}  ({iters} iters)",
                fmt_time(mean),
                fmt_time(min),
            );
            records.push(BenchRecord {
                name: label.to_string(),
                mean_secs: mean,
                min_secs: min,
                iters,
            });
        }
        None => println!("{label:<40} (no measurement)"),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's budget is wall-clock
    /// based, so the sample count only nudges the budget downward.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Fewer samples requested => the caller expects a slow benchmark;
        // keep the default budget. (Real criterion semantics differ, but
        // callers only use this to shorten runs.)
        let _ = n;
        self
    }

    /// Benchmark a closure that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.name),
            &b,
            &mut self.parent.records,
        );
        self
    }

    /// Benchmark a plain closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into().name),
            &b,
            &mut self.parent.records,
        );
        self
    }

    /// End the group (printing is done per-benchmark; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Duration::from_millis(300),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            name: name.to_string(),
            budget,
            parent: self,
        }
    }

    /// Benchmark a single closure.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        let name = name.into().name;
        report(&name, &b, &mut self.records);
        self
    }

    /// Every measurement recorded so far, in execution order.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }
}

/// Bundle benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_timing() {
        let mut b = Bencher::new(Duration::from_millis(10));
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        let (mean, min, iters) = b.result.expect("measured");
        assert!(iters > 0 && mean > 0.0 && min > 0.0 && min <= mean * 1.01);
    }

    #[test]
    fn measurements_are_recorded() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            records: Vec::new(),
        };
        c.bench_function("alpha", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("beta", |b| b.iter(|| 2 + 2));
        g.finish();
        let names: Vec<&str> = c.records().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "grp/beta"]);
        assert!(c.records().iter().all(|r| r.iters > 0 && r.mean_secs > 0.0));
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
