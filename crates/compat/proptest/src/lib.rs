#![warn(missing_docs)]
//! Offline mini property-testing harness with a `proptest`-shaped API.
//!
//! The workspace builds without crates.io access, so this crate implements
//! the subset of `proptest` the test suites use:
//!
//! * the [`proptest!`] macro (`fn name(x in strategy, ...) { body }`),
//! * range strategies (`0u64..1_000_000`, `1u32..=17`, `-1e3f64..1e3`),
//! * [`prelude::any`] for `u64`/`u32`/`u8`/`bool`/`f64`,
//! * [`collection::vec`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from the real crate: a fixed number of cases per property
//! (no `PROPTEST_CASES`), no shrinking (failures report the case seed so a
//! failing case replays deterministically), and strategies are sampled
//! uniformly. Case generation is fully deterministic: the RNG is seeded
//! from the property's name, so runs are reproducible across machines.

use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` property runs.
pub const CASES: u32 = 48;

/// Deterministic SplitMix64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream; the `proptest!` macro derives one per (test, case).
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed derived from a test name and case number.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(case);
        for b in name.as_bytes() {
            state = state
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .wrapping_add(u64::from(*b));
        }
        let mut rng = TestRng { state };
        rng.next_u64(); // mix
        TestRng {
            state: rng.next_u64(),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A source of random values of one type — the mini `Strategy` trait.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// Strategy produced by [`prelude::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Default for Any<T> {
    fn default() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Types [`prelude::any`] can produce (whole-domain uniform sampling).
pub trait ArbitraryValue {
    /// Sample a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: uniform over a wide symmetric interval.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy: `vec(0u8..3, 1..200)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{collection, Any, ArbitraryValue, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Whole-domain strategy for `T`: `any::<u64>()`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any::default()
    }
}

/// Assert inside a `proptest!` body (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$attr])*
        fn $name() {
            for case in 0..$crate::CASES {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // A panicking case reports which deterministic case failed.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(e) = result {
                    eprintln!(
                        "proptest case {case} of {} failed for {}",
                        $crate::CASES,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 1u64..=4, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u8..3, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 3));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("t", 1);
        let mut b = TestRng::for_case("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
