//! Determinism properties of the observability layer.
//!
//! The contracts the rest of the workspace builds on: identical metric
//! state renders byte-identical snapshots, histogram merging is
//! associative and order-independent, and the histogram quantile is
//! accurate enough to bracket analytic percentiles (M/M/1).

use proptest::prelude::*;
use xsched_obs::{LogHistogram, MetricsRegistry};
use xsched_sim::SimRng;

/// Positive sample values spanning many binades.
fn sample(raw: f64) -> f64 {
    // Map (-1e3, 1e3) into a positive, wide-dynamic-range sample while
    // keeping a few degenerate zeros in the mix.
    if raw.abs() < 1.0 {
        0.0
    } else {
        raw.abs().powi(3) * 1e-6
    }
}

proptest! {
    /// Splitting a sample stream into arbitrary chunks and merging the
    /// per-chunk histograms in any of several orders always reproduces
    /// the histogram of the whole stream, state- and byte-identically.
    #[test]
    fn histogram_merge_is_associative_and_order_independent(
        raws in proptest::collection::vec(-1e3f64..1e3, 1..200),
        cuts in proptest::collection::vec(0u64..200, 0..4),
    ) {
        let vals: Vec<f64> = raws.iter().map(|&r| sample(r)).collect();
        let mut whole = LogHistogram::new();
        for &v in &vals {
            whole.record(v);
        }

        // Chunk boundaries from the random cuts.
        let mut bounds: Vec<usize> =
            cuts.iter().map(|&c| c as usize % vals.len()).collect();
        bounds.push(0);
        bounds.push(vals.len());
        bounds.sort_unstable();
        let mut parts: Vec<LogHistogram> = Vec::new();
        for w in bounds.windows(2) {
            let mut h = LogHistogram::new();
            for &v in &vals[w[0]..w[1]] {
                h.record(v);
            }
            parts.push(h);
        }

        // Forward fold, reverse fold, and a right-associated fold must
        // all equal the whole-stream histogram.
        let fold = |hs: &[LogHistogram]| {
            let mut acc = LogHistogram::new();
            for h in hs {
                acc.merge(h);
            }
            acc
        };
        let fwd = fold(&parts);
        let rev: Vec<LogHistogram> = parts.iter().rev().cloned().collect();
        let bwd = fold(&rev);
        let mut right = LogHistogram::new();
        for h in parts.iter().rev() {
            let mut step = h.clone();
            step.merge(&right);
            right = step;
        }
        prop_assert_eq!(&fwd, &whole);
        prop_assert_eq!(&bwd, &whole);
        prop_assert_eq!(&right, &whole);
        prop_assert_eq!(fwd.encode_buckets(), whole.encode_buckets());
        prop_assert_eq!(
            fwd.quantile(0.95).to_bits(),
            whole.quantile(0.95).to_bits()
        );
    }

    /// Feeding the same updates to two registries — in different
    /// orders across distinct metric names — renders byte-identical
    /// snapshots.
    #[test]
    fn registry_snapshots_are_byte_identical_for_identical_state(
        counts in proptest::collection::vec(0u64..1000, 1..8),
        gauges in proptest::collection::vec(-1e3f64..1e3, 1..8),
    ) {
        type RegistryOp = Box<dyn Fn(&MetricsRegistry)>;
        let build = |reverse: bool| {
            let r = MetricsRegistry::new();
            let mut ops: Vec<RegistryOp> = Vec::new();
            for (i, &c) in counts.iter().enumerate() {
                ops.push(Box::new(move |r: &MetricsRegistry| {
                    r.counter_add(&format!("counter_{i}"), c);
                }));
            }
            for (i, &g) in gauges.iter().enumerate() {
                ops.push(Box::new(move |r: &MetricsRegistry| {
                    r.gauge_set(&format!("gauge_{i}"), g);
                    r.hist_record(&format!("hist_{i}"), sample(g));
                }));
            }
            if reverse {
                for op in ops.iter().rev() {
                    op(&r);
                }
            } else {
                for op in &ops {
                    op(&r);
                }
            }
            r.snapshot()
        };
        prop_assert_eq!(build(false), build(true));
    }
}

/// M/M/1 sanity: response times of an M/M/1 queue are exponential with
/// rate `μ − λ`, so the analytic 95th percentile is
/// `−ln(0.05)/(μ−λ)`. The histogram's p95 over simulated waits must
/// bracket it within quantization + sampling error.
#[test]
fn histogram_p95_brackets_mm1_analytic_percentile() {
    let (lambda, mu) = (0.8f64, 1.0f64);
    let mut rng = SimRng::derive(42, "mm1-p95");
    let mut h = LogHistogram::new();
    let mut w = 0.0f64; // Lindley recursion on waiting time
    for _ in 0..400_000 {
        let s = rng.exp(1.0 / mu);
        let a = rng.exp(1.0 / lambda);
        let response = w + s;
        h.record(response);
        w = (w + s - a).max(0.0);
    }
    let analytic_p95 = -(0.05f64.ln()) / (mu - lambda);
    let measured = h.quantile(0.95);
    let rel = (measured - analytic_p95).abs() / analytic_p95;
    assert!(
        rel < 0.10,
        "histogram p95 {measured:.4} vs analytic {analytic_p95:.4} (rel {rel:.4})"
    );
    // p99 keeps the ordering and also lands near its analytic value.
    let analytic_p99 = -(0.01f64.ln()) / (mu - lambda);
    let p99 = h.quantile(0.99);
    assert!(p99 > measured);
    assert!(
        (p99 - analytic_p99).abs() / analytic_p99 < 0.10,
        "p99 {p99:.4}"
    );
}
