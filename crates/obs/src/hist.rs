//! Deterministic log-bucketed histogram.
//!
//! Buckets are derived from the IEEE-754 bit pattern of the sample —
//! the exponent selects a binade and the top [`SUB_BITS`] mantissa bits
//! split it into [`SUB_BUCKETS`] log-linear sub-buckets — so bucketing
//! is pure integer math: no float comparisons, no platform-dependent
//! rounding, and a relative quantization error bounded by one
//! sub-bucket (≈ 2.2% at 32 sub-buckets per binade). Counts live in a
//! `BTreeMap`, which makes readout order, quantile selection, and the
//! encoded state deterministic, and makes [`LogHistogram::merge`] a
//! plain bucket-count addition — associative and commutative by
//! construction (a property test pins this).

use std::collections::BTreeMap;

/// Mantissa bits used for sub-bucketing within one binade.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per power of two (`2^SUB_BITS`).
pub const SUB_BUCKETS: u32 = 1 << SUB_BITS;

/// A merge-friendly histogram over non-negative `f64` samples with
/// deterministic p50/p95/p99 readout.
///
/// Zero, negative, and NaN samples land in the reserved bucket 0 (their
/// representative value is 0.0); `+inf` is clamped to `f64::MAX`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Sparse bucket counts, keyed by bucket index.
    buckets: BTreeMap<u32, u64>,
    /// Total number of recorded samples.
    count: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Bucket index of a sample: `1 + (exponent << SUB_BITS | top
    /// mantissa bits)` for finite positive values, 0 for everything
    /// that is not one.
    pub fn bucket_index(v: f64) -> u32 {
        if v <= 0.0 || v.is_nan() {
            return 0;
        }
        let v = v.min(f64::MAX);
        let bits = v.to_bits(); // sign bit is 0: v > 0
        let exp = (bits >> 52) as u32; // 11 bits
        let sub = ((bits >> (52 - SUB_BITS)) & u64::from(SUB_BUCKETS - 1)) as u32;
        1 + (exp << SUB_BITS | sub)
    }

    /// Representative value of a bucket: the arithmetic midpoint of its
    /// bounds (0.0 for the reserved bucket 0). Reconstructed from the
    /// index by pure bit assembly, so it is identical on every platform.
    pub fn bucket_value(index: u32) -> f64 {
        if index == 0 {
            return 0.0;
        }
        let key = u64::from(index - 1);
        let lo_bits = key << (52 - SUB_BITS);
        let lo = f64::from_bits(lo_bits);
        let hi = f64::from_bits(lo_bits + (1u64 << (52 - SUB_BITS)));
        if !hi.is_finite() {
            return lo.min(f64::MAX);
        }
        lo + (hi - lo) / 2.0
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        *self.buckets.entry(Self::bucket_index(v)).or_insert(0) += 1;
        self.count += 1;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of non-empty buckets.
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Fold another histogram into this one. Pure bucket-count
    /// addition: associative, commutative, and identity-preserving, so
    /// per-shard histograms merge to the same state in any order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&k, &n) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += n;
        }
        self.count += other.count;
    }

    /// Deterministic nearest-rank quantile: the representative value of
    /// the bucket holding the `ceil(q·count)`-th smallest sample.
    /// Returns 0.0 for an empty histogram; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&k, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Self::bucket_value(k);
            }
        }
        unreachable!("cumulative bucket counts must reach the total");
    }

    /// Approximate mean from bucket representatives, summed in bucket
    /// order — deterministic and independent of recording or merge
    /// order. 0.0 when empty.
    pub fn approx_mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (&k, &n) in &self.buckets {
            sum += Self::bucket_value(k) * n as f64;
        }
        sum / self.count as f64
    }

    /// Exact bucket state as a compact `index:count;…` string (empty
    /// string for an empty histogram) — the canonical wire/snapshot
    /// form; byte-identical iff the histograms are equal.
    pub fn encode_buckets(&self) -> String {
        let mut out = String::new();
        for (i, (&k, &n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(&format!("{k}:{n}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced_and_deterministic() {
        // Same binade, far-apart values → different buckets; a value and
        // a copy → same bucket.
        assert_eq!(
            LogHistogram::bucket_index(1.0),
            LogHistogram::bucket_index(1.0)
        );
        assert_ne!(
            LogHistogram::bucket_index(1.0),
            LogHistogram::bucket_index(1.9)
        );
        assert_ne!(
            LogHistogram::bucket_index(1.0),
            LogHistogram::bucket_index(2.0)
        );
        // Degenerate inputs all collapse into bucket 0.
        for v in [0.0, -1.0, f64::NAN, f64::NEG_INFINITY] {
            assert_eq!(LogHistogram::bucket_index(v), 0, "{v}");
        }
        // +inf clamps to the MAX bucket rather than producing NaN math.
        let inf = LogHistogram::bucket_index(f64::INFINITY);
        assert_eq!(inf, LogHistogram::bucket_index(f64::MAX));
        assert!(LogHistogram::bucket_value(inf).is_finite());
    }

    #[test]
    fn representative_is_within_one_sub_bucket() {
        for &v in &[1e-9, 0.001, 0.1, 1.0, 3.7, 42.0, 1e6, 1e300] {
            let rep = LogHistogram::bucket_value(LogHistogram::bucket_index(v));
            let rel = (rep - v).abs() / v;
            assert!(rel < 1.0 / SUB_BUCKETS as f64, "{v} -> {rep} ({rel})");
        }
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 < p95 && p95 < p99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        assert!((p95 - 950.0).abs() / 950.0 < 0.05, "p95 {p95}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 {p99}");
        assert_eq!(LogHistogram::new().quantile(0.95), 0.0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let vals: Vec<f64> = (0..500).map(|i| 0.01 * (i as f64 + 1.0)).collect();
        let mut whole = LogHistogram::new();
        let (mut a, mut b) = (LogHistogram::new(), LogHistogram::new());
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        let mut merged = LogHistogram::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged, whole);
        assert_eq!(merged.encode_buckets(), whole.encode_buckets());
    }

    #[test]
    fn encode_buckets_is_exact_state() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        h.record(1.0);
        h.record(-3.0);
        let enc = h.encode_buckets();
        assert!(enc.starts_with("0:1;"), "{enc}");
        assert!(enc.ends_with(":2"), "{enc}");
        assert!(LogHistogram::new().encode_buckets().is_empty());
    }
}
