#![warn(missing_docs)]
//! Observability layer for the `extsched` workspace.
//!
//! The paper's premise is that an external scheduler steers a DBMS from
//! coarse *observations* alone — which makes the quality of this
//! repository's own observables part of the product. This crate is the
//! unified layer the rest of the workspace threads through:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and log-bucketed
//!   histograms with a deterministic, versioned JSON snapshot
//!   (`xsched-metrics-v1`). Self-contained, like the other vendored
//!   stand-ins: the build environment has no crates.io access.
//! * [`LogHistogram`] — merge-friendly histogram with deterministic
//!   p50/p95/p99 readout; bucketing is pure integer math over the
//!   sample's IEEE bit pattern, and merging is associative,
//!   commutative bucket-count addition.
//! * [`TraceSink`] — the zero-cost simulation trace abstraction. The
//!   simulator is generic over its sink; the default [`NoopTrace`]
//!   monomorphizes to nothing, so tracing costs exactly zero when
//!   disabled. [`CountingSink`] and the fixed-capacity, never-growing
//!   [`RingRecorder`] are the allocation-free working sinks.
//! * [`ControllerSeries`] — per-reaction MPL-setpoint / queue-length /
//!   latency-percentile telemetry of the adaptive controller, with a
//!   bit-stable text encoding for golden snapshots.
//!
//! Everything here is observational by contract: enabling any sink or
//! registry must never change simulation results. The determinism
//! suites in the consuming crates pin that property byte-for-byte.

pub mod hist;
pub mod registry;
pub mod series;
pub mod trace;

pub use hist::LogHistogram;
pub use registry::MetricsRegistry;
pub use series::{ControllerSeries, ControllerTick, CONTROLLER_SERIES_SCHEMA};
pub use trace::{CountingSink, NoopTrace, RingRecorder, TraceEvent, TraceSink};
