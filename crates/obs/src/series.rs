//! Controller time-series telemetry.
//!
//! One [`ControllerTick`] is recorded per controller reaction (window
//! close): the moment, the MPL setpoint the decision left in force, the
//! external queue length, and the closed window's observed throughput
//! and response-time percentiles. The series is what turns the paper's
//! final-MPL controller tables into reaction-time/overshoot
//! measurements — and the encoding is bit-stable: every float carries
//! its exact IEEE bit pattern next to the human-readable decimal, so a
//! golden snapshot pins the controller's trajectory to the bit.

/// One controller reaction: setpoint, queue, and window observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerTick {
    /// Simulation time of the reaction, seconds.
    pub t: f64,
    /// MPL setpoint in force after the decision.
    pub mpl: u32,
    /// External queue length at the reaction.
    pub queue_len: u64,
    /// Observed throughput of the closed window, txns/s.
    pub throughput: f64,
    /// Window response-time median, seconds.
    pub rt_p50: f64,
    /// Window response-time 95th percentile, seconds.
    pub rt_p95: f64,
    /// Window response-time 99th percentile, seconds.
    pub rt_p99: f64,
}

/// A pre-sizable series of controller ticks with deterministic text
/// and JSON encodings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControllerSeries {
    /// Ticks in reaction order.
    pub ticks: Vec<ControllerTick>,
}

/// Schema tag of the text encoding.
pub const CONTROLLER_SERIES_SCHEMA: &str = "xsched-controller-series-v1";

impl ControllerSeries {
    /// An empty series with room for `cap` ticks — controller sessions
    /// pre-size this so long runs never grow the buffer tick by tick.
    pub fn with_capacity(cap: usize) -> ControllerSeries {
        ControllerSeries {
            ticks: Vec::with_capacity(cap),
        }
    }

    /// Append one tick.
    pub fn push(&mut self, tick: ControllerTick) {
        self.ticks.push(tick);
    }

    /// Number of ticks recorded.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True if no tick has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Line-oriented text encoding: a schema header, then one line per
    /// tick with decimals for reading and the exact float bit patterns
    /// (`t:tput:p50:p95:p99`) for bit-stable comparison.
    pub fn encode_text(&self) -> String {
        let mut out = format!("{CONTROLLER_SERIES_SCHEMA} ticks={}\n", self.ticks.len());
        for (i, k) in self.ticks.iter().enumerate() {
            out.push_str(&format!(
                "tick {i} t={:.3} mpl={} queue={} tput={:.3} p50={:.6} p95={:.6} p99={:.6} bits={:016x}:{:016x}:{:016x}:{:016x}:{:016x}\n",
                k.t,
                k.mpl,
                k.queue_len,
                k.throughput,
                k.rt_p50,
                k.rt_p95,
                k.rt_p99,
                k.t.to_bits(),
                k.throughput.to_bits(),
                k.rt_p50.to_bits(),
                k.rt_p95.to_bits(),
                k.rt_p99.to_bits(),
            ));
        }
        out
    }

    /// The series as one inline JSON array of tick objects, for
    /// embedding in the metrics snapshot document.
    pub fn encode_json(&self) -> String {
        let ticks: Vec<String> = self
            .ticks
            .iter()
            .map(|k| {
                format!(
                    "{{\"t\": {:.6}, \"mpl\": {}, \"queue\": {}, \"tput\": {:.6}, \"rt_p50\": {:.9}, \"rt_p95\": {:.9}, \"rt_p99\": {:.9}}}",
                    k.t, k.mpl, k.queue_len, k.throughput, k.rt_p50, k.rt_p95, k.rt_p99
                )
            })
            .collect();
        format!("[{}]", ticks.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(i: u32) -> ControllerTick {
        ControllerTick {
            t: f64::from(i) * 1.5,
            mpl: 10 + i,
            queue_len: u64::from(i) * 3,
            throughput: 100.0 + f64::from(i),
            rt_p50: 0.01,
            rt_p95: 0.05,
            rt_p99: 0.09,
        }
    }

    #[test]
    fn text_encoding_is_bit_stable_and_versioned() {
        let mut s = ControllerSeries::with_capacity(4);
        s.push(tick(0));
        s.push(tick(1));
        let a = s.encode_text();
        let b = s.clone().encode_text();
        assert_eq!(a, b);
        assert!(
            a.starts_with("xsched-controller-series-v1 ticks=2\n"),
            "{a}"
        );
        assert!(a.contains(&format!("{:016x}", 1.5f64.to_bits())), "{a}");
        assert_eq!(a.lines().count(), 3);
    }

    #[test]
    fn json_encoding_is_an_inline_array() {
        let mut s = ControllerSeries::default();
        assert_eq!(s.encode_json(), "[]");
        s.push(tick(2));
        let j = s.encode_json();
        assert!(j.starts_with("[{\"t\": 3.000000, \"mpl\": 12"), "{j}");
        assert!(j.ends_with("}]"), "{j}");
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
    }
}
