//! Named-metric registry: counters, gauges, and log-bucketed histograms
//! with a deterministic, versioned snapshot encoding.
//!
//! Storage is `BTreeMap`-keyed, so the snapshot renders metrics in name
//! order regardless of registration or update order — identical metric
//! state always produces byte-identical snapshot text (a property test
//! pins this). The registry is internally locked and shared by `&self`,
//! so sweep workers on many threads can feed one instance; it is meant
//! for the orchestration layer (sweep executor, figures CLI), not the
//! simulator inner loop, which uses the allocation-free
//! [`TraceSink`](crate::TraceSink) path instead.
//!
//! The snapshot follows the workspace's hand-rolled line-oriented JSON
//! idiom (the vendored serde is marker-only): schema string
//! `xsched-metrics-v1`, one object literal per metric. Gauges carry
//! both a human-readable decimal and the exact IEEE bit pattern;
//! histograms carry their exact bucket state alongside the p50/p95/p99
//! readout, so no precision is lost to formatting.

use crate::hist::LogHistogram;
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LogHistogram>,
}

/// A thread-safe registry of named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `n` to the named counter (created at zero on first use).
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut g = self.inner.lock().unwrap();
        *g.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Set the named gauge.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .insert(name.to_string(), v);
    }

    /// Add `v` to the named gauge (created at zero on first use).
    pub fn gauge_add(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().unwrap();
        *g.gauges.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Raise the named gauge to `v` if `v` is larger (straggler /
    /// high-watermark tracking).
    pub fn gauge_max(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().unwrap();
        let e = g.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if v > *e {
            *e = v;
        }
    }

    /// Current value of a gauge (`None` if never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().gauges.get(name).copied()
    }

    /// Record one sample into the named histogram.
    pub fn hist_record(&self, name: &str, v: f64) {
        let mut g = self.inner.lock().unwrap();
        g.hists.entry(name.to_string()).or_default().record(v);
    }

    /// Merge a pre-built histogram into the named one.
    pub fn hist_merge(&self, name: &str, h: &LogHistogram) {
        let mut g = self.inner.lock().unwrap();
        g.hists.entry(name.to_string()).or_default().merge(h);
    }

    /// A clone of the named histogram (`None` if never touched).
    pub fn hist(&self, name: &str) -> Option<LogHistogram> {
        self.inner.lock().unwrap().hists.get(name).cloned()
    }

    /// One JSON object literal per metric, sorted by kind then name —
    /// the building blocks callers embed in larger snapshot documents.
    pub fn encode_entries(&self) -> Vec<String> {
        let g = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(g.counters.len() + g.gauges.len() + g.hists.len());
        for (name, v) in &g.counters {
            out.push(format!(
                "{{\"name\": \"{}\", \"kind\": \"counter\", \"value\": {v}}}",
                json_safe(name)
            ));
        }
        for (name, v) in &g.gauges {
            out.push(format!(
                "{{\"name\": \"{}\", \"kind\": \"gauge\", \"value\": {v:.6}, \"bits\": \"{:016x}\"}}",
                json_safe(name),
                v.to_bits()
            ));
        }
        for (name, h) in &g.hists {
            out.push(format!(
                "{{\"name\": \"{}\", \"kind\": \"histogram\", \"count\": {}, \"p50\": {:.9}, \"p95\": {:.9}, \"p99\": {:.9}, \"buckets\": \"{}\"}}",
                json_safe(name),
                h.count(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.encode_buckets()
            ));
        }
        out
    }

    /// The standalone `xsched-metrics-v1` snapshot document.
    pub fn snapshot(&self) -> String {
        let entries = self.encode_entries();
        let mut out = String::from("{\n  \"schema\": \"xsched-metrics-v1\",\n  \"metrics\": [\n");
        for (i, e) in entries.iter().enumerate() {
            out.push_str("    ");
            out.push_str(e);
            out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Metric names are generated from identifiers; strip anything that
/// would need JSON escaping rather than growing an escaper.
fn json_safe(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii() && *c != '"' && *c != '\\')
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_through() {
        let r = MetricsRegistry::new();
        r.counter_add("tasks", 2);
        r.counter_add("tasks", 3);
        assert_eq!(r.counter("tasks"), 5);
        assert_eq!(r.counter("never"), 0);

        r.gauge_set("load", 0.5);
        r.gauge_add("load", 0.25);
        assert_eq!(r.gauge("load"), Some(0.75));
        r.gauge_max("peak", 1.0);
        r.gauge_max("peak", 0.5);
        assert_eq!(r.gauge("peak"), Some(1.0));

        for v in [0.1, 0.2, 0.4] {
            r.hist_record("rt", v);
        }
        assert_eq!(r.hist("rt").unwrap().count(), 3);
    }

    #[test]
    fn snapshot_is_name_ordered_and_update_order_independent() {
        let a = {
            let r = MetricsRegistry::new();
            r.counter_add("b_counter", 7);
            r.counter_add("a_counter", 1);
            r.gauge_set("z_gauge", 2.5);
            r.hist_record("m_hist", 0.125);
            r.snapshot()
        };
        let b = {
            let r = MetricsRegistry::new();
            r.hist_record("m_hist", 0.125);
            r.gauge_set("z_gauge", 2.5);
            r.counter_add("a_counter", 1);
            r.counter_add("b_counter", 7);
            r.snapshot()
        };
        assert_eq!(a, b, "snapshot must not depend on update order");
        assert!(a.contains("xsched-metrics-v1"));
        let ai = a.find("a_counter").unwrap();
        let bi = a.find("b_counter").unwrap();
        assert!(ai < bi, "entries sorted by name");
    }

    #[test]
    fn snapshot_carries_exact_bits() {
        let r = MetricsRegistry::new();
        r.gauge_set("g", 0.1 + 0.2);
        let snap = r.snapshot();
        assert!(
            snap.contains(&format!("{:016x}", (0.1f64 + 0.2).to_bits())),
            "{snap}"
        );
    }
}
