//! Zero-cost simulation trace layer.
//!
//! The simulator is generic over a [`TraceSink`]; every interesting
//! event in a transaction's life calls [`TraceSink::record`]. The
//! default sink is [`NoopTrace`], whose `record` is an empty
//! `#[inline(always)]` body — monomorphization erases the calls
//! entirely, so the traced and untraced inner loops compile to the
//! same code and the events/s regression gate stays untouched. The
//! working sinks are allocation-free after construction: a
//! [`CountingSink`] of per-kind totals and a fixed-capacity
//! [`RingRecorder`] that overwrites its oldest entry when full.

/// One typed simulator event. Times are simulation seconds;
/// transaction ids are the simulator's monotone `TxnId` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A transaction entered the DBMS (admission past the MPL gate).
    Admission {
        /// Transaction id.
        txn: u64,
        /// Simulation time, seconds.
        t: f64,
    },
    /// A lock request blocked; the transaction joined a lock queue.
    LockWait {
        /// Transaction id.
        txn: u64,
        /// Simulation time, seconds.
        t: f64,
    },
    /// A blocked transaction was granted its lock.
    LockGrant {
        /// Transaction id.
        txn: u64,
        /// Simulation time, seconds.
        t: f64,
        /// Seconds it spent blocked in the lock queue.
        waited: f64,
    },
    /// A transaction was aborted as a deadlock victim.
    DeadlockAbort {
        /// Transaction id.
        txn: u64,
        /// Simulation time, seconds.
        t: f64,
    },
    /// A transaction was preempted by the POW lock-priority policy.
    PowPreempt {
        /// Transaction id.
        txn: u64,
        /// Simulation time, seconds.
        t: f64,
    },
    /// A disk I/O was issued (data disk read or write-back).
    DiskIo {
        /// Data-disk index.
        disk: u32,
        /// Simulation time, seconds.
        t: f64,
    },
    /// A log force hardened a batch of commit records.
    GroupCommit {
        /// Commit records hardened by this force.
        batch: u32,
        /// Simulation time, seconds.
        t: f64,
    },
    /// A transaction committed.
    Commit {
        /// Transaction id.
        txn: u64,
        /// Simulation time, seconds.
        t: f64,
    },
    /// Chaos: a lock-holding transaction was stalled mid-step (the
    /// injected analogue of a client holding a lock across a pause).
    ChaosStall {
        /// Transaction id.
        txn: u64,
        /// Simulation time, seconds.
        t: f64,
        /// Injected stall length, seconds.
        secs: f64,
    },
    /// Chaos: the disk-latency spike toggled on or off.
    ChaosDiskSpike {
        /// Simulation time, seconds.
        t: f64,
        /// True when the spike became active, false when it lifted.
        active: bool,
    },
    /// Chaos: a client abort storm killed a blocked transaction.
    ChaosAbort {
        /// Transaction id.
        txn: u64,
        /// Simulation time, seconds.
        t: f64,
    },
    /// Chaos: the MMPP arrival burst toggled between its phases.
    ChaosBurst {
        /// Simulation time, seconds.
        t: f64,
        /// Think-time divisor now in force (>1 during the ON phase).
        factor: f64,
    },
    /// The MPL controller discarded a low-load observation window — a
    /// run of these under steady traffic means the controller is frozen.
    ControllerDiscard {
        /// Simulation time, seconds.
        t: f64,
        /// Throughput of the discarded window, txns/second.
        throughput: f64,
    },
    /// Harness: a sweep task attempt failed and is being retried. Unlike
    /// the simulator events above this carries no simulation time — it
    /// is emitted by the sweep executor, outside any simulation.
    TaskRetry {
        /// Global task index within the sweep plan.
        task: u64,
        /// The retry attempt about to run (1 = first retry).
        attempt: u32,
    },
    /// Harness: a sweep task exhausted its attempts and was degraded to
    /// a failed cell (keep-going mode) or aborted the sweep (fail-fast).
    TaskFailed {
        /// Global task index within the sweep plan.
        task: u64,
        /// Total attempts made before giving up.
        attempts: u32,
    },
    /// Coordinator: a task lease was granted to a worker. Like the
    /// harness events above, carries no simulation time — emitted by the
    /// sweep coordinator, outside any simulation.
    LeaseGranted {
        /// Global task index within the sweep plan.
        task: u64,
        /// Dense worker id (hello order at the coordinator).
        worker: u64,
    },
    /// Coordinator: a lease outlived its deadline without a heartbeat;
    /// the task returned to the pending queue.
    LeaseExpired {
        /// Global task index within the sweep plan.
        task: u64,
        /// Dense id of the worker that held the dead lease.
        worker: u64,
    },
    /// Coordinator: a previously-expired task was leased again — the
    /// recovery path that makes a SIGKILLed worker survivable.
    TaskReassigned {
        /// Global task index within the sweep plan.
        task: u64,
        /// Dense id of the worker now holding the lease.
        worker: u64,
    },
    /// Coordinator: a known worker re-introduced itself — it reconnected
    /// after a transport failure (or a coordinator restart).
    WorkerReconnect {
        /// Dense worker id.
        worker: u64,
    },
}

impl TraceEvent {
    /// Dense kind index, usable as an array key (see
    /// [`CountingSink::by_kind`]).
    pub fn kind(&self) -> usize {
        match self {
            TraceEvent::Admission { .. } => 0,
            TraceEvent::LockWait { .. } => 1,
            TraceEvent::LockGrant { .. } => 2,
            TraceEvent::DeadlockAbort { .. } => 3,
            TraceEvent::PowPreempt { .. } => 4,
            TraceEvent::DiskIo { .. } => 5,
            TraceEvent::GroupCommit { .. } => 6,
            TraceEvent::Commit { .. } => 7,
            TraceEvent::ChaosStall { .. } => 8,
            TraceEvent::ChaosDiskSpike { .. } => 9,
            TraceEvent::ChaosAbort { .. } => 10,
            TraceEvent::ChaosBurst { .. } => 11,
            TraceEvent::ControllerDiscard { .. } => 12,
            TraceEvent::TaskRetry { .. } => 13,
            TraceEvent::TaskFailed { .. } => 14,
            TraceEvent::LeaseGranted { .. } => 15,
            TraceEvent::LeaseExpired { .. } => 16,
            TraceEvent::TaskReassigned { .. } => 17,
            TraceEvent::WorkerReconnect { .. } => 18,
        }
    }

    /// Number of distinct event kinds.
    pub const KINDS: usize = 19;

    /// Stable short name of a kind index.
    pub fn kind_name(kind: usize) -> &'static str {
        [
            "admission",
            "lock_wait",
            "lock_grant",
            "deadlock_abort",
            "pow_preempt",
            "disk_io",
            "group_commit",
            "commit",
            "chaos_stall",
            "chaos_disk_spike",
            "chaos_abort",
            "chaos_burst",
            "controller_discard",
            "task_retry",
            "task_failed",
            "lease_granted",
            "lease_expired",
            "task_reassigned",
            "worker_reconnect",
        ][kind]
    }
}

/// Receives simulator trace events. Implementations must not assume
/// any ordering beyond simulation-time order of the emitting sim.
pub trait TraceSink {
    /// Observe one event.
    fn record(&mut self, ev: TraceEvent);
}

/// The default sink: does nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTrace;

impl TraceSink for NoopTrace {
    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// Counts events, total and per kind — the cheapest working sink, used
/// by the overhead benchmark and the on/off invariance tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Total events recorded.
    pub total: u64,
    /// Events per [`TraceEvent::kind`] index.
    pub by_kind: [u64; TraceEvent::KINDS],
}

impl TraceSink for CountingSink {
    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        self.total += 1;
        self.by_kind[ev.kind()] += 1;
    }
}

/// Fixed-capacity ring buffer of the most recent events. The buffer is
/// fully allocated up front and never grows, so attaching it to a
/// steady-state simulation keeps the loop allocation-free.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: Vec<TraceEvent>,
    next: usize,
    recorded: u64,
}

impl RingRecorder {
    /// A recorder holding the most recent `capacity` events
    /// (`capacity` is raised to 1 if 0 is passed).
    pub fn new(capacity: usize) -> RingRecorder {
        RingRecorder {
            buf: Vec::with_capacity(capacity.max(1)),
            next: 0,
            recorded: 0,
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events ever recorded minus events retained — how many were
    /// overwritten by newer ones.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.len() as u64
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let split = if self.buf.len() < self.buf.capacity() {
            0
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

impl TraceSink for RingRecorder {
    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.buf.len();
        }
        self.recorded += 1;
    }
}

/// Forwarding impl so a sink can be borrowed into a sim.
impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        (**self).record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64) -> TraceEvent {
        TraceEvent::Commit { txn: t as u64, t }
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let mut s = CountingSink::default();
        s.record(TraceEvent::Admission { txn: 1, t: 0.0 });
        s.record(TraceEvent::Commit { txn: 1, t: 1.0 });
        s.record(TraceEvent::Commit { txn: 2, t: 2.0 });
        assert_eq!(s.total, 3);
        assert_eq!(
            s.by_kind[TraceEvent::Admission { txn: 0, t: 0.0 }.kind()],
            1
        );
        assert_eq!(s.by_kind[TraceEvent::Commit { txn: 0, t: 0.0 }.kind()], 2);
        assert_eq!(TraceEvent::kind_name(7), "commit");
    }

    #[test]
    fn ring_recorder_overwrites_oldest_without_growing() {
        let mut r = RingRecorder::new(4);
        let cap = r.capacity();
        for i in 0..10 {
            r.record(ev(i as f64));
        }
        assert_eq!(r.capacity(), cap, "ring must never grow");
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let kept: Vec<f64> = r
            .iter()
            .map(|e| match e {
                TraceEvent::Commit { t, .. } => *t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![6.0, 7.0, 8.0, 9.0], "oldest-first, newest kept");
    }

    #[test]
    fn ring_recorder_partial_fill_iterates_in_order() {
        let mut r = RingRecorder::new(8);
        for i in 0..3 {
            r.record(ev(i as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().count(), 3);
    }
}
