//! Traffic-shape chaos: the client-side half of the chaos scenario axis.
//!
//! A [`ChaosSpec`] bundles everything a robustness experiment perturbs:
//!
//! * **bursty arrivals** ([`BurstSpec`]) — a two-phase MMPP: think times
//!   are divided by `factor` while the burst phase is ON, modulated by a
//!   deterministic exponential ON/OFF schedule,
//! * **flash crowds** ([`FlashSpec`]) — a one-shot ramp that multiplies
//!   arrival intensity up to `surge_mult` over `ramp_secs` after onset,
//! * **think-time override** — replaces the scenario's think-time
//!   distribution so arrival-side chaos has headroom to act on (a
//!   saturated closed system with zero think time cannot burst),
//! * **service-side faults** ([`FaultSpec`]) — lock-holder stalls,
//!   disk-latency spikes and client-abort storms, injected inside the
//!   simulated DBMS (see `xsched_dbms::fault`).
//!
//! Every injector is rate-parameterized and draws from its own derived
//! RNG stream, so a chaos run is bit-reproducible in `(seed, spec)` and
//! a spec with every knob disabled is byte-identical to no chaos at all.

use serde::Serialize;
use xsched_dbms::FaultSpec;
use xsched_sim::Dist;

/// MMPP arrival burst: while ON, client think times are divided by
/// `factor` (the population submits `factor`× faster), producing the
/// bursty offered-load swings the controller must ride out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BurstSpec {
    /// Mean length of the bursting (ON) phase, seconds.
    pub mean_on: f64,
    /// Mean length of the calm (OFF) phase, seconds.
    pub mean_off: f64,
    /// Think-time divisor while ON (> 1).
    pub factor: f64,
}

/// Flash crowd: starting at the chaos onset, arrival intensity ramps
/// linearly from 1× to `surge_mult`× over `ramp_secs`, then holds — the
/// canonical overload transient of §1 (a site suddenly popular).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FlashSpec {
    /// Peak arrival-intensity multiplier once the ramp completes (> 1).
    pub surge_mult: f64,
    /// Seconds the linear ramp takes to reach the peak.
    pub ramp_secs: f64,
}

/// One chaos scenario: which injectors run, when they wake up, and how
/// long the observation session lasts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosSpec {
    /// Simulated seconds before any injector activates. The controller
    /// converges on the healthy system first; reaction time and
    /// overshoot are measured from this instant.
    pub onset: f64,
    /// Measured-transaction budget of the chaos session (the controller
    /// session's usual convergence break is disabled so post-onset
    /// behaviour stays observable).
    pub session_txns: u64,
    /// Bursty MMPP arrivals, or `None` to disable.
    pub burst: Option<BurstSpec>,
    /// Flash-crowd ramp, or `None` to disable.
    pub flash: Option<FlashSpec>,
    /// Think-time override for the closed population, or `None` to keep
    /// the scenario's own arrival process.
    pub think: Option<Dist>,
    /// Service-side fault layer (stalls, disk spikes, abort storms).
    pub faults: FaultSpec,
}

impl ChaosSpec {
    /// A quiet baseline: no injectors, default onset/budget. Useful as a
    /// `..` base and as the byte-identity reference in tests.
    pub fn quiet(onset: f64, session_txns: u64) -> ChaosSpec {
        ChaosSpec {
            onset,
            session_txns,
            burst: None,
            flash: None,
            think: None,
            faults: FaultSpec::default(),
        }
    }

    /// True when every traffic- and service-side injector is disabled.
    pub fn is_noop(&self) -> bool {
        self.burst.is_none() && self.flash.is_none() && self.faults.is_noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_spec_is_noop() {
        assert!(ChaosSpec::quiet(40.0, 5000).is_noop());
        let s = ChaosSpec {
            burst: Some(BurstSpec {
                mean_on: 5.0,
                mean_off: 5.0,
                factor: 4.0,
            }),
            ..ChaosSpec::quiet(40.0, 5000)
        };
        assert!(!s.is_noop());
    }

    #[test]
    fn think_override_alone_is_still_noop() {
        // Overriding think time changes the scenario, not the chaos: a
        // spec whose only knob is `think` injects nothing.
        let s = ChaosSpec {
            think: Some(Dist::exp(0.5)),
            ..ChaosSpec::quiet(10.0, 1000)
        };
        assert!(s.is_noop());
    }
}
