//! Arrival models.
//!
//! The paper's main experiments run a *closed* system with 100 clients
//! (submit → wait for completion → think → submit again); §3.2 switches to
//! an *open* system with Poisson arrivals to study response time at fixed
//! load. Both are captured here and interpreted by the experiment driver
//! in `xsched-core`.

use serde::{Deserialize, Serialize};
use xsched_sim::{Dist, SimRng};

/// How transactions arrive at the external queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// A fixed population of clients, each cycling submit → think. With
    /// zero think time the external queue is kept saturated — the "high
    /// offered load" regime the paper's throughput plots assume.
    Closed {
        /// Number of clients (the paper uses 100 everywhere).
        clients: u32,
        /// Think-time distribution between completion and next submit.
        think: Dist,
    },
    /// Poisson arrivals at a constant rate, independent of completions.
    Open {
        /// Arrival rate in transactions/second.
        rate: f64,
    },
}

impl ArrivalProcess {
    /// The saturated closed system used by the throughput experiments.
    pub fn saturated(clients: u32) -> ArrivalProcess {
        ArrivalProcess::Closed {
            clients,
            think: Dist::constant(0.0),
        }
    }

    /// Closed system with exponential think time.
    pub fn closed(clients: u32, mean_think: f64) -> ArrivalProcess {
        ArrivalProcess::Closed {
            clients,
            think: Dist::exp(mean_think),
        }
    }

    /// Open Poisson arrivals.
    pub fn open(rate: f64) -> ArrivalProcess {
        assert!(rate > 0.0);
        ArrivalProcess::Open { rate }
    }

    /// True for the closed variants.
    pub fn is_closed(&self) -> bool {
        matches!(self, ArrivalProcess::Closed { .. })
    }

    /// Sample the delay before a client's next submission (closed: think
    /// time; open: exponential interarrival).
    pub fn next_delay(&self, rng: &mut SimRng) -> f64 {
        match self {
            ArrivalProcess::Closed { think, .. } => think.sample(rng),
            ArrivalProcess::Open { rate } => rng.exp(1.0 / rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_has_zero_think() {
        let a = ArrivalProcess::saturated(100);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(a.is_closed());
        assert_eq!(a.next_delay(&mut rng), 0.0);
    }

    #[test]
    fn open_interarrivals_have_requested_rate() {
        let a = ArrivalProcess::open(50.0);
        assert!(!a.is_closed());
        let mut rng = SimRng::seed_from_u64(2);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| a.next_delay(&mut rng)).sum();
        let rate = n as f64 / total;
        assert!((rate - 50.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn closed_think_time_mean() {
        let a = ArrivalProcess::closed(10, 0.5);
        let mut rng = SimRng::seed_from_u64(3);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| a.next_delay(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - 0.5).abs() < 0.01, "mean think {m}");
    }

    #[test]
    #[should_panic]
    fn open_rejects_zero_rate() {
        ArrivalProcess::open(0.0);
    }
}
