//! Tables 1 and 2 of the paper: the six workloads and 17 setups.
//!
//! Each [`Setup`] bundles a workload spec with the hardware and DBMS
//! configuration of one row of Table 2. The buffer-pool sizes mirror
//! Table 1's memory pressure: CPU-bound variants get a pool larger than
//! the database (everything cached after warm-up), I/O-bound variants a
//! pool two orders of magnitude smaller, and the balanced variant one that
//! half-fits — reproducing the paper's method of turning one benchmark
//! into qualitatively different workloads.

use crate::spec::WorkloadSpec;
use crate::{tpcc, tpcw};
use serde::Serialize;
use xsched_dbms::{DbmsConfig, HardwareConfig, IsolationLevel};

/// One experimental setup (a row of Table 2).
#[derive(Debug, Clone, Serialize)]
pub struct Setup {
    /// Setup number, 1–17.
    pub id: u32,
    /// The workload spec (a row of Table 1).
    pub workload: WorkloadSpec,
    /// Hardware configuration (CPUs, disks, buffer pool).
    pub hw: HardwareConfig,
    /// DBMS configuration (isolation level; priority policies default off).
    pub cfg: DbmsConfig,
    /// Closed-system client population (100 throughout the paper).
    pub clients: u32,
}

/// Buffer-pool pages for each Table-1 workload.
fn pool_pages(workload: &str) -> u64 {
    match workload {
        "W_CPU-inventory" => 100_000,
        "W_CPU-browsing" => 100_000,
        "W_IO-inventory" => 10_000,
        "W_IO-browsing" => 10_000,
        "W_CPU+IO-inventory" => 40_000,
        "W_CPU-ordering" => 100_000,
        other => panic!("unknown workload {other}"),
    }
}

/// The six Table-1 workloads.
pub fn workloads() -> Vec<WorkloadSpec> {
    vec![
        tpcc::cpu_inventory(),
        tpcw::cpu_browsing(),
        tpcw::io_browsing(),
        tpcc::io_inventory(),
        tpcc::balanced_inventory(),
        tpcw::cpu_ordering(),
    ]
}

fn mk(id: u32, workload: WorkloadSpec, cpus: u32, disks: u32, iso: IsolationLevel) -> Setup {
    let hw = HardwareConfig::default()
        .with_cpus(cpus)
        .with_data_disks(disks)
        .with_bufferpool_pages(pool_pages(workload.name));
    let cfg = DbmsConfig::default().with_isolation(iso);
    Setup {
        id,
        workload,
        hw,
        cfg,
        clients: 100,
    }
}

/// Setup `i` of Table 2 (`1 ≤ i ≤ 17`).
pub fn setup(i: u32) -> Setup {
    use IsolationLevel::{RepeatableRead as RR, UncommittedRead as UR};
    match i {
        1 => mk(1, tpcc::cpu_inventory(), 1, 1, RR),
        2 => mk(2, tpcc::cpu_inventory(), 2, 1, RR),
        3 => mk(3, tpcw::cpu_browsing(), 1, 1, RR),
        4 => mk(4, tpcw::cpu_browsing(), 2, 1, RR),
        5 => mk(5, tpcc::io_inventory(), 1, 1, RR),
        6 => mk(6, tpcc::io_inventory(), 1, 2, RR),
        7 => mk(7, tpcc::io_inventory(), 1, 3, RR),
        8 => mk(8, tpcc::io_inventory(), 1, 4, RR),
        9 => mk(9, tpcw::io_browsing(), 1, 1, RR),
        10 => mk(10, tpcw::io_browsing(), 1, 4, RR),
        11 => mk(11, tpcc::balanced_inventory(), 1, 1, RR),
        12 => mk(12, tpcc::balanced_inventory(), 2, 4, RR),
        13 => mk(13, tpcw::cpu_ordering(), 1, 1, RR),
        14 => mk(14, tpcw::cpu_ordering(), 1, 1, UR),
        15 => mk(15, tpcw::cpu_ordering(), 2, 1, RR),
        16 => mk(16, tpcw::cpu_ordering(), 2, 1, UR),
        17 => mk(17, tpcc::cpu_inventory(), 1, 1, UR),
        other => panic!("Table 2 has setups 1..=17, not {other}"),
    }
}

impl Setup {
    /// 128-bit structural fingerprint of every field (workload, hardware,
    /// DBMS config, client population). Two setups fingerprint equal iff
    /// all their fields are bit-identical — the identity the measurement
    /// cache keys on, strong enough to distinguish `map_cfg` variants
    /// that share a setup id.
    pub fn stable_fingerprint(&self) -> (u64, u64) {
        // Exhaustive destructuring: a new Setup field must join the
        // fingerprint before this compiles again.
        let Setup {
            id,
            ref workload,
            ref hw,
            ref cfg,
            clients,
        } = *self;
        let mut fp = xsched_sim::StableFp::new();
        fp.write_u32(id);
        fp.write_u32(clients);
        workload.fingerprint_into(&mut fp);
        hw.fingerprint_into(&mut fp);
        cfg.fingerprint_into(&mut fp);
        fp.finish()
    }

    /// Functional update of the DBMS configuration — the idiom sweep plans
    /// use to express internal-policy variants (POW locks, CPU priorities,
    /// group commit, ...) as one-line setup literals.
    pub fn map_cfg(mut self, f: impl FnOnce(&mut DbmsConfig)) -> Setup {
        f(&mut self.cfg);
        self
    }
}

/// All 17 setups in order.
pub fn setups() -> Vec<Setup> {
    (1..=17).map(setup).collect()
}

/// All Table-2 setup ids, for sweep grids over the full matrix.
pub fn setup_ids() -> std::ops::RangeInclusive<u32> {
    1..=17
}

/// The setups satisfying `pred` — e.g. every I/O-bound row, or every
/// 2-CPU row — for callers assembling sweep rows by property rather than
/// by the `(label, id)` lists the bundled figures use.
pub fn setups_where(pred: impl Fn(&Setup) -> bool) -> Vec<Setup> {
    setups().into_iter().filter(pred).collect()
}

/// `(label, setup)` pairs from `(label, id)` shorthand — the row axis of a
/// figure-style sweep grid.
pub fn labeled_setups(rows: &[(&str, u32)]) -> Vec<(String, Setup)> {
    rows.iter()
        .map(|(label, id)| (label.to_string(), setup(*id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_setups_with_hundred_clients() {
        let all = setups();
        assert_eq!(all.len(), 17);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.id as usize, i + 1);
            assert_eq!(s.clients, 100);
        }
    }

    #[test]
    fn table2_hardware_matches_paper() {
        // Spot-check rows against Table 2.
        let s2 = setup(2);
        assert_eq!((s2.hw.cpus, s2.hw.data_disks), (2, 1));
        assert_eq!(s2.workload.name, "W_CPU-inventory");
        let s8 = setup(8);
        assert_eq!((s8.hw.cpus, s8.hw.data_disks), (1, 4));
        assert_eq!(s8.workload.name, "W_IO-inventory");
        let s12 = setup(12);
        assert_eq!((s12.hw.cpus, s12.hw.data_disks), (2, 4));
        assert_eq!(s12.workload.name, "W_CPU+IO-inventory");
    }

    #[test]
    fn isolation_levels_match_table2() {
        use IsolationLevel::*;
        assert_eq!(setup(1).cfg.isolation, RepeatableRead);
        assert_eq!(setup(14).cfg.isolation, UncommittedRead);
        assert_eq!(setup(16).cfg.isolation, UncommittedRead);
        assert_eq!(setup(17).cfg.isolation, UncommittedRead);
    }

    #[test]
    fn cpu_bound_pools_cover_their_databases() {
        for s in setups() {
            if s.workload.name.starts_with("W_CPU-") {
                assert!(
                    s.hw.bufferpool_pages >= s.workload.db_pages,
                    "setup {}: pool smaller than db",
                    s.id
                );
            }
            if s.workload.name.starts_with("W_IO") {
                assert!(
                    s.hw.bufferpool_pages * 10 <= s.workload.db_pages,
                    "setup {}: pool too large for an I/O-bound workload",
                    s.id
                );
            }
        }
    }

    #[test]
    fn six_distinct_workloads() {
        let names: Vec<&str> = workloads().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 6);
        let mut uniq = names.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 6);
    }

    #[test]
    #[should_panic(expected = "Table 2")]
    fn setup_zero_rejected() {
        setup(0);
    }

    #[test]
    fn grid_helpers_enumerate_and_filter() {
        assert_eq!(setup_ids().count(), 17);
        let io = setups_where(|s| s.workload.name.starts_with("W_IO"));
        assert_eq!(io.len(), 6); // setups 5..=10
        assert!(io.iter().all(|s| (5..=10).contains(&s.id)));
        let rows = labeled_setups(&[("one cpu", 1), ("two cpus", 2)]);
        assert_eq!(rows[0].0, "one cpu");
        assert_eq!(rows[1].1.hw.cpus, 2);
    }

    #[test]
    fn map_cfg_updates_in_place() {
        use xsched_dbms::IsolationLevel;
        let s = setup(1).map_cfg(|c| c.isolation = IsolationLevel::UncommittedRead);
        assert_eq!(s.cfg.isolation, IsolationLevel::UncommittedRead);
    }
}
