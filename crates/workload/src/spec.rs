//! Parametric transaction templates and the workload generator.
//!
//! A [`TxnTemplate`] describes one transaction *type* statistically: how
//! many steps it runs, the CPU burst distribution per step, how many pages
//! each step touches, and its locking behaviour. A [`WorkloadSpec`] is a
//! weighted mix of templates over a database of a given size;
//! [`TxnGen`] samples concrete `TxnBody` programs from it.
//!
//! The *intrinsic demand* of a transaction — total CPU plus uncached I/O
//! time — is the quantity whose squared coefficient of variation the paper
//! identifies as the key factor for the response-time-safe MPL (§3.2); the
//! spec exposes both analytic ([`WorkloadSpec::intrinsic_demand_stats`])
//! and sampled views of it.

use serde::Serialize;
use xsched_dbms::txn::{ItemId, LockMode, PageId, Priority, Step, TxnBody};
use xsched_sim::zipf::Zipf;
use xsched_sim::{Dist, SimRng};

/// Locking behaviour of a template.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LockProfile {
    /// Probability that a step takes a lock.
    pub lock_prob: f64,
    /// Probability that a taken lock targets the hot item set (e.g. the
    /// warehouse/district rows of TPC-C).
    pub hot_prob: f64,
    /// Probability that a taken lock is exclusive.
    pub write_prob: f64,
    /// Place hot locks in the final quarter of the transaction (real
    /// systems update their hottest rows just before commit, which keeps
    /// hold times short). When false, hot locks sit wherever they were
    /// drawn, giving long holds — the TPC-C NewOrder district pattern.
    pub late_hot: bool,
    /// Probability that a hot exclusive lock is preceded by a shared
    /// acquisition of the same item earlier in the transaction (the
    /// read-then-update pattern). Under Repeatable Read this creates
    /// upgrade deadlocks between concurrent updaters of the same hot row;
    /// under Uncommitted Read the shared half is skipped and the hazard
    /// disappears — the paper's Fig. 5 contrast.
    pub upgrade_prob: f64,
}

impl LockProfile {
    /// A template that never locks (e.g. pure read under UR assumptions).
    pub const NONE: LockProfile = LockProfile {
        lock_prob: 0.0,
        hot_prob: 0.0,
        write_prob: 0.0,
        late_hot: false,
        upgrade_prob: 0.0,
    };

    /// Read-mostly profile: shared locks on regular items.
    pub fn read_mostly(lock_prob: f64) -> LockProfile {
        LockProfile {
            lock_prob,
            hot_prob: 0.0,
            write_prob: 0.0,
            late_hot: false,
            upgrade_prob: 0.0,
        }
    }
}

/// One transaction type.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TxnTemplate {
    /// Human-readable name ("NewOrder", "BestSeller", ...).
    pub name: &'static str,
    /// Mix weight (need not be normalized across the spec).
    pub weight: f64,
    /// Number of steps.
    pub steps: u32,
    /// CPU demand per step, seconds.
    pub cpu_per_step: Dist,
    /// Pages touched per step.
    pub pages_per_step: u32,
    /// Locking behaviour.
    pub locks: LockProfile,
}

impl TxnTemplate {
    /// Analytic mean of this template's intrinsic demand given the uncached
    /// cost of one page access.
    pub fn intrinsic_mean(&self, io_cost: f64) -> f64 {
        self.steps as f64 * (self.cpu_per_step.mean() + self.pages_per_step as f64 * io_cost)
    }

    /// Analytic variance of the intrinsic demand (steps are iid; the page
    /// count is deterministic so only CPU contributes).
    pub fn intrinsic_variance(&self) -> f64 {
        self.steps as f64 * self.cpu_per_step.variance()
    }
}

/// A complete workload: template mix plus database geometry.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadSpec {
    /// Workload name as used in Table 1 (e.g. "W_CPU-inventory").
    pub name: &'static str,
    /// The transaction mix.
    pub templates: Vec<TxnTemplate>,
    /// Number of distinct pages in the database.
    pub db_pages: u64,
    /// Zipf skew of page accesses.
    pub page_theta: f64,
    /// Size of the hot lockable item set (warehouse/district rows).
    pub hot_items: u64,
    /// Size of the regular lockable item space (customer/order rows).
    pub item_space: u64,
}

impl TxnTemplate {
    /// Write a structural fingerprint of the template (name, weight,
    /// shape, lock profile). Exhaustive destructuring (no `..`): adding
    /// a field without fingerprinting it is a compile error.
    pub fn fingerprint_into(&self, fp: &mut xsched_sim::StableFp) {
        let TxnTemplate {
            name,
            weight,
            steps,
            ref cpu_per_step,
            pages_per_step,
            locks:
                LockProfile {
                    lock_prob,
                    hot_prob,
                    write_prob,
                    late_hot,
                    upgrade_prob,
                },
        } = *self;
        fp.write_str(name);
        fp.write_f64(weight);
        fp.write_u32(steps);
        cpu_per_step.fingerprint_into(fp);
        fp.write_u32(pages_per_step);
        fp.write_f64(lock_prob);
        fp.write_f64(hot_prob);
        fp.write_f64(write_prob);
        fp.write_bool(late_hot);
        fp.write_f64(upgrade_prob);
    }
}

impl WorkloadSpec {
    /// Write a structural fingerprint of the whole workload — every
    /// template plus the database geometry. Measurement-cache keys use
    /// this instead of `Debug` output, which could alias if it ever
    /// elided or reformatted a field; the exhaustive destructuring makes
    /// adding a field without fingerprinting it a compile error.
    pub fn fingerprint_into(&self, fp: &mut xsched_sim::StableFp) {
        let WorkloadSpec {
            name,
            ref templates,
            db_pages,
            page_theta,
            hot_items,
            item_space,
        } = *self;
        fp.write_str(name);
        fp.write_u64(templates.len() as u64);
        for t in templates {
            t.fingerprint_into(fp);
        }
        fp.write_u64(db_pages);
        fp.write_f64(page_theta);
        fp.write_u64(hot_items);
        fp.write_u64(item_space);
    }

    /// Mixture mean and squared coefficient of variation of the intrinsic
    /// per-transaction demand, given the uncached page cost.
    ///
    /// This is the C² the paper reports in §3.2 (TPC-C ≈ 1–1.5,
    /// TPC-W ≈ 15, commercial traces ≈ 2).
    pub fn intrinsic_demand_stats(&self, io_cost: f64) -> (f64, f64) {
        let wsum: f64 = self.templates.iter().map(|t| t.weight).sum();
        let mean: f64 = self
            .templates
            .iter()
            .map(|t| t.weight / wsum * t.intrinsic_mean(io_cost))
            .sum();
        let second: f64 = self
            .templates
            .iter()
            .map(|t| {
                let m = t.intrinsic_mean(io_cost);
                t.weight / wsum * (t.intrinsic_variance() + m * m)
            })
            .sum();
        let var = (second - mean * mean).max(0.0);
        (mean, var / (mean * mean))
    }

    /// Mean number of page accesses per transaction.
    pub fn mean_pages(&self) -> f64 {
        let wsum: f64 = self.templates.iter().map(|t| t.weight).sum();
        self.templates
            .iter()
            .map(|t| t.weight / wsum * (t.steps * t.pages_per_step) as f64)
            .sum()
    }

    /// Mean pure-CPU demand per transaction, seconds.
    pub fn mean_cpu(&self) -> f64 {
        let wsum: f64 = self.templates.iter().map(|t| t.weight).sum();
        self.templates
            .iter()
            .map(|t| t.weight / wsum * t.steps as f64 * t.cpu_per_step.mean())
            .sum()
    }
}

/// Samples concrete transaction bodies from a [`WorkloadSpec`].
pub struct TxnGen {
    spec: WorkloadSpec,
    weights: Vec<f64>,
    page_zipf: Zipf,
    rng: SimRng,
    /// Fraction of transactions tagged high priority (paper: 10%).
    high_fraction: f64,
}

impl TxnGen {
    /// A generator with its own random stream derived from `seed`.
    pub fn new(spec: WorkloadSpec, seed: u64) -> TxnGen {
        let weights = spec.templates.iter().map(|t| t.weight).collect();
        let page_zipf = Zipf::new(spec.db_pages, spec.page_theta);
        TxnGen {
            spec,
            weights,
            page_zipf,
            rng: SimRng::derive(seed, "txngen"),
            high_fraction: 0.10,
        }
    }

    /// Change the high-priority fraction (default 10%, as in §5.1).
    pub fn with_high_fraction(mut self, f: f64) -> TxnGen {
        assert!((0.0..=1.0).contains(&f));
        self.high_fraction = f;
        self
    }

    /// The spec this generator samples from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Draw the scheduling class for the next transaction.
    pub fn next_priority(&mut self) -> Priority {
        if self.rng.chance(self.high_fraction) {
            Priority::High
        } else {
            Priority::Low
        }
    }

    /// Generate one transaction body of a random type with the given
    /// priority class.
    pub fn next_body(&mut self, priority: Priority) -> TxnBody {
        let ti = self.rng.weighted_index(&self.weights);
        let tmpl = self.spec.templates[ti].clone();
        let mut steps = Vec::with_capacity(tmpl.steps as usize);
        for _ in 0..tmpl.steps {
            let lock = if self.rng.chance(tmpl.locks.lock_prob) {
                let item = if self.rng.chance(tmpl.locks.hot_prob) {
                    ItemId(self.rng.index_u64(self.spec.hot_items.max(1)))
                } else {
                    // Regular items live above the hot range.
                    ItemId(self.spec.hot_items + self.rng.index_u64(self.spec.item_space.max(1)))
                };
                let mode = if self.rng.chance(tmpl.locks.write_prob) {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                Some((item, mode))
            } else {
                None
            };
            let pages = (0..tmpl.pages_per_step)
                .map(|_| PageId(self.page_zipf.sample(&mut self.rng)))
                .collect();
            let cpu = tmpl.cpu_per_step.sample(&mut self.rng);
            steps.push(Step { lock, pages, cpu });
        }
        if tmpl.locks.late_hot {
            // Stable-partition the lock assignments so hot items are
            // acquired last (shortest possible 2PL hold times).
            let locks: Vec<_> = steps.iter().map(|s| s.lock).collect();
            let (cold, hot): (Vec<_>, Vec<_>) = locks
                .into_iter()
                .partition(|l| !matches!(l, Some((item, _)) if item.0 < self.spec.hot_items));
            for (s, l) in steps.iter_mut().zip(cold.into_iter().chain(hot)) {
                s.lock = l;
            }
        }
        // Acquire hot items in ascending id order — the canonical
        // deadlock-avoidance discipline every serious TPC-C
        // implementation applies to its warehouse/district updates.
        let mut hot_positions: Vec<usize> = Vec::new();
        let mut hot_locks: Vec<(ItemId, LockMode)> = Vec::new();
        for (i, st) in steps.iter().enumerate() {
            if let Some((item, mode)) = st.lock {
                if item.0 < self.spec.hot_items {
                    hot_positions.push(i);
                    hot_locks.push((item, mode));
                }
            }
        }
        if hot_locks.len() > 1 {
            hot_locks.sort_by_key(|(item, _)| item.0);
            for (pos, lock) in hot_positions.into_iter().zip(hot_locks) {
                steps[pos].lock = Some(lock);
            }
        }
        if tmpl.locks.upgrade_prob > 0.0 {
            // Read-then-update: prepend a shared acquisition of the same
            // hot item ahead of (some) hot exclusive locks.
            for j in 0..steps.len() {
                let Some((item, LockMode::Exclusive)) = steps[j].lock else {
                    continue;
                };
                if item.0 < self.spec.hot_items && self.rng.chance(tmpl.locks.upgrade_prob) {
                    if let Some(i) = (0..j).find(|&i| steps[i].lock.is_none()) {
                        steps[i].lock = Some((item, LockMode::Shared));
                    }
                }
            }
        }
        // Normalize repeated requests: drop any lock whose item was
        // already requested earlier in an equal-or-stronger mode (the lock
        // manager would treat them as no-op re-grants anyway). X after S
        // on the same item survives — that is the upgrade.
        let mut seen: Vec<(ItemId, LockMode)> = Vec::new();
        for st in steps.iter_mut() {
            let Some((item, mode)) = st.lock else {
                continue;
            };
            match seen.iter_mut().find(|(i, _)| *i == item) {
                Some((_, held)) => {
                    if *held == LockMode::Exclusive || mode == *held {
                        st.lock = None;
                    } else {
                        *held = LockMode::Exclusive; // S -> X upgrade kept
                    }
                }
                None => seen.push((item, mode)),
            }
        }
        TxnBody {
            txn_type: ti as u32,
            priority,
            steps,
        }
    }

    /// Generate a body with a freshly drawn priority class.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, fallible-free stream
    pub fn next(&mut self) -> TxnBody {
        let p = self.next_priority();
        self.next_body(p)
    }

    /// Sample the intrinsic demand (CPU + uncached I/O) of one transaction
    /// without building the body — used for C² measurements.
    pub fn sample_intrinsic_demand(&mut self, io_cost: f64) -> f64 {
        let ti = self.rng.weighted_index(&self.weights);
        let tmpl = &self.spec.templates[ti];
        let cpu: f64 = (0..tmpl.steps)
            .map(|_| tmpl.cpu_per_step.sample(&mut self.rng))
            .sum();
        cpu + (tmpl.steps * tmpl.pages_per_step) as f64 * io_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            templates: vec![
                TxnTemplate {
                    name: "short",
                    weight: 0.9,
                    steps: 2,
                    cpu_per_step: Dist::exp(0.001),
                    pages_per_step: 1,
                    locks: LockProfile {
                        lock_prob: 1.0,
                        hot_prob: 0.5,
                        write_prob: 0.5,
                        late_hot: false,
                        upgrade_prob: 0.0,
                    },
                },
                TxnTemplate {
                    name: "long",
                    weight: 0.1,
                    steps: 10,
                    cpu_per_step: Dist::exp(0.005),
                    pages_per_step: 3,
                    locks: LockProfile::NONE,
                },
            ],
            db_pages: 1000,
            page_theta: 0.5,
            hot_items: 10,
            item_space: 100_000,
        }
    }

    #[test]
    fn bodies_match_template_shape() {
        let mut g = TxnGen::new(tiny_spec(), 1);
        for _ in 0..100 {
            let b = g.next_body(Priority::Low);
            let t = &g.spec().templates[b.txn_type as usize];
            assert_eq!(b.steps.len(), t.steps as usize);
            for s in &b.steps {
                assert_eq!(s.pages.len(), t.pages_per_step as usize);
                assert!(s.cpu >= 0.0);
                if t.locks.lock_prob == 0.0 {
                    assert!(s.lock.is_none());
                }
            }
        }
    }

    #[test]
    fn mix_respects_weights() {
        let mut g = TxnGen::new(tiny_spec(), 2);
        let n = 20_000;
        let long = (0..n)
            .filter(|_| g.next_body(Priority::Low).txn_type == 1)
            .count();
        let frac = long as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "long fraction {frac}");
    }

    #[test]
    fn hot_items_come_from_hot_range() {
        let mut g = TxnGen::new(tiny_spec(), 3);
        let mut saw_hot = false;
        let mut saw_regular = false;
        for _ in 0..500 {
            let b = g.next_body(Priority::Low);
            for s in &b.steps {
                if let Some((item, _)) = s.lock {
                    if item.0 < 10 {
                        saw_hot = true;
                    } else {
                        saw_regular = true;
                        assert!(item.0 >= 10, "regular items above hot range");
                    }
                }
            }
        }
        assert!(saw_hot && saw_regular);
    }

    #[test]
    fn analytic_stats_match_samples() {
        let spec = tiny_spec();
        let io = 0.005;
        let (mean, c2) = spec.intrinsic_demand_stats(io);
        let mut g = TxnGen::new(spec, 4);
        let n = 200_000;
        let mut w = xsched_sim::Welford::new();
        for _ in 0..n {
            w.push(g.sample_intrinsic_demand(io));
        }
        assert!(
            (w.mean() - mean).abs() / mean < 0.02,
            "mean: sampled {} analytic {mean}",
            w.mean()
        );
        assert!(
            (w.c2() - c2).abs() / c2 < 0.08,
            "c2: sampled {} analytic {c2}",
            w.c2()
        );
    }

    #[test]
    fn priority_fraction_default_ten_percent() {
        let mut g = TxnGen::new(tiny_spec(), 5);
        let n = 50_000;
        let high = (0..n)
            .filter(|_| g.next_priority() == Priority::High)
            .count();
        let frac = high as f64 / n as f64;
        assert!((frac - 0.10).abs() < 0.01, "high fraction {frac}");
    }

    #[test]
    fn deterministic_generation() {
        let a: Vec<u32> = {
            let mut g = TxnGen::new(tiny_spec(), 9);
            (0..50).map(|_| g.next().txn_type).collect()
        };
        let b: Vec<u32> = {
            let mut g = TxnGen::new(tiny_spec(), 9);
            (0..50).map(|_| g.next().txn_type).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mean_helpers() {
        let spec = tiny_spec();
        // mean pages = 0.9*2 + 0.1*30 = 4.8
        assert!((spec.mean_pages() - 4.8).abs() < 1e-12);
        // mean cpu = 0.9*0.002 + 0.1*0.05 = 0.0068
        assert!((spec.mean_cpu() - 0.0068).abs() < 1e-12);
    }
}
