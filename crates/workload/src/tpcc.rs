//! TPC-C-like inventory workloads.
//!
//! Five transaction types with the standard mix weights (NewOrder 45%,
//! Payment 43%, OrderStatus/Delivery/StockLevel 4% each). Demands are
//! low-variability (per-step exponential bursts; C² of the intrinsic
//! demand ≈ 1.2, inside the paper's measured 1.0–1.5 band). NewOrder and
//! Payment take exclusive locks on the hot warehouse/district rows, which
//! is what makes the inventory workloads lock-bound under Repeatable Read
//! (setups 1–2 in §5.2).
//!
//! The three Table-1 variants share the mix and differ in database
//! geometry: `cpu_inventory` (10 warehouses, fits in the buffer pool),
//! `io_inventory` (60 warehouses, 6 GB database against a 100 MB pool),
//! and `balanced_inventory` (10 warehouses against a pool that only
//! half-fits).

use crate::spec::{LockProfile, TxnTemplate, WorkloadSpec};
use xsched_sim::Dist;

/// The five-type TPC-C transaction mix.
pub fn templates() -> Vec<TxnTemplate> {
    vec![
        TxnTemplate {
            name: "NewOrder",
            weight: 0.45,
            steps: 12,
            cpu_per_step: Dist::exp(0.0006),
            pages_per_step: 2,
            locks: LockProfile {
                lock_prob: 0.9,
                hot_prob: 0.12,
                write_prob: 0.25,
                late_hot: false,
                upgrade_prob: 0.0,
            },
        },
        TxnTemplate {
            name: "Payment",
            weight: 0.43,
            steps: 4,
            cpu_per_step: Dist::exp(0.0004),
            pages_per_step: 1,
            locks: LockProfile {
                lock_prob: 0.9,
                hot_prob: 0.5,
                write_prob: 0.7,
                late_hot: true,
                upgrade_prob: 0.9,
            },
        },
        TxnTemplate {
            name: "OrderStatus",
            weight: 0.04,
            steps: 4,
            cpu_per_step: Dist::exp(0.0005),
            pages_per_step: 2,
            locks: LockProfile {
                lock_prob: 0.8,
                hot_prob: 0.3,
                write_prob: 0.0,
                late_hot: false,
                upgrade_prob: 0.0,
            },
        },
        // Delivery is the heavy type: in real TPC-C it processes a batch
        // of ten deferred orders, which is what lifts the mixture C² into
        // the paper's measured 1.0–1.5 band.
        TxnTemplate {
            name: "Delivery",
            weight: 0.04,
            steps: 36,
            cpu_per_step: Dist::exp(0.0009),
            pages_per_step: 2,
            locks: LockProfile {
                lock_prob: 0.7,
                hot_prob: 0.08,
                write_prob: 0.8,
                late_hot: true,
                upgrade_prob: 0.0,
            },
        },
        TxnTemplate {
            name: "StockLevel",
            weight: 0.04,
            steps: 8,
            cpu_per_step: Dist::exp(0.0015),
            pages_per_step: 4,
            locks: LockProfile {
                lock_prob: 0.8,
                hot_prob: 0.3,
                write_prob: 0.0,
                late_hot: false,
                upgrade_prob: 0.0,
            },
        },
    ]
}

/// `W_CPU-inventory`: 10 warehouses (≈ 1 GB), buffer pool ≥ database →
/// CPU-bound once warm.
pub fn cpu_inventory() -> WorkloadSpec {
    WorkloadSpec {
        name: "W_CPU-inventory",
        templates: templates(),
        db_pages: 40_000,
        page_theta: 1.0,
        hot_items: 30, // 10 warehouse rows + 20 hottest district rows
        item_space: 1_000_000,
    }
}

/// `W_IO-inventory`: 60 warehouses (≈ 6 GB) against a 100 MB pool →
/// almost every page access is a disk read.
pub fn io_inventory() -> WorkloadSpec {
    WorkloadSpec {
        name: "W_IO-inventory",
        templates: templates(),
        db_pages: 600_000,
        page_theta: 0.6,
        hot_items: 120, // 60 warehouse rows + hottest district rows
        item_space: 6_000_000,
    }
}

/// `W_CPU+IO-inventory`: 10 warehouses against a pool that holds only part
/// of the working set → both CPU and disk highly utilized.
pub fn balanced_inventory() -> WorkloadSpec {
    WorkloadSpec {
        name: "W_CPU+IO-inventory",
        templates: templates(),
        db_pages: 100_000,
        page_theta: 1.0,
        hot_items: 30,
        item_space: 1_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_weights_sum_to_one() {
        let total: f64 = templates().iter().map(|t| t.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn c2_is_in_the_papers_tpcc_band() {
        // §3.2: "In the TPC-C benchmark the C2 value varies between 1.0
        // and 1.5". Check the CPU-bound (cached: io_cost 0) view.
        let (_, c2) = cpu_inventory().intrinsic_demand_stats(0.0);
        assert!((1.0..=1.6).contains(&c2), "TPC-C C2 = {c2}");
        // And the I/O view (uncached page cost 5 ms).
        let (_, c2io) = io_inventory().intrinsic_demand_stats(0.005);
        assert!((0.5..=2.0).contains(&c2io), "TPC-C I/O C2 = {c2io}");
    }

    #[test]
    fn new_order_and_payment_dominate() {
        let t = templates();
        assert!(t[0].weight + t[1].weight > 0.85);
        assert_eq!(t[0].name, "NewOrder");
        assert_eq!(t[1].name, "Payment");
    }

    #[test]
    fn inventory_mixes_write_hot_items() {
        for spec in [cpu_inventory(), io_inventory(), balanced_inventory()] {
            let writes_hot = spec
                .templates
                .iter()
                .any(|t| t.locks.hot_prob > 0.0 && t.locks.write_prob > 0.5);
            assert!(writes_hot, "{} lacks hot write locks", spec.name);
        }
    }

    #[test]
    fn io_variant_is_bigger_than_pool_sized_variants() {
        assert!(io_inventory().db_pages > 10 * cpu_inventory().db_pages / 2);
        assert!(balanced_inventory().db_pages > cpu_inventory().db_pages);
    }
}
