//! TPC-W-like web-commerce workloads.
//!
//! The 14 TPC-W interaction types are collapsed into weighted templates
//! that preserve what matters to the paper: the *browsing* mix is
//! read-mostly with rare but enormous interactions (best-seller and admin
//! queries), giving an intrinsic-demand C² ≈ 15 — the number the paper
//! measures for TPC-W in §3.2 and the value that forces MPLs of 10–30 at
//! high load (Fig. 10). The *ordering* mix shifts weight onto
//! cart/buy interactions: more exclusive locks, milder tail.

use crate::spec::{LockProfile, TxnTemplate, WorkloadSpec};
use xsched_sim::Dist;

/// Browsing-mix templates (TPC-W "Browsing" profile: 95% browse/search).
pub fn browsing_templates() -> Vec<TxnTemplate> {
    vec![
        TxnTemplate {
            name: "Browse",
            weight: 0.70,
            steps: 12,
            cpu_per_step: Dist::exp(0.001),
            pages_per_step: 1,
            locks: LockProfile::read_mostly(0.3),
        },
        TxnTemplate {
            name: "Search",
            weight: 0.15,
            steps: 16,
            cpu_per_step: Dist::exp(0.002),
            pages_per_step: 2,
            locks: LockProfile::read_mostly(0.3),
        },
        TxnTemplate {
            name: "ProductDetail",
            weight: 0.10,
            steps: 8,
            cpu_per_step: Dist::exp(0.001),
            pages_per_step: 1,
            locks: LockProfile::read_mostly(0.3),
        },
        TxnTemplate {
            name: "BestSeller",
            weight: 0.04,
            steps: 40,
            cpu_per_step: Dist::exp(0.0125),
            pages_per_step: 20,
            locks: LockProfile::read_mostly(0.2),
        },
        TxnTemplate {
            name: "AdminUpdate",
            weight: 0.01,
            steps: 60,
            cpu_per_step: Dist::exp(0.030),
            pages_per_step: 30,
            locks: LockProfile {
                lock_prob: 0.3,
                hot_prob: 0.02,
                write_prob: 0.5,
                late_hot: false,
                upgrade_prob: 0.0,
            },
        },
    ]
}

/// Ordering-mix templates (TPC-W "Ordering" profile: 50% buy path).
pub fn ordering_templates() -> Vec<TxnTemplate> {
    vec![
        TxnTemplate {
            name: "ShoppingCart",
            weight: 0.35,
            steps: 12,
            cpu_per_step: Dist::exp(0.0015),
            pages_per_step: 1,
            locks: LockProfile {
                lock_prob: 0.5,
                hot_prob: 0.05,
                write_prob: 0.7,
                late_hot: false,
                upgrade_prob: 0.0,
            },
        },
        TxnTemplate {
            name: "BuyRequest",
            weight: 0.25,
            steps: 16,
            cpu_per_step: Dist::exp(0.002),
            pages_per_step: 1,
            locks: LockProfile {
                lock_prob: 0.5,
                hot_prob: 0.05,
                write_prob: 0.8,
                late_hot: false,
                upgrade_prob: 0.0,
            },
        },
        TxnTemplate {
            name: "BuyConfirm",
            weight: 0.20,
            steps: 24,
            cpu_per_step: Dist::exp(0.0025),
            pages_per_step: 1,
            locks: LockProfile {
                lock_prob: 0.5,
                hot_prob: 0.15,
                write_prob: 0.8,
                late_hot: true,
                upgrade_prob: 0.5,
            },
        },
        TxnTemplate {
            name: "Search",
            weight: 0.15,
            steps: 12,
            cpu_per_step: Dist::exp(0.0015),
            pages_per_step: 1,
            locks: LockProfile {
                lock_prob: 0.8,
                hot_prob: 0.3,
                write_prob: 0.0,
                late_hot: false,
                upgrade_prob: 0.0,
            },
        },
        TxnTemplate {
            name: "BestSeller",
            weight: 0.05,
            steps: 40,
            cpu_per_step: Dist::exp(0.0125),
            pages_per_step: 4,
            locks: LockProfile::read_mostly(0.2),
        },
    ]
}

/// `W_CPU-browsing`: 100 EBs, 10 K items — the database fits in the pool,
/// so the huge best-seller scans burn CPU, not disk.
pub fn cpu_browsing() -> WorkloadSpec {
    WorkloadSpec {
        name: "W_CPU-browsing",
        templates: browsing_templates(),
        db_pages: 30_000,
        page_theta: 0.9,
        hot_items: 50,
        item_space: 500_000,
    }
}

/// `W_IO-browsing`: 500 EBs against a 100 MB pool — little locality, most
/// accesses miss.
pub fn io_browsing() -> WorkloadSpec {
    WorkloadSpec {
        name: "W_IO-browsing",
        templates: browsing_templates(),
        db_pages: 200_000,
        page_theta: 0.5,
        hot_items: 50,
        item_space: 500_000,
    }
}

/// `W_CPU-ordering`: the ordering mix on the cacheable database.
pub fn cpu_ordering() -> WorkloadSpec {
    WorkloadSpec {
        name: "W_CPU-ordering",
        templates: ordering_templates(),
        db_pages: 30_000,
        page_theta: 0.9,
        hot_items: 25,
        item_space: 500_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browsing_c2_matches_papers_fifteen() {
        // §3.2: "The variability in the TPC-W benchmark is higher
        // exhibiting C2 values of 15."
        let (_, c2) = cpu_browsing().intrinsic_demand_stats(0.0);
        assert!((11.0..=19.0).contains(&c2), "browsing C2 = {c2}");
    }

    #[test]
    fn io_browsing_keeps_high_variability() {
        let (_, c2) = io_browsing().intrinsic_demand_stats(0.005);
        assert!(c2 > 8.0, "I/O browsing C2 = {c2}");
    }

    #[test]
    fn ordering_is_less_variable_than_browsing() {
        let (_, c2_b) = cpu_browsing().intrinsic_demand_stats(0.0);
        let (_, c2_o) = cpu_ordering().intrinsic_demand_stats(0.0);
        assert!(c2_o < c2_b / 2.0, "ordering {c2_o} vs browsing {c2_b}");
        assert!(c2_o > 1.0, "but still super-exponential: {c2_o}");
    }

    #[test]
    fn ordering_writes_more_than_browsing() {
        let write_weight = |ts: &[TxnTemplate]| -> f64 {
            ts.iter()
                .map(|t| t.weight * t.locks.lock_prob * t.locks.write_prob)
                .sum()
        };
        assert!(write_weight(&ordering_templates()) > 3.0 * write_weight(&browsing_templates()));
    }

    #[test]
    fn mix_weights_sum_to_one() {
        for ts in [browsing_templates(), ordering_templates()] {
            let total: f64 = ts.iter().map(|t| t.weight).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }
}
