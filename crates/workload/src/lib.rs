#![warn(missing_docs)]
//! Transactional workload generation.
//!
//! The paper builds its workload matrix (Table 1) from two benchmarks —
//! TPC-C and TPC-W — varied across database size, buffer pool size and
//! transaction mix, then crosses them with hardware configurations into 17
//! setups (Table 2). This crate provides:
//!
//! * [`spec`] — parametric transaction templates (steps, CPU demand
//!   distributions, page footprints, lock profiles) and a generator that
//!   turns them into `xsched_dbms::TxnBody` programs,
//! * [`tpcc`] — the 5-type inventory mix (C² ≈ 1–1.5),
//! * [`tpcw`] — browsing and ordering web-commerce mixes (browsing
//!   C² ≈ 15, matching §3.2's measurement),
//! * [`trace`] — synthetic stand-ins for the paper's proprietary top-10
//!   online retailer / auction-site traces (C² ≈ 2),
//! * [`client`] — closed (think-time) and open (Poisson) arrival models,
//! * [`chaos`] — traffic-shape and fault chaos specs (arrival bursts,
//!   flash crowds, think-time overrides, service-side fault layers) for
//!   the robustness experiments,
//! * [`setups`][mod@setups] — Table 1's six workloads and Table 2's 17 setups, each
//!   mapped to concrete hardware and DBMS configurations.

pub mod chaos;
pub mod client;
pub mod setups;
pub mod spec;
pub mod tpcc;
pub mod tpcw;
pub mod trace;

pub use chaos::{BurstSpec, ChaosSpec, FlashSpec};
pub use client::ArrivalProcess;
pub use setups::{labeled_setups, setup, setup_ids, setups, setups_where, workloads, Setup};
pub use spec::{LockProfile, TxnGen, TxnTemplate, WorkloadSpec};
