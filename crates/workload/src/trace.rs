//! Synthetic stand-ins for the paper's commercial traces.
//!
//! §3.2 compares the benchmarks against traces from "one of the top-10
//! online retailers" and "one of the top-10 auctioning sites in the US"
//! and reports C² ≈ 2 for both — closer to TPC-C than to TPC-W. Those
//! traces are proprietary, so we substitute mixes tuned to the same
//! statistic: a dominant population of short request-backed transactions
//! with a modest heavy fringe. The only property the paper uses is the
//! C² value, which the tests pin to the reported ≈ 2.

use crate::spec::{LockProfile, TxnTemplate, WorkloadSpec};
use xsched_sim::Dist;

/// Synthetic "top-10 online retailer" mix, C² ≈ 2.
pub fn retailer() -> WorkloadSpec {
    WorkloadSpec {
        name: "trace-retailer",
        templates: vec![
            TxnTemplate {
                name: "CatalogView",
                weight: 0.85,
                steps: 5,
                cpu_per_step: Dist::exp(0.002),
                pages_per_step: 2,
                locks: LockProfile::read_mostly(0.2),
            },
            TxnTemplate {
                name: "CartUpdate",
                weight: 0.12,
                steps: 8,
                cpu_per_step: Dist::exp(0.005),
                pages_per_step: 3,
                locks: LockProfile {
                    lock_prob: 0.5,
                    hot_prob: 0.05,
                    write_prob: 0.8,
                    late_hot: false,
                    upgrade_prob: 0.0,
                },
            },
            TxnTemplate {
                name: "Checkout",
                weight: 0.03,
                steps: 12,
                cpu_per_step: Dist::exp(0.012),
                pages_per_step: 6,
                locks: LockProfile {
                    lock_prob: 0.6,
                    hot_prob: 0.10,
                    write_prob: 0.9,
                    late_hot: false,
                    upgrade_prob: 0.0,
                },
            },
        ],
        db_pages: 50_000,
        page_theta: 0.9,
        hot_items: 100,
        item_space: 1_000_000,
    }
}

/// Synthetic "top-10 auction site" mix, C² ≈ 2.
pub fn auction() -> WorkloadSpec {
    WorkloadSpec {
        name: "trace-auction",
        templates: vec![
            TxnTemplate {
                name: "ViewItem",
                weight: 0.80,
                steps: 4,
                cpu_per_step: Dist::exp(0.002),
                pages_per_step: 2,
                locks: LockProfile::read_mostly(0.2),
            },
            TxnTemplate {
                name: "PlaceBid",
                weight: 0.17,
                steps: 6,
                cpu_per_step: Dist::exp(0.004),
                pages_per_step: 2,
                locks: LockProfile {
                    lock_prob: 0.7,
                    hot_prob: 0.15,
                    write_prob: 0.9,
                    late_hot: false,
                    upgrade_prob: 0.0,
                },
            },
            TxnTemplate {
                name: "CloseAuction",
                weight: 0.03,
                steps: 10,
                cpu_per_step: Dist::exp(0.014),
                pages_per_step: 5,
                locks: LockProfile {
                    lock_prob: 0.6,
                    hot_prob: 0.20,
                    write_prob: 1.0,
                    late_hot: false,
                    upgrade_prob: 0.0,
                },
            },
        ],
        db_pages: 50_000,
        page_theta: 0.9,
        hot_items: 200,
        item_space: 1_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_traces_have_c2_near_two() {
        // §3.2: "the traces exhibit values for C2 of around 2".
        for spec in [retailer(), auction()] {
            let (_, c2) = spec.intrinsic_demand_stats(0.0);
            assert!((1.4..=3.0).contains(&c2), "{}: C2 = {c2}", spec.name);
        }
    }

    #[test]
    fn traces_sit_between_tpcc_and_tpcw() {
        let (_, tpcc) = crate::tpcc::cpu_inventory().intrinsic_demand_stats(0.0);
        let (_, tpcw) = crate::tpcw::cpu_browsing().intrinsic_demand_stats(0.0);
        for spec in [retailer(), auction()] {
            let (_, c2) = spec.intrinsic_demand_stats(0.0);
            assert!(
                c2 > tpcc && c2 < tpcw,
                "{}: {c2} vs {tpcc}/{tpcw}",
                spec.name
            );
        }
    }
}
