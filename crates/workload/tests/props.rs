//! Property-based tests for workload generation.

use proptest::prelude::*;
use xsched_dbms::txn::{LockMode, Priority};
use xsched_workload::{setup, TxnGen};

proptest! {
    /// Every generated body is structurally valid for every setup: step
    /// counts match a template, pages are within the database, items are
    /// within the hot+regular space, and CPU demands are finite and
    /// nonnegative.
    #[test]
    fn generated_bodies_are_valid(id in 1u32..=17, seed in any::<u64>()) {
        let s = setup(id);
        let db_pages = s.workload.db_pages;
        let item_bound = s.workload.hot_items + s.workload.item_space;
        let mut g = TxnGen::new(s.workload, seed);
        for _ in 0..50 {
            let b = g.next();
            let t = &g.spec().templates[b.txn_type as usize];
            prop_assert_eq!(b.steps.len(), t.steps as usize);
            for st in &b.steps {
                prop_assert!(st.cpu.is_finite() && st.cpu >= 0.0);
                prop_assert_eq!(st.pages.len(), t.pages_per_step as usize);
                for p in &st.pages {
                    prop_assert!(p.0 < db_pages);
                }
                if let Some((item, _)) = st.lock {
                    prop_assert!(item.0 < item_bound);
                }
            }
        }
    }

    /// Under Repeatable Read semantics the generator's upgrade pattern is
    /// well-formed: a shared lock on an item always precedes the exclusive
    /// lock on the same item within a body (never after — that would be a
    /// guaranteed self-deadlock in naive managers).
    #[test]
    fn upgrade_reads_precede_writes(seed in any::<u64>()) {
        let s = setup(1); // Payment has upgrade_prob > 0
        let mut g = TxnGen::new(s.workload, seed);
        for _ in 0..100 {
            let b = g.next();
            for (i, st) in b.steps.iter().enumerate() {
                if let Some((item, LockMode::Shared)) = st.lock {
                    // If the same item appears exclusively later, fine; it
                    // must never appear exclusively *earlier*.
                    for earlier in &b.steps[..i] {
                        if let Some((it2, LockMode::Exclusive)) = earlier.lock {
                            prop_assert!(
                                it2 != item,
                                "S after X on the same item within one txn"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The high-priority fraction concentrates near its setting.
    #[test]
    fn priority_fraction_tracks_setting(frac in 0.0f64..1.0, seed in any::<u64>()) {
        let s = setup(3);
        let mut g = TxnGen::new(s.workload, seed).with_high_fraction(frac);
        let n = 3000;
        let high = (0..n).filter(|_| g.next_priority() == Priority::High).count();
        let got = high as f64 / n as f64;
        prop_assert!((got - frac).abs() < 0.05, "frac {frac}: got {got}");
    }

    /// Analytic intrinsic-demand stats are consistent with sampling for
    /// every setup's workload.
    #[test]
    fn demand_stats_consistent(id in 1u32..=17) {
        let s = setup(id);
        let (mean, c2) = s.workload.intrinsic_demand_stats(0.005);
        prop_assert!(mean > 0.0 && mean.is_finite());
        prop_assert!(c2 >= 0.0 && c2.is_finite());
        let mut g = TxnGen::new(s.workload, 99);
        let n = 30_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += g.sample_intrinsic_demand(0.005);
        }
        let m = sum / n as f64;
        prop_assert!((m - mean).abs() / mean < 0.25, "sampled {m} vs analytic {mean}");
    }
}
