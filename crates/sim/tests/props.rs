//! Property-based tests for the DES kernel, distributions and statistics.

use proptest::prelude::*;
use xsched_sim::zipf::Zipf;
use xsched_sim::{Dist, EventQueue, SampleSet, SimRng, SimTime, Welford};

proptest! {
    /// Events always pop in nondecreasing time order, with insertion order
    /// breaking ties — regardless of the schedule pattern.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(*t), i);
        }
        let mut last = (SimTime::ZERO, 0usize);
        let mut first = true;
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            popped += 1;
            if !first {
                prop_assert!(t >= last.0);
                if t == last.0 {
                    prop_assert!(i > last.1, "ties must break by insertion order");
                }
            }
            prop_assert_eq!(t, SimTime::from_nanos(times[i]));
            last = (t, i);
            first = false;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// All distributions produce nonnegative, finite samples with means
    /// near the analytic value.
    #[test]
    fn distributions_sane(seed in any::<u64>(), mean in 0.001f64..10.0, c2 in 1.0f64..20.0) {
        let dists = [
            Dist::constant(mean),
            Dist::exp(mean),
            Dist::fit_h2(mean, c2),
            Dist::Erlang { k: 3, mean },
            Dist::Uniform { lo: 0.5 * mean, hi: 1.5 * mean },
        ];
        let mut rng = SimRng::seed_from_u64(seed);
        for d in &dists {
            let n = 4000;
            let mut sum = 0.0;
            for _ in 0..n {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{d:?} produced {x}");
                sum += x;
            }
            let m = sum / n as f64;
            // Loose bound: 4000 samples of a c2<=20 distribution.
            prop_assert!((m - mean).abs() < mean * 0.5,
                "{d:?}: sample mean {m} vs {mean}");
        }
    }

    /// Zipf samples always fall in the domain, for any size/skew.
    #[test]
    fn zipf_in_domain(n in 1u64..5_000_000, theta in 0.0f64..1.5, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Welford merge is equivalent to sequential accumulation at any split
    /// point.
    #[test]
    fn welford_merge_any_split(xs in proptest::collection::vec(-1e3f64..1e3, 2..200), split in 0usize..200) {
        let split = split % xs.len();
        let mut all = Welford::new();
        for &x in &xs { all.push(x); }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert!((a.mean() - all.mean()).abs() < 1e-8);
        prop_assert!((a.variance() - all.variance()).abs() < 1e-6 * all.variance().max(1.0));
    }

    /// Percentiles are monotone in the quantile and bracketed by min/max.
    #[test]
    fn percentiles_monotone(xs in proptest::collection::vec(0.0f64..1e6, 1..300)) {
        let mut s = SampleSet::new();
        for &x in &xs { s.push(x); }
        let p0 = s.percentile(0.0);
        let p50 = s.percentile(0.5);
        let p100 = s.percentile(1.0);
        prop_assert!(p0 <= p50 && p50 <= p100);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(0.0, f64::max);
        prop_assert_eq!(p0, lo);
        prop_assert_eq!(p100, hi);
    }

    /// Derived RNG streams are reproducible and label-sensitive.
    #[test]
    fn rng_streams(seed in any::<u64>()) {
        let a: Vec<u64> = {
            let mut r = SimRng::derive(seed, "x");
            (0..8).map(|_| r.uniform().to_bits()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::derive(seed, "x");
            (0..8).map(|_| r.uniform().to_bits()).collect()
        };
        prop_assert_eq!(&a, &b);
        let c: Vec<u64> = {
            let mut r = SimRng::derive(seed, "y");
            (0..8).map(|_| r.uniform().to_bits()).collect()
        };
        prop_assert_ne!(&a, &c);
    }
}
