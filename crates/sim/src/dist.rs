//! Service-time and think-time distributions.
//!
//! The paper's analysis hinges on the squared coefficient of variation
//! (C² = Var/Mean²) of transaction service demands, so every variant here
//! exposes its analytic [`mean`](Dist::mean) and [`c2`](Dist::c2) and the
//! unit tests check sampled moments against them.
//!
//! The 2-phase hyperexponential ([`Dist::HyperExp2`]) is the paper's
//! workhorse for modelling high-variability (C² up to 15) TPC-W-like
//! demands; [`Dist::fit_h2`] reproduces the standard balanced-means fit
//! used to parameterize the CTMC of Section 4.2.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A nonnegative continuous distribution with known first two moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always `value`. C² = 0.
    Deterministic {
        /// The constant value returned by every sample.
        value: f64,
    },
    /// Exponential with the given mean. C² = 1.
    Exponential {
        /// Mean of the distribution (1/rate).
        mean: f64,
    },
    /// Two-phase hyperexponential: with probability `p` the sample is
    /// Exp(1/`mean1`), otherwise Exp(1/`mean2`). C² ≥ 1.
    HyperExp2 {
        /// Probability of drawing from the first phase.
        p: f64,
        /// Mean of the first exponential phase.
        mean1: f64,
        /// Mean of the second exponential phase.
        mean2: f64,
    },
    /// Sum of `k` iid exponentials, total mean `mean`. C² = 1/k < 1.
    Erlang {
        /// Number of exponential stages (≥ 1).
        k: u32,
        /// Mean of the whole sum.
        mean: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Pareto with shape `alpha` truncated to `[lo, hi]`, sampled by
    /// inverse transform on the truncated CDF. Used for heavy-tailed
    /// "browsing" interactions.
    BoundedPareto {
        /// Scale / lower cutoff (> 0).
        lo: f64,
        /// Upper cutoff (> `lo`).
        hi: f64,
        /// Tail index (> 0, ≠ 1, ≠ 2 for the moment formulas).
        alpha: f64,
    },
}

impl Dist {
    /// Write a structural fingerprint (variant tag + parameter bit
    /// patterns) — used by measurement-cache keys to identify workload
    /// configurations without `Debug` formatting.
    pub fn fingerprint_into(&self, fp: &mut crate::StableFp) {
        match *self {
            Dist::Deterministic { value } => {
                fp.write_u64(0);
                fp.write_f64(value);
            }
            Dist::Exponential { mean } => {
                fp.write_u64(1);
                fp.write_f64(mean);
            }
            Dist::HyperExp2 { p, mean1, mean2 } => {
                fp.write_u64(2);
                fp.write_f64(p);
                fp.write_f64(mean1);
                fp.write_f64(mean2);
            }
            Dist::Erlang { k, mean } => {
                fp.write_u64(3);
                fp.write_u32(k);
                fp.write_f64(mean);
            }
            Dist::Uniform { lo, hi } => {
                fp.write_u64(4);
                fp.write_f64(lo);
                fp.write_f64(hi);
            }
            Dist::BoundedPareto { lo, hi, alpha } => {
                fp.write_u64(5);
                fp.write_f64(lo);
                fp.write_f64(hi);
                fp.write_f64(alpha);
            }
        }
    }

    /// Convenience constructor for [`Dist::Deterministic`].
    pub fn constant(value: f64) -> Dist {
        Dist::Deterministic { value }
    }

    /// Convenience constructor for [`Dist::Exponential`].
    pub fn exp(mean: f64) -> Dist {
        Dist::Exponential { mean }
    }

    /// Fit a 2-phase hyperexponential with *balanced means*
    /// (`p·mean1 = (1-p)·mean2`) matching the requested `mean` and `c2`.
    ///
    /// Requires `c2 >= 1`; `c2 == 1` degenerates to the exponential.
    /// This is the fit the paper uses to drive the flexible-multiserver
    /// CTMC with C² ∈ {2, 5, 10, 15}.
    pub fn fit_h2(mean: f64, c2: f64) -> Dist {
        assert!(mean > 0.0, "mean must be positive");
        assert!(c2 >= 1.0, "H2 requires C^2 >= 1, got {c2}");
        if (c2 - 1.0).abs() < 1e-12 {
            return Dist::Exponential { mean };
        }
        // Balanced-means fit (e.g. Allen, "Probability, Statistics and
        // Queueing Theory"): p = (1 + sqrt((c2-1)/(c2+1))) / 2,
        // mean1 = mean/(2p), mean2 = mean/(2(1-p)).
        let p = 0.5 * (1.0 + ((c2 - 1.0) / (c2 + 1.0)).sqrt());
        let mean1 = mean / (2.0 * p);
        let mean2 = mean / (2.0 * (1.0 - p));
        Dist::HyperExp2 { p, mean1, mean2 }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Dist::Deterministic { value } => value,
            Dist::Exponential { mean } => rng.exp(mean),
            Dist::HyperExp2 { p, mean1, mean2 } => {
                if rng.chance(p) {
                    rng.exp(mean1)
                } else {
                    rng.exp(mean2)
                }
            }
            Dist::Erlang { k, mean } => {
                let stage_mean = mean / k as f64;
                (0..k).map(|_| rng.exp(stage_mean)).sum()
            }
            Dist::Uniform { lo, hi } => rng.uniform_range(lo, hi),
            Dist::BoundedPareto { lo, hi, alpha } => {
                // Inverse transform of the truncated Pareto CDF.
                let u = rng.uniform();
                let la = lo.powf(alpha);
                let ha = hi.powf(alpha);
                let x = (1.0 - u * (1.0 - la / ha)) / la;
                x.powf(-1.0 / alpha)
            }
        }
    }

    /// Analytic mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Deterministic { value } => value,
            Dist::Exponential { mean } => mean,
            Dist::HyperExp2 { p, mean1, mean2 } => p * mean1 + (1.0 - p) * mean2,
            Dist::Erlang { mean, .. } => mean,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::BoundedPareto { lo, hi, alpha } => {
                // E[X] for Pareto(alpha, lo) truncated at hi, alpha != 1.
                let la = lo.powf(alpha);
                let ha = hi.powf(alpha);
                let norm = 1.0 - la / ha;
                (alpha * la / (alpha - 1.0)) * (lo.powf(1.0 - alpha) - hi.powf(1.0 - alpha)) / norm
            }
        }
    }

    /// Analytic second moment `E[X²]`.
    pub fn second_moment(&self) -> f64 {
        match *self {
            Dist::Deterministic { value } => value * value,
            Dist::Exponential { mean } => 2.0 * mean * mean,
            Dist::HyperExp2 { p, mean1, mean2 } => {
                2.0 * (p * mean1 * mean1 + (1.0 - p) * mean2 * mean2)
            }
            Dist::Erlang { k, mean } => {
                let k = k as f64;
                mean * mean * (k + 1.0) / k
            }
            Dist::Uniform { lo, hi } => (hi * hi + hi * lo + lo * lo) / 3.0,
            Dist::BoundedPareto { lo, hi, alpha } => {
                let la = lo.powf(alpha);
                let ha = hi.powf(alpha);
                let norm = 1.0 - la / ha;
                (alpha * la / (alpha - 2.0)) * (lo.powf(2.0 - alpha) - hi.powf(2.0 - alpha)) / norm
            }
        }
    }

    /// Analytic variance.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        (self.second_moment() - m * m).max(0.0)
    }

    /// Squared coefficient of variation C² = Var / Mean².
    pub fn c2(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }

    /// A copy of this distribution rescaled to the given mean, preserving
    /// its shape (and therefore its C²).
    pub fn with_mean(&self, new_mean: f64) -> Dist {
        let scale = new_mean / self.mean();
        match *self {
            Dist::Deterministic { value } => Dist::Deterministic {
                value: value * scale,
            },
            Dist::Exponential { mean } => Dist::Exponential { mean: mean * scale },
            Dist::HyperExp2 { p, mean1, mean2 } => Dist::HyperExp2 {
                p,
                mean1: mean1 * scale,
                mean2: mean2 * scale,
            },
            Dist::Erlang { k, mean } => Dist::Erlang {
                k,
                mean: mean * scale,
            },
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * scale,
                hi: hi * scale,
            },
            Dist::BoundedPareto { lo, hi, alpha } => Dist::BoundedPareto {
                lo: lo * scale,
                hi: hi * scale,
                alpha,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_moments(d: &Dist, seed: u64, n: usize, tol_mean: f64, tol_c2: f64) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0, "negative sample from {d:?}");
            sum += x;
            sumsq += x * x;
        }
        let m = sum / n as f64;
        let m2 = sumsq / n as f64;
        let c2 = (m2 - m * m) / (m * m);
        assert!(
            (m - d.mean()).abs() / d.mean() < tol_mean,
            "{d:?}: sample mean {m} vs analytic {}",
            d.mean()
        );
        assert!(
            (c2 - d.c2()).abs() < tol_c2 * d.c2().max(0.05),
            "{d:?}: sample c2 {c2} vs analytic {}",
            d.c2()
        );
    }

    #[test]
    fn deterministic() {
        let d = Dist::constant(4.0);
        assert_eq!(d.mean(), 4.0);
        assert_eq!(d.c2(), 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 4.0);
    }

    #[test]
    fn exponential_moments() {
        let d = Dist::exp(0.5);
        assert_eq!(d.c2(), 1.0);
        check_moments(&d, 2, 300_000, 0.01, 0.05);
    }

    #[test]
    fn erlang_moments() {
        let d = Dist::Erlang { k: 4, mean: 2.0 };
        assert!((d.c2() - 0.25).abs() < 1e-12);
        check_moments(&d, 3, 200_000, 0.01, 0.05);
    }

    #[test]
    fn uniform_moments() {
        let d = Dist::Uniform { lo: 1.0, hi: 3.0 };
        assert!((d.mean() - 2.0).abs() < 1e-12);
        check_moments(&d, 4, 200_000, 0.01, 0.05);
    }

    #[test]
    fn h2_fit_matches_target_c2() {
        for &c2 in &[1.0, 2.0, 5.0, 10.0, 15.0, 25.0] {
            let d = Dist::fit_h2(0.2, c2);
            assert!(
                (d.mean() - 0.2).abs() < 1e-12,
                "mean off for c2={c2}: {}",
                d.mean()
            );
            assert!(
                (d.c2() - c2).abs() < 1e-9,
                "c2 off: want {c2} got {}",
                d.c2()
            );
        }
    }

    #[test]
    fn h2_sampled_moments() {
        let d = Dist::fit_h2(1.0, 10.0);
        check_moments(&d, 5, 2_000_000, 0.02, 0.10);
    }

    #[test]
    fn bounded_pareto_moments() {
        let d = Dist::BoundedPareto {
            lo: 0.1,
            hi: 100.0,
            alpha: 1.5,
        };
        check_moments(&d, 6, 2_000_000, 0.03, 0.25);
    }

    #[test]
    fn with_mean_preserves_c2() {
        let d = Dist::fit_h2(1.0, 15.0);
        let d2 = d.with_mean(0.01);
        assert!((d2.mean() - 0.01).abs() < 1e-12);
        assert!((d2.c2() - 15.0).abs() < 1e-9);
        let p = Dist::BoundedPareto {
            lo: 0.1,
            hi: 10.0,
            alpha: 1.3,
        };
        let p2 = p.with_mean(5.0 * p.mean());
        assert!((p2.c2() - p.c2()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "H2 requires")]
    fn h2_rejects_low_c2() {
        Dist::fit_h2(1.0, 0.5);
    }
}
