//! Simulation clock.
//!
//! Simulated time is stored as an integer number of nanoseconds. Integer time
//! gives a total order (safe to use as a heap key), makes runs bit-for-bit
//! reproducible across platforms, and is immune to the accumulation drift
//! that plagues `f64` clocks over long runs. Model code works in `f64`
//! seconds (service demands are natural in seconds) and converts at the
//! boundary.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// Nanoseconds per second, as used by all conversions in this module.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from (possibly fractional) seconds. Negative and NaN inputs
    /// clamp to zero; overflow clamps to [`SimTime::MAX`].
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        // Deliberate negated comparison: NaN must also take this branch.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(secs > 0.0) {
            return SimTime(0);
        }
        let nanos = secs * NANOS_PER_SEC as f64;
        if nanos >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(nanos as u64)
        }
    }

    /// Raw nanoseconds since the start of the run.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// `self + dur` saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, dur: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(dur.0))
    }

    /// Elapsed duration since `earlier`; zero if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from (possibly fractional) seconds; negative/NaN clamp to 0.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(SimTime::from_secs_f64(secs).as_nanos())
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn overflow_clamps_to_max() {
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(2.0);
        let d = SimDuration::from_secs_f64(0.5);
        assert_eq!((t + d).as_secs_f64(), 2.5);
        assert_eq!(((t + d) - t).as_nanos(), d.as_nanos());
        // subtracting a later time saturates rather than panicking
        assert_eq!((t - (t + d)).as_nanos(), 0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert!(SimTime::ZERO < a);
        assert!(b < SimTime::MAX);
    }

    #[test]
    fn since_is_saturating() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.since(a).as_nanos(), 4);
        assert_eq!(a.since(b).as_nanos(), 0);
    }

    #[test]
    fn display_formats_in_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(0.5)), "0.500000s");
        assert_eq!(format!("{}", SimDuration::from_secs_f64(1.5)), "1.500000s");
    }
}
