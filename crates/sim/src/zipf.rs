//! Zipf-distributed integer sampling.
//!
//! Database page and lock-item accesses are skewed: a small set of hot rows
//! (warehouse rows in TPC-C, best-seller items in TPC-W) receives most of
//! the traffic. We model that with a Zipf(θ) law over `n` items. θ = 0 is
//! uniform; larger θ concentrates mass on low-numbered items.
//!
//! Sampling uses a precomputed CDF with binary search for small `n`, and
//! the rejection-inversion-free two-segment approximation ("hot set +
//! uniform tail") for large `n` where materializing the CDF would be
//! wasteful. The approximation keeps the head of the distribution exact
//! (first `HOT_EXACT` items) which is what matters for lock contention.

use crate::rng::SimRng;

const HOT_EXACT: usize = 4096;

/// A Zipf(θ) sampler over `{0, 1, ..., n-1}`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    /// Exact CDF over the hot head (and the whole domain when n is small).
    head_cdf: Vec<f64>,
    /// Probability mass of the head.
    head_mass: f64,
    theta: f64,
}

impl Zipf {
    /// Build a sampler over `n` items with skew `theta >= 0`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf domain must be nonempty");
        assert!(theta >= 0.0, "skew must be nonnegative");
        let head_len = (n as usize).min(HOT_EXACT);
        // Unnormalized weights 1/(i+1)^theta for the head.
        let mut head: Vec<f64> = (0..head_len)
            .map(|i| 1.0 / ((i + 1) as f64).powf(theta))
            .collect();
        // Total mass: exact head + integral approximation of the tail
        // sum_{i=head_len+1..n} i^-theta ~ integral.
        let head_sum: f64 = head.iter().sum();
        let tail_sum = if (n as usize) > head_len {
            integral_pow(head_len as f64 + 0.5, n as f64 + 0.5, theta)
        } else {
            0.0
        };
        let total = head_sum + tail_sum;
        let mut acc = 0.0;
        for w in head.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
        Zipf {
            n,
            head_cdf: head,
            head_mass: head_sum / total,
            theta,
        }
    }

    /// Number of items in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Draw one item index in `[0, n)`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.uniform();
        if u < self.head_mass || self.head_cdf.len() == self.n as usize {
            // Binary search the head CDF.
            let target = u.min(*self.head_cdf.last().unwrap());
            let idx = self.head_cdf.partition_point(|&c| c < target);
            (idx as u64).min(self.n - 1)
        } else {
            // Tail: invert the continuous approximation of the CDF.
            let h = self.head_cdf.len() as f64 + 0.5;
            let nn = self.n as f64 + 0.5;
            let v = (u - self.head_mass) / (1.0 - self.head_mass);
            let x = invert_integral_pow(h, nn, self.theta, v);
            (x.floor() as u64).clamp(self.head_cdf.len() as u64, self.n - 1)
        }
    }
}

/// ∫_a^b x^-theta dx.
fn integral_pow(a: f64, b: f64, theta: f64) -> f64 {
    if (theta - 1.0).abs() < 1e-12 {
        (b / a).ln()
    } else {
        (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
    }
}

/// Solve for x in [a,b] with ∫_a^x = v · ∫_a^b.
fn invert_integral_pow(a: f64, b: f64, theta: f64, v: f64) -> f64 {
    if (theta - 1.0).abs() < 1e-12 {
        a * (b / a).powf(v)
    } else {
        let ia = a.powf(1.0 - theta);
        let ib = b.powf(1.0 - theta);
        (ia + v * (ib - ia)).powf(1.0 / (1.0 - theta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(100, 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = vec![0u32; 100];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let f = *c as f64 / n as f64;
            assert!((f - 0.01).abs() < 0.004, "item {i}: freq {f}");
        }
    }

    #[test]
    fn skew_concentrates_on_head() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = SimRng::seed_from_u64(2);
        let n = 100_000;
        let hot = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        // With theta ~1, the top 1% of items should get a large share.
        let frac = hot as f64 / n as f64;
        assert!(frac > 0.4, "hot fraction {frac}");
    }

    #[test]
    fn all_samples_in_domain() {
        for &(n, theta) in &[(1u64, 0.9), (5, 0.5), (100_000, 1.2), (10_000_000, 0.8)] {
            let z = Zipf::new(n, theta);
            let mut rng = SimRng::seed_from_u64(3);
            for _ in 0..5_000 {
                let s = z.sample(&mut rng);
                assert!(s < n, "sample {s} out of domain {n}");
            }
        }
    }

    #[test]
    fn head_frequencies_match_zipf_law() {
        let n = 1_000_000u64;
        let theta = 1.0;
        let z = Zipf::new(n, theta);
        let mut rng = SimRng::seed_from_u64(4);
        let draws = 400_000;
        let mut c0 = 0u32;
        let mut c1 = 0u32;
        for _ in 0..draws {
            match z.sample(&mut rng) {
                0 => c0 += 1,
                1 => c1 += 1,
                _ => {}
            }
        }
        // item 0 should be drawn about twice as often as item 1.
        let ratio = c0 as f64 / c1 as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn large_domain_tail_is_reachable() {
        let n = 50_000_000u64;
        let z = Zipf::new(n, 0.5);
        let mut rng = SimRng::seed_from_u64(5);
        let mut saw_tail = false;
        for _ in 0..20_000 {
            if z.sample(&mut rng) > n / 2 {
                saw_tail = true;
                break;
            }
        }
        assert!(saw_tail, "low-skew Zipf never reached the tail");
    }
}
