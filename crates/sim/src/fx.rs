//! Fast non-cryptographic hashing for hot-path maps, plus a stable
//! structural fingerprint writer for cache keys.
//!
//! The simulator's inner loop is dominated by map operations on small
//! integer keys (transaction ids, page ids, lock items). The standard
//! library's SipHash is DoS-resistant but pays ~10× the cost of a
//! multiply-and-rotate hash on such keys, and the simulator never hashes
//! attacker-controlled input — so every per-event map uses [`FxHashMap`]
//! instead. The algorithm is the Firefox/rustc "Fx" hash: fold each
//! 8-byte word into the state with a rotate, xor, and multiply by a
//! Fibonacci-style constant.
//!
//! [`StableFp`] is unrelated to the maps: it builds a 128-bit structural
//! fingerprint of configuration values (floats written as IEEE bit
//! patterns) so memoization keys can cover every field of a config
//! without relying on `Debug` formatting. It is deliberately explicit —
//! each type decides field by field what identifies it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox Fx hash: fast on short integer keys, deterministic
/// across processes (no random state).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; `Default` yields a zero state, so maps
/// hash identically in every process.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — the drop-in for integer-keyed hot maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Structural 128-bit fingerprint accumulator.
///
/// Types that participate in memoization keys implement a
/// `fingerprint_into(&self, &mut StableFp)` method that writes every
/// identifying field. Floats go in as raw IEEE-754 bit patterns, so two
/// configs fingerprint equal iff their fields are bit-identical — the
/// same equivalence the simulator's determinism guarantees are stated in.
#[derive(Debug, Clone, Copy)]
pub struct StableFp {
    a: u64,
    b: u64,
}

impl Default for StableFp {
    fn default() -> Self {
        StableFp::new()
    }
}

impl StableFp {
    /// A fresh accumulator (FNV-1a offset basis / golden-ratio seeds).
    pub fn new() -> StableFp {
        StableFp {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Fold one 64-bit word into both lanes.
    #[inline]
    pub fn write_u64(&mut self, x: u64) {
        self.a = (self.a ^ x)
            .wrapping_mul(0x0000_0100_0000_01b3)
            .rotate_left(23);
        self.b = (self.b.rotate_left(29) ^ x).wrapping_mul(FX_SEED);
    }

    /// Write a 32-bit value.
    #[inline]
    pub fn write_u32(&mut self, x: u32) {
        self.write_u64(x as u64);
    }

    /// Write a boolean.
    #[inline]
    pub fn write_bool(&mut self, x: bool) {
        self.write_u64(x as u64);
    }

    /// Write a float as its IEEE-754 bit pattern.
    #[inline]
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Write a string (length-prefixed, so concatenations cannot alias).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for c in s.as_bytes().chunks(8) {
            let mut buf = [0u8; 8];
            buf[..c.len()].copy_from_slice(c);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    /// The accumulated 128-bit fingerprint as two lanes.
    pub fn finish(&self) -> (u64, u64) {
        (self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7919, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn fx_hash_is_process_independent() {
        // No random state: the same key hashes identically every time.
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn fingerprint_distinguishes_fields_and_order() {
        let fp = |f: &dyn Fn(&mut StableFp)| {
            let mut s = StableFp::new();
            f(&mut s);
            s.finish()
        };
        assert_eq!(fp(&|s| s.write_u64(1)), fp(&|s| s.write_u64(1)));
        assert_ne!(fp(&|s| s.write_u64(1)), fp(&|s| s.write_u64(2)));
        assert_ne!(
            fp(&|s| {
                s.write_u64(1);
                s.write_u64(2);
            }),
            fp(&|s| {
                s.write_u64(2);
                s.write_u64(1);
            }),
        );
        // Float bit patterns, not values: -0.0 != 0.0.
        assert_ne!(fp(&|s| s.write_f64(0.0)), fp(&|s| s.write_f64(-0.0)));
        // Length prefix prevents string-boundary aliasing.
        assert_ne!(
            fp(&|s| {
                s.write_str("ab");
                s.write_str("c");
            }),
            fp(&|s| {
                s.write_str("a");
                s.write_str("bc");
            }),
        );
    }
}
