#![warn(missing_docs)]
//! Discrete-event simulation kernel for the `extsched` workspace.
//!
//! This crate provides the deterministic foundation every other crate in the
//! workspace builds on:
//!
//! * [`time::SimTime`] — an integer-nanosecond simulation clock with total
//!   ordering (no floating-point heap-ordering hazards),
//! * [`engine::EventQueue`] — a deterministic future-event list with stable
//!   tie-breaking,
//! * [`rng::SimRng`] — seeded, stream-splittable random number generation,
//! * [`dist::Dist`] — the service-time / think-time distributions used by the
//!   paper (exponential, 2-phase hyperexponential, bounded Pareto, ...), each
//!   with analytically known mean and squared coefficient of variation,
//! * [`zipf::Zipf`] — skewed access to pages and lock items,
//! * [`stats`] — running moments, squared coefficient of variation,
//!   confidence intervals and percentile estimation used by the controller's
//!   observation phase and by the experiment harness.

pub mod dist;
pub mod engine;
pub mod fx;
pub mod rng;
pub mod stats;
pub mod time;
pub mod zipf;

pub use dist::Dist;
pub use engine::EventQueue;
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher, StableFp};
pub use rng::SimRng;
pub use stats::{BatchMeans, ConfidenceInterval, Replications, SampleSet, TimeWeighted, Welford};
pub use time::SimTime;
