//! Online and batch statistics.
//!
//! The controller's observation phase (paper §4.3) needs mean response time
//! and throughput estimates *with confidence intervals* so it only reacts
//! to stable measurements; the workload characterization (§3.2) needs the
//! squared coefficient of variation C². Both live here.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for running mean/variance, plus C².
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Squared coefficient of variation C² = Var / Mean².
    pub fn c2(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
    }

    /// Two-sided confidence interval for the mean at the given level
    /// (`0.95` or `0.99`), using a Student-t critical value.
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        let half = if self.n < 2 {
            f64::INFINITY
        } else {
            t_critical(self.n - 1, level) * self.std_dev() / (self.n as f64).sqrt()
        };
        ConfidenceInterval {
            mean: self.mean(),
            half_width: half,
            level,
        }
    }
}

/// A symmetric confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval (`mean ± half_width`).
    pub half_width: f64,
    /// Confidence level the interval was built for.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Relative half-width `half_width / mean`; infinite when the mean is 0.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            (self.half_width / self.mean).abs()
        }
    }
}

/// Two-sided Student-t critical value for `df` degrees of freedom.
///
/// Table-interpolated for the levels the controller uses (0.90/0.95/0.99);
/// falls back to the normal quantile for large `df`, which is exact in the
/// limit and within 1% for df ≥ 30.
fn t_critical(df: u64, level: f64) -> f64 {
    // Rows: df 1..=30 selected; columns for levels.
    const DF: [u64; 12] = [1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 25, 30];
    const T90: [f64; 12] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.860, 1.812, 1.753, 1.725, 1.708, 1.697,
    ];
    const T95: [f64; 12] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.306, 2.228, 2.131, 2.086, 2.060, 2.042,
    ];
    const T99: [f64; 12] = [
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.355, 3.169, 2.947, 2.845, 2.787, 2.750,
    ];
    let (table, z) = if level >= 0.985 {
        (&T99, 2.576)
    } else if level >= 0.925 {
        (&T95, 1.960)
    } else {
        (&T90, 1.645)
    };
    if df > 30 {
        return z;
    }
    // Find bracketing rows and interpolate linearly in 1/df.
    let mut i = 0;
    while i + 1 < DF.len() && DF[i + 1] <= df {
        i += 1;
    }
    if DF[i] == df || i + 1 == DF.len() {
        return table[i];
    }
    let (d0, d1) = (DF[i] as f64, DF[i + 1] as f64);
    let w = (1.0 / df as f64 - 1.0 / d1) / (1.0 / d0 - 1.0 / d1);
    table[i + 1] + w * (table[i] - table[i + 1])
}

/// Replication statistics: one [`Welford`] accumulator per named metric,
/// fed by repeated runs of the same experiment under different seeds.
///
/// The sweep executor pushes every scalar a run reports (throughput, mean
/// response time, ...) once per replication; figure tables then render
/// `mean ± half-width` cells from [`Replications::ci`]. Keys keep
/// insertion order so reports are deterministic, and lookups are linear —
/// a run reports tens of metrics, not thousands.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Replications {
    metrics: Vec<(String, Welford)>,
}

impl Replications {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one replication's value for `key`.
    pub fn push(&mut self, key: &str, value: f64) {
        match self.metrics.iter_mut().find(|(k, _)| k == key) {
            Some((_, w)) => w.push(value),
            None => {
                let mut w = Welford::new();
                w.push(value);
                self.metrics.push((key.to_string(), w));
            }
        }
    }

    /// The accumulator for `key`, if any replication reported it.
    pub fn get(&self, key: &str) -> Option<&Welford> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, w)| w)
    }

    /// Mean of `key` over replications (0 when unreported).
    pub fn mean(&self, key: &str) -> f64 {
        self.get(key).map_or(0.0, Welford::mean)
    }

    /// Unbiased variance of `key` over replications (0 when unreported).
    pub fn variance(&self, key: &str) -> f64 {
        self.get(key).map_or(0.0, Welford::variance)
    }

    /// Student-t confidence interval for the mean of `key`. With a single
    /// replication the half-width is infinite — the caller should print
    /// the point estimate alone.
    pub fn ci(&self, key: &str, level: f64) -> ConfidenceInterval {
        match self.get(key) {
            Some(w) => w.confidence_interval(level),
            None => ConfidenceInterval {
                mean: 0.0,
                half_width: f64::INFINITY,
                level,
            },
        }
    }

    /// Number of replications recorded for `key`.
    pub fn count(&self, key: &str) -> u64 {
        self.get(key).map_or(0, Welford::count)
    }

    /// Metric names in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.metrics.iter().map(|(k, _)| k.as_str())
    }

    /// Render both CI flavors for `key`: the cross-replication Student-t
    /// interval, and — when the runs reported a companion
    /// `<key>_bm_hw` metric (the per-run batch-means half-width, see
    /// [`BatchMeans`]) — the mean per-run interval next to it. The two
    /// answer different questions: the replication CI bounds seed-to-seed
    /// variability, the batch-means CI bounds within-run estimation error
    /// of a single long run.
    pub fn summary(&self, key: &str, level: f64) -> String {
        let ci = self.ci(key, level);
        let pct = (level * 100.0).round() as u32;
        let mut out = if ci.half_width.is_finite() {
            format!(
                "{} = {:.6} ±{:.6} ({}% CI, {} reps)",
                key,
                ci.mean,
                ci.half_width,
                pct,
                self.count(key)
            )
        } else {
            format!("{} = {:.6} ({} rep)", key, ci.mean, self.count(key))
        };
        let bm = self.mean(&format!("{key}_bm_hw"));
        if bm.is_finite() && bm > 0.0 {
            out.push_str(&format!(" [per-run batch-means ±{bm:.6}]"));
        }
        out
    }
}

/// Batch-means confidence intervals for a *single* long run.
///
/// Consecutive observations of a steady-state simulation are
/// autocorrelated, so a naive Welford CI over them is too narrow. The
/// classic fix — and what the controller's observation windows already do
/// implicitly — is to group consecutive observations into fixed-size
/// batches and treat the batch means as (approximately) independent
/// samples. This accumulator does exactly that: `push` observations in
/// arrival order, and [`BatchMeans::ci`] returns a Student-t interval over
/// the completed batch means. A trailing partial batch is ignored.
#[derive(Debug, Clone, Serialize)]
pub struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batches: Welford,
}

impl BatchMeans {
    /// An accumulator grouping observations into batches of `batch_size`
    /// (must be nonzero).
    pub fn new(batch_size: u64) -> BatchMeans {
        assert!(batch_size > 0, "batch size must be nonzero");
        BatchMeans {
            batch_size,
            current: Welford::new(),
            batches: Welford::new(),
        }
    }

    /// Add one observation, in arrival order.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() == self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> u64 {
        self.batches.count()
    }

    /// Mean over the completed batches (0 when none completed).
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Student-t confidence interval over the completed batch means.
    /// Infinite half-width with fewer than two completed batches.
    pub fn ci(&self, level: f64) -> ConfidenceInterval {
        self.batches.confidence_interval(level)
    }
}

/// A batch of samples supporting percentile queries.
///
/// Stores the raw values; fine for the experiment scales in this workspace
/// (at most a few million samples per run).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleSet {
    values: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) by nearest-rank on the sorted data.
    pub fn percentile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let idx = ((self.values.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        self.values[idx]
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Squared coefficient of variation of the samples.
    pub fn c2(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.values.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
        if m == 0.0 {
            0.0
        } else {
            var / (m * m)
        }
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. resource
/// utilization or queue length over simulated time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_t: f64,
    last_v: f64,
    area: f64,
    span: f64,
    started: bool,
}

impl TimeWeighted {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the signal changed to `value` at time `t` (seconds).
    pub fn update(&mut self, t: f64, value: f64) {
        if self.started {
            let dt = (t - self.last_t).max(0.0);
            self.area += self.last_v * dt;
            self.span += dt;
        }
        self.last_t = t;
        self.last_v = value;
        self.started = true;
    }

    /// Close the window at time `t` and return the time average so far.
    pub fn finish(&mut self, t: f64) -> f64 {
        self.update(t, self.last_v);
        self.average()
    }

    /// Time average over the observed span (0 if the span is empty).
    pub fn average(&self) -> f64 {
        if self.span == 0.0 {
            0.0
        } else {
            self.area / self.span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // batch unbiased variance = 32/7
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() + 2.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn c2_of_exponential_samples_near_one() {
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(1);
        let mut w = Welford::new();
        for _ in 0..300_000 {
            w.push(rng.exp(3.0));
        }
        assert!((w.c2() - 1.0).abs() < 0.03, "c2 {}", w.c2());
    }

    #[test]
    fn confidence_interval_shrinks_with_n() {
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(2);
        let mut w = Welford::new();
        for _ in 0..20 {
            w.push(rng.uniform());
        }
        let wide = w.confidence_interval(0.95).half_width;
        for _ in 0..2000 {
            w.push(rng.uniform());
        }
        let narrow = w.confidence_interval(0.95).half_width;
        assert!(narrow < wide / 5.0, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn t_critical_reference_values() {
        assert!((t_critical(1, 0.95) - 12.706).abs() < 1e-3);
        assert!((t_critical(10, 0.95) - 2.228).abs() < 1e-3);
        assert!((t_critical(1000, 0.95) - 1.960).abs() < 1e-3);
        assert!((t_critical(5, 0.99) - 4.032).abs() < 1e-3);
        assert!((t_critical(30, 0.90) - 1.697).abs() < 1e-3);
        // interpolated row: df=12 should be between df=10 and df=15 values
        let t12 = t_critical(12, 0.95);
        assert!(t12 < 2.228 && t12 > 2.131, "t12 {t12}");
    }

    #[test]
    fn empty_welford_ci_is_infinite() {
        let w = Welford::new();
        assert!(w.confidence_interval(0.95).half_width.is_infinite());
        assert_eq!(
            w.confidence_interval(0.95).relative_half_width(),
            f64::INFINITY
        );
    }

    #[test]
    fn replications_aggregate_named_metrics() {
        let mut r = Replications::new();
        for seed in 0..5 {
            r.push("throughput", 100.0 + seed as f64);
            r.push("mean_rt", 0.5);
        }
        assert_eq!(r.count("throughput"), 5);
        assert!((r.mean("throughput") - 102.0).abs() < 1e-12);
        assert!((r.variance("throughput") - 2.5).abs() < 1e-12);
        // Constant metric: zero-width interval.
        let ci = r.ci("mean_rt", 0.95);
        assert!((ci.mean - 0.5).abs() < 1e-12 && ci.half_width < 1e-12);
        // t-based CI for the varying metric: ±(2.776 · s/√5) at df=4.
        let ci = r.ci("throughput", 0.95);
        let want = 2.776 * (2.5f64).sqrt() / 5f64.sqrt();
        assert!((ci.half_width - want).abs() < 1e-3, "hw {}", ci.half_width);
        // Unreported keys degrade gracefully.
        assert_eq!(r.count("nope"), 0);
        assert!(r.ci("nope", 0.95).half_width.is_infinite());
        assert_eq!(r.keys().collect::<Vec<_>>(), ["throughput", "mean_rt"]);
    }

    #[test]
    fn single_replication_ci_is_infinite() {
        let mut r = Replications::new();
        r.push("x", 1.0);
        assert!(r.ci("x", 0.95).half_width.is_infinite());
    }

    #[test]
    fn batch_means_needs_two_batches_for_a_finite_ci() {
        let mut bm = BatchMeans::new(10);
        for i in 0..19 {
            bm.push(i as f64);
        }
        // One completed batch + a partial one: no interval yet.
        assert_eq!(bm.batches(), 1);
        assert!(bm.ci(0.95).half_width.is_infinite());
        bm.push(19.0);
        assert_eq!(bm.batches(), 2);
        assert!(bm.ci(0.95).half_width.is_finite());
    }

    /// The satellite requirement: on an M/M/1-style run (autocorrelated
    /// response times from one long simulated sample path) the batch-means
    /// window CI must bracket the known analytic mean 1/(μ − λ).
    #[test]
    fn batch_means_ci_brackets_mm1_analytic_mean() {
        use crate::rng::SimRng;
        let (lambda, mu) = (0.8, 1.0);
        let analytic = 1.0 / (mu - lambda); // M/M/1 mean response time = 5.0
        let mut rng = SimRng::seed_from_u64(7);
        // Lindley recursion: W_{k+1} = max(0, W_k + S_k − A_{k+1});
        // response time = wait + own service.
        let mut bm = BatchMeans::new(2_000);
        let mut w = 0.0f64;
        for _ in 0..400_000 {
            let s = rng.exp(1.0 / mu);
            bm.push(w + s);
            let a = rng.exp(1.0 / lambda);
            w = (w + s - a).max(0.0);
        }
        let ci = bm.ci(0.95);
        assert!(bm.batches() >= 100);
        assert!(
            (ci.mean - analytic).abs() <= ci.half_width,
            "CI {:.3} ±{:.3} must bracket analytic {analytic}",
            ci.mean,
            ci.half_width
        );
        // And the interval is informative, not vacuous.
        assert!(ci.half_width < 0.5 * analytic, "hw {}", ci.half_width);
    }

    #[test]
    fn batch_means_on_iid_samples_matches_plain_welford_mean() {
        use crate::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(3);
        let mut bm = BatchMeans::new(100);
        let mut w = Welford::new();
        for _ in 0..50_000 {
            let x = rng.exp(0.5);
            bm.push(x);
            w.push(x);
        }
        assert!((bm.mean() - w.mean()).abs() < 1e-12);
    }

    #[test]
    fn replications_summary_prints_both_ci_flavors() {
        let mut r = Replications::new();
        for seed in 0..4 {
            r.push("mean_rt", 0.5 + 0.01 * seed as f64);
            r.push("mean_rt_bm_hw", 0.02);
        }
        let s = r.summary("mean_rt", 0.95);
        assert!(s.contains('±'), "cross-replication CI missing: {s}");
        assert!(s.contains("batch-means"), "per-run CI flavor missing: {s}");
        assert!(s.contains("4 reps"), "rep count missing: {s}");
        // Without the companion metric only one flavor appears.
        let mut lone = Replications::new();
        lone.push("throughput", 100.0);
        lone.push("throughput", 101.0);
        let s = lone.summary("throughput", 0.95);
        assert!(s.contains('±') && !s.contains("batch-means"), "{s}");
    }

    #[test]
    fn percentiles() {
        let mut s = SampleSet::new();
        for i in 1..=100 {
            s.push(i as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 100.0);
        assert!((s.percentile(0.5) - 50.0).abs() <= 1.0);
        assert!((s.percentile(0.95) - 95.0).abs() <= 1.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn sampleset_c2() {
        let mut s = SampleSet::new();
        for &x in &[1.0, 1.0, 1.0, 1.0] {
            s.push(x);
        }
        assert_eq!(s.c2(), 0.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.update(0.0, 1.0); // value 1 on [0, 2)
        tw.update(2.0, 3.0); // value 3 on [2, 4)
        let avg = tw.finish(4.0);
        assert!((avg - 2.0).abs() < 1e-12, "avg {avg}");
    }

    #[test]
    fn time_weighted_empty_is_zero() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.average(), 0.0);
    }
}
