//! Deterministic future-event list.
//!
//! The queue is a 4-ary implicit min-heap keyed on `(time, seq)` where
//! `seq` is a monotonically increasing insertion counter. Ties in
//! simulated time are therefore broken by insertion order, which makes
//! every run fully deterministic for a given RNG seed — a property the
//! integration tests rely on. Because `(time, seq)` is a *strict* total
//! order (seq is unique), the pop sequence is the same for any correct
//! heap arity; switching from the standard binary heap changed no
//! observable behavior, only cache traffic.
//!
//! Why 4-ary: the event loop is pop-heavy (every pop sifts down the full
//! depth), and a branching factor of 4 halves the tree depth while the
//! four children of node `i` — slots `4i+1..4i+4` — share one or two
//! cache lines, so the wider child scan costs less than the extra levels
//! it removes. Insertions sift *up* through parent links `(i-1)/4` and
//! get strictly cheaper with the shallower tree.
//!
//! Cancellation is handled with *generation tokens* rather than heap
//! surgery: callers that need to invalidate a previously scheduled event
//! (e.g. a processor-sharing completion that is obsoleted by a new arrival)
//! store an epoch counter in the event payload and ignore stale pops. See
//! `xsched_dbms::cpu` for the idiom.

use crate::time::SimTime;

/// Branching factor of the implicit heap.
const ARITY: usize = 4;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    /// Strict earliest-first ordering key: `(time, insertion order)`.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A future-event list ordered by `(time, insertion order)`.
///
/// ```
/// use xsched_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs_f64(2.0), "later");
/// q.schedule(SimTime::from_secs_f64(1.0), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "sooner");
/// assert_eq!(t, SimTime::from_secs_f64(1.0));
/// ```
pub struct EventQueue<E> {
    /// Implicit 4-ary min-heap on `(time, seq)`.
    heap: Vec<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// An empty queue with room for `cap` pending events before the heap
    /// reallocates — long simulations pre-size this once instead of
    /// re-growing mid-run.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// Scheduling in the past is a model bug; debug builds assert, release
    /// builds clamp to `now` so long experiments degrade gracefully instead
    /// of travelling backwards.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: {time} < now {}",
            self.now
        );
        let time = time.max(self.now);
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedule `event` `delay_secs` seconds from now.
    pub fn schedule_in(&mut self, delay_secs: f64, event: E) {
        let t = self
            .now
            .saturating_add(crate::time::SimDuration::from_secs_f64(delay_secs));
        self.schedule(t, event);
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let last = self.heap.pop()?;
        let s = if self.heap.is_empty() {
            last
        } else {
            let root = std::mem::replace(&mut self.heap[0], last);
            self.sift_down(0);
            root
        };
        debug_assert!(s.time >= self.now);
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|s| s.time)
    }

    /// Pop the maximal run of same-timestamp events into `out` (cleared
    /// first), in exactly the order repeated [`EventQueue::pop`] calls
    /// would produce, and advance the clock to the run's timestamp.
    /// Returns that timestamp, or `None` when the queue is empty.
    ///
    /// This is the batch-dispatch primitive: discrete-event models with
    /// quantized or tied timestamps drain whole runs into a reusable
    /// buffer and dispatch them through one tight loop instead of paying
    /// the pop/match round-trip per event. It is exactly order-preserving
    /// even when dispatch schedules *new* events at the same timestamp:
    /// `seq` is monotonic, so every event already in `out` sorts before
    /// anything scheduled after the drain — the next `pop_run_into` call
    /// picks the newcomers up in their correct global position.
    pub fn pop_run_into(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        out.clear();
        let (t, first) = self.pop()?;
        out.push(first);
        while self.peek_time() == Some(t) {
            let (_, e) = self.pop().expect("peeked event must pop");
            out.push(e);
        }
        Some(t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Restore the heap property upward from `i` (after a push).
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Restore the heap property downward from `i` (after a pop).
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first_child = ARITY * i + 1;
            if first_child >= len {
                return;
            }
            // Smallest of the (up to) four children; (time, seq) is a
            // strict total order, so the minimum is unique.
            let mut min = first_child;
            let mut min_key = self.heap[min].key();
            for c in first_child + 1..(first_child + ARITY).min(len) {
                let k = self.heap[c].key();
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if min_key < self.heap[i].key() {
                self.heap.swap(i, min);
                i = min;
            } else {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs_f64(1.0), "a");
        q.pop();
        q.schedule_in(0.5, "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(1.5));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn with_capacity_preallocates() {
        let q: EventQueue<()> = EventQueue::with_capacity(4096);
        assert!(q.capacity() >= 4096);
        assert!(q.is_empty());
    }

    /// One million scheduled events with heavy time ties pop in the same
    /// order on every run, and the pre-sized heap never re-grows.
    #[test]
    fn million_events_pop_deterministically() {
        const N: u64 = 1_000_000;
        let run = || -> (u64, usize) {
            let mut q = EventQueue::with_capacity(N as usize);
            let mut rng = crate::SimRng::derive(7, "heap");
            for i in 0..N {
                // ~16 events per distinct nanosecond: ties everywhere.
                let t = SimTime::from_nanos(rng.index_u64(N / 16));
                q.schedule(t.max(q.now()), i);
            }
            let cap = q.capacity();
            let mut checksum = 0u64;
            let mut last = SimTime::ZERO;
            let mut popped = 0u64;
            while let Some((t, e)) = q.pop() {
                assert!(t >= last, "heap order violated");
                last = t;
                checksum = checksum.rotate_left(7).wrapping_add(e ^ t.as_nanos());
                popped += 1;
            }
            assert_eq!(popped, N);
            (checksum, cap)
        };
        let (c1, cap1) = run();
        let (c2, _) = run();
        assert_eq!(c1, c2, "same schedule must drain identically");
        assert!(cap1 >= N as usize, "pre-sized heap must not shrink");
    }

    /// Interleaved schedule/pop drains in strict `(time, seq)` order —
    /// exercises sift-down across every child-count shape of the 4-ary
    /// tree (0–4 children, partial last node).
    #[test]
    fn interleaved_operations_pop_in_total_order() {
        let mut q = EventQueue::new();
        let mut rng = crate::SimRng::derive(11, "dheap");
        let mut popped: Vec<(SimTime, u64)> = Vec::new();
        let mut scheduled = 0u64;
        for round in 0..1_000 {
            for _ in 0..(round % 7) + 1 {
                let t = q
                    .now()
                    .saturating_add(crate::time::SimDuration::from_nanos(rng.index_u64(50)));
                q.schedule(t, scheduled);
                scheduled += 1;
            }
            for _ in 0..(round % 5) {
                if let Some((t, e)) = q.pop() {
                    popped.push((t, e));
                }
            }
        }
        while let Some((t, e)) = q.pop() {
            popped.push((t, e));
        }
        assert_eq!(popped.len() as u64, scheduled);
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
        }
    }

    /// `pop_run_into` must reproduce the exact single-pop sequence:
    /// same events, same order, same clock — just grouped by timestamp.
    #[test]
    fn batched_pop_matches_single_pop_order() {
        let build = || {
            let mut q = EventQueue::new();
            let mut rng = crate::SimRng::derive(3, "runs");
            for i in 0..10_000u64 {
                // ~8 events per distinct nanosecond: runs everywhere.
                q.schedule(SimTime::from_nanos(rng.index_u64(10_000 / 8)), i);
            }
            q
        };
        let mut single = build();
        let mut reference = Vec::new();
        while let Some((t, e)) = single.pop() {
            reference.push((t, e));
        }
        let mut batched = build();
        let mut run = Vec::new();
        let mut drained = Vec::new();
        while let Some(t) = batched.pop_run_into(&mut run) {
            assert!(!run.is_empty(), "a run holds at least the popped event");
            assert_eq!(batched.now(), t, "clock advances to the run's time");
            drained.extend(run.iter().map(|&e| (t, e)));
        }
        assert_eq!(drained, reference);
        assert_eq!(batched.pop_run_into(&mut run), None);
        assert!(run.is_empty(), "an empty queue leaves the buffer cleared");
    }

    /// Events scheduled *during* a run's dispatch (at the same timestamp)
    /// come out of the next batch, after everything already drained —
    /// matching the `(time, seq)` order single-pop interleaving gives.
    #[test]
    fn batched_pop_orders_same_time_reschedules_after_the_run() {
        let t = SimTime::from_nanos(50);
        let mut q = EventQueue::new();
        q.schedule(t, 0u64);
        q.schedule(t, 1);
        let mut run = Vec::new();
        assert_eq!(q.pop_run_into(&mut run), Some(t));
        assert_eq!(run, vec![0, 1]);
        // Dispatch of the run schedules two more events at the same time.
        q.schedule(t, 2);
        q.schedule(t, 3);
        assert_eq!(q.pop_run_into(&mut run), Some(t));
        assert_eq!(run, vec![2, 3], "newcomers drain in their seq order");
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn past_schedule_clamps_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), ());
        q.pop();
        q.schedule(SimTime::from_nanos(10), ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(100));
    }
}
