//! Seeded random number generation.
//!
//! Every stochastic component of the simulator (arrival process, each
//! transaction template, the buffer-pool page picker, ...) draws from its
//! own [`SimRng`] stream derived from the experiment's master seed. Streams
//! are derived by hashing `(master_seed, label)` with SplitMix64, so adding
//! a new consumer never perturbs the draws seen by existing ones — that
//! keeps A/B comparisons between scheduler variants paired.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna): fast,
//! 256-bit state, and — crucially for this workspace — fully deterministic
//! with no external dependency, so the same `(seed, label)` pair yields the
//! same stream on every platform and the parallel sweep executor can
//! promise bit-identical results to serial execution.

/// SplitMix64 step, used to derive independent stream seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random stream (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// A stream seeded directly from `seed` (state expanded via SplitMix64,
    /// the seeding procedure the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent stream for component `label`.
    ///
    /// The same `(master, label)` pair always yields the same stream.
    pub fn derive(master: u64, label: &str) -> Self {
        let mut state = master;
        for b in label.as_bytes() {
            state = splitmix64(&mut state) ^ u64::from(*b);
        }
        let seed = splitmix64(&mut state);
        SimRng::seed_from_u64(seed)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1]` — safe as the argument of `ln` for inverse
    /// transform sampling.
    #[inline]
    pub fn uniform_pos(&mut self) -> f64 {
        1.0 - self.uniform()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.index_u64(n as u64) as usize
    }

    /// Uniform integer in `[0, n)` for u64 domains (page/item ids).
    /// Lemire's multiply-shift: the bias for the domain sizes used here
    /// (≤ 2⁴⁰ pages) is below 2⁻²⁴ and the map is deterministic.
    #[inline]
    pub fn index_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponentially distributed value with the given `mean`.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        -mean * self.uniform_pos().ln()
    }

    /// Standard normal via Box–Muller (one value per call; simple and
    /// adequate for our use).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.uniform_pos();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Pick an index according to a discrete probability vector `weights`
    /// (need not be normalized).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        debug_assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        let mut x = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn derived_streams_differ_by_label() {
        let mut a = SimRng::derive(1, "arrivals");
        let mut b = SimRng::derive(1, "service");
        let xs: Vec<f64> = (0..8).map(|_| a.uniform()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.uniform()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_streams_repeatable() {
        let mut a = SimRng::derive(99, "x");
        let mut b = SimRng::derive(99, "x");
        assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 200_000;
        let mean = 0.25;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() < 0.005, "sample mean {m}");
    }

    #[test]
    fn uniform_pos_never_zero() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(r.uniform_pos() > 0.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::seed_from_u64(11);
        let w = [1.0, 3.0];
        let n = 100_000;
        let ones = (0..n).filter(|_| r.weighted_index(&w) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn std_normal_moments() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.std_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
