#![warn(missing_docs)]
//! A discrete-event-simulated transactional DBMS.
//!
//! This crate stands in for the paper's IBM DB2 / Shore / PostgreSQL
//! backends. It models exactly the resources whose queueing behaviour
//! drives the paper's results:
//!
//! * a bank of CPUs shared processor-sharing style ([`cpu`]), with an
//!   optional preemptive two-priority mode (the "renice" internal
//!   prioritization of §5.2),
//! * FCFS data disks plus a dedicated log disk ([`disk`]),
//! * an LRU buffer pool deciding which page accesses become disk reads
//!   ([`bufferpool`]),
//! * a strict two-phase-locking lock manager with shared/exclusive modes,
//!   Repeatable Read and Uncommitted Read isolation, waits-for deadlock
//!   detection with youngest-victim abort/restart, and the
//!   Preempt-on-Wait (POW) priority policy of McWherter et al. ([`lock`]),
//! * a per-transaction state machine walking lock → page access → CPU
//!   burst steps to a logged commit ([`sim`]).
//!
//! The simulator is single-threaded and fully deterministic for a given
//! seed. External scheduling (the MPL gate, queue policies, controller)
//! deliberately lives *outside* this crate, in `xsched-core` — mirroring
//! the paper's architectural point that the external scheduler needs no
//! access to DBMS internals.

pub mod bufferpool;
pub mod config;
pub mod cpu;
pub mod disk;
pub mod fault;
pub mod lock;
pub mod metrics;
pub mod sim;
pub mod slab;
pub mod txn;

pub use config::{
    CpuPolicy, DbmsConfig, DeadlockStrategy, HardwareConfig, IsolationLevel, LockPriorityPolicy,
};
pub use fault::{FaultSpec, SpikeSpec, StallSpec, Toggler};
pub use metrics::{Completion, DbmsMetrics};
pub use sim::{CapacityStats, DbmsSim, StepOutcome};
pub use txn::{ItemId, LockMode, PageId, Priority, Step, TxnBody, TxnId};
pub use xsched_obs::{CountingSink, NoopTrace, RingRecorder, TraceEvent, TraceSink};
