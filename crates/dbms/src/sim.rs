//! The DBMS event loop and per-transaction state machine.
//!
//! [`DbmsSim`] owns the event queue, the CPU bank, the data and log disks,
//! the buffer pool and the lock manager, and walks each admitted
//! transaction through its steps:
//!
//! ```text
//! for each step:  [lock?] → [page probes → disk reads on miss] → [CPU burst]
//! then:           log write (commit force) → release locks → Completion
//! ```
//!
//! Blocked lock requests trigger deadlock detection (youngest victim is
//! aborted and restarted after an exponential backoff) and, under the
//! Preempt-on-Wait policy, preemption of blocked low-priority holders.
//!
//! The simulator knows nothing about MPLs or external queues: admission
//! control lives entirely in `xsched-core`, mirroring the paper's
//! external-scheduling architecture. The driver interleaves with the
//! simulator through [`DbmsSim::schedule_external`] tokens and
//! [`DbmsSim::step`].

use crate::bufferpool::BufferPool;
use crate::config::{
    DbmsConfig, DeadlockStrategy, HardwareConfig, IsolationLevel, LockPriorityPolicy,
};
use crate::cpu::CpuBank;
use crate::disk::{Disk, IoRequest};
use crate::fault::{FaultSpec, Toggler};
use crate::lock::{Grant, LockManager, RequestOutcome};
use crate::metrics::{Completion, DbmsMetrics};
use crate::slab::{Slab, SlotRef};
use crate::txn::{LockMode, PageId, Priority, TxnBody, TxnId};
use std::collections::VecDeque;
use xsched_obs::{NoopTrace, TraceEvent, TraceSink};
use xsched_sim::{EventQueue, FxHashMap, SimRng, SimTime};

/// What a call to [`DbmsSim::step`] processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An internal DBMS event was processed.
    Advanced,
    /// An external token scheduled by the driver fired.
    External(u64),
    /// No events pending.
    Idle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Blocked in a lock queue.
    AcquiringLock,
    /// Waiting for a data-disk read.
    ReadingPage,
    /// Runnable on the CPU bank.
    OnCpu,
    /// Waiting for the commit log force.
    WritingLog,
    /// Aborted; waiting out the restart backoff.
    BackingOff,
    /// In the per-step non-resource delay (client round trip).
    InStepDelay,
}

#[derive(Debug)]
struct TxnState {
    /// Public identity (monotone admission order; the deadlock detector's
    /// age). The slab slot is the *storage* identity and is recycled.
    id: TxnId,
    body: TxnBody,
    external_arrival: f64,
    admitted: f64,
    step: usize,
    page: usize,
    lock_acquired: bool,
    delay_done: bool,
    /// Chaos: the stall injector already rolled the dice for this step's
    /// lock (one draw per acquisition, not per resume).
    stalled: bool,
    pending_cpu_extra: f64,
    phase: Phase,
    restarts: u32,
    lock_wait: f64,
    block_start: f64,
    /// Bumped on every block; lock-timeout events carry the value they
    /// were armed with so stale timers are ignored.
    block_seq: u64,
}

/// Events carry the dense [`SlotRef`] where the handler only needs the
/// transaction's state (dispatch is then a bounds check plus a generation
/// compare — no hashing). `CpuDone` keeps the [`TxnId`] because the CPU
/// bank is keyed by it; `DiskDone` resolves through the id index because
/// the request may belong to the ownerless write-back sentinel.
#[derive(Debug, Clone, Copy)]
enum Ev {
    CpuDone {
        epoch: u64,
        txn: TxnId,
    },
    DiskDone {
        disk: usize,
    },
    LogDone,
    Restart {
        txn: SlotRef,
    },
    DelayDone {
        txn: SlotRef,
    },
    LockTimeout {
        txn: SlotRef,
        block_seq: u64,
    },
    External {
        token: u64,
    },
    /// Chaos: one tick of the client abort storm (self-rescheduling
    /// Poisson stream; only ever scheduled when the storm is enabled).
    ChaosAbort,
}

/// Slab of pending event payloads, addressed by `u32` handles.
///
/// The event heap stores only `(time, seq, handle)` — 24 bytes per entry
/// instead of the 40 a `Scheduled<Ev>` costs with the enum inline — so a
/// `sift_down` touches nearly twice as many entries per cache line. The
/// payloads live here, written once at schedule time and read once at
/// dispatch; the free list recycles slots LIFO, so the arena's footprint
/// is bounded by the maximum number of *concurrently pending* events and
/// the hot slots stay hot.
#[derive(Debug, Default)]
struct EventArena {
    slots: Vec<Ev>,
    free: Vec<u32>,
}

impl EventArena {
    fn with_capacity(cap: usize) -> EventArena {
        EventArena {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
        }
    }

    /// Park a payload, returning its handle.
    #[inline]
    fn insert(&mut self, ev: Ev) -> u32 {
        match self.free.pop() {
            Some(h) => {
                self.slots[h as usize] = ev;
                h
            }
            None => {
                let h = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
                self.slots.push(ev);
                h
            }
        }
    }

    /// Read a payload back and retire its handle.
    #[inline]
    fn take(&mut self, h: u32) -> Ev {
        self.free.push(h);
        self.slots[h as usize]
    }
}

/// The simulated DBMS.
///
/// Generic over a [`TraceSink`] observing the transaction life cycle
/// (admissions, lock waits/grants, aborts, I/O, commits). The default
/// [`NoopTrace`] sink has an empty `#[inline(always)]` `record`, so the
/// untraced simulator monomorphizes to exactly the pre-tracing code —
/// tracing is a zero-cost abstraction when disabled. Sinks are
/// observational by contract: no sink may change simulation results.
pub struct DbmsSim<T: TraceSink = NoopTrace> {
    hw: HardwareConfig,
    cfg: DbmsConfig,
    /// Future-event list over arena handles; payloads live in `arena`.
    events: EventQueue<u32>,
    /// Pending event payloads, addressed by the handles in `events`.
    arena: EventArena,
    /// The same-timestamp run currently being dispatched (handles), and
    /// the cursor of the next one to process. [`EventQueue::pop_run_into`]
    /// refills the buffer; dispatching from it preserves exact
    /// `(time, seq)` order (see `pop_run_into`'s ordering contract).
    batch: Vec<u32>,
    batch_cursor: usize,
    cpu: CpuBank,
    disks: Vec<Disk>,
    log: Disk,
    /// Commit records accumulated while the log is busy (group commit).
    log_batch: Vec<TxnId>,
    /// Transactions hardened by the force write currently in flight.
    log_current: Vec<TxnId>,
    pool: BufferPool,
    locks: LockManager,
    /// Dense per-transaction state; slots recycle as transactions commit.
    states: Slab<TxnState>,
    /// TxnId → slot, for the subsystems that speak [`TxnId`] (lock grants,
    /// deadlock victims, disk completions). Fx-hashed: ids are dense
    /// integers.
    index: FxHashMap<TxnId, SlotRef>,
    runnable: VecDeque<SlotRef>,
    completions: Vec<Completion>,
    /// Scratch for lock release/abort grant lists (reused every event).
    grant_scratch: Vec<Grant>,
    /// Scratch for POW victim lists (reused every preemption check).
    victim_scratch: Vec<TxnId>,
    rng: SimRng,
    next_id: u64,
    /// Events processed by [`DbmsSim::step`] (the benchmark harness
    /// reports raw events/second from this).
    events_processed: u64,
    metrics: DbmsMetrics,
    /// Fault-injection layer; `None` (the default) is the byte-identical
    /// no-chaos path.
    chaos: Option<ChaosState>,
    trace: T,
}

/// Live state of the fault injectors (see [`crate::fault`]). Each
/// injector draws from its own derived stream so enabling one never
/// shifts another's (or the simulator's) randomness.
#[derive(Debug)]
struct ChaosState {
    spec: FaultSpec,
    /// Injectors stay dormant before this simulated time.
    onset: f64,
    stall_rng: SimRng,
    abort_rng: SimRng,
    spike: Option<Toggler>,
}

/// Capacities of the simulator's reusable hot-loop buffers.
///
/// The allocation-discipline tests run a workload to steady state, snap
/// these, run the same load again, and assert nothing grew — the
/// machine-checked form of "the inner loop allocates only at warm-up".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityStats {
    /// Event-heap capacity.
    pub events: usize,
    /// Allocated transaction slots (live + free).
    pub txn_slots: usize,
    /// Id-index capacity (lower bound, as reported by the map).
    pub txn_index: usize,
    /// Runnable-queue capacity.
    pub runnable: usize,
    /// Completion-buffer capacity.
    pub completions: usize,
    /// Grant-scratch capacity.
    pub grant_scratch: usize,
    /// POW victim-scratch capacity.
    pub victim_scratch: usize,
    /// Group-commit accumulation buffer capacity.
    pub log_batch: usize,
    /// In-flight force buffer capacity.
    pub log_current: usize,
    /// Event-payload arena capacity (slots live + free).
    pub event_arena: usize,
    /// Same-timestamp dispatch-batch buffer capacity.
    pub event_batch: usize,
}

impl DbmsSim {
    /// A fresh simulator. `seed` controls every stochastic choice
    /// (I/O service times, restart backoffs). Tracing is off: the
    /// [`NoopTrace`] sink compiles every trace call away.
    pub fn new(hw: HardwareConfig, cfg: DbmsConfig, seed: u64) -> DbmsSim {
        DbmsSim::with_trace(hw, cfg, seed, NoopTrace)
    }
}

impl<T: TraceSink> DbmsSim<T> {
    /// A fresh simulator whose life-cycle events are observed by
    /// `trace`. Sinks are strictly observational: for any sink the
    /// simulation results are bit-identical to the untraced build
    /// (pinned by the `tracing_is_observational` test and the core
    /// crate's invariance property).
    pub fn with_trace(hw: HardwareConfig, cfg: DbmsConfig, seed: u64, trace: T) -> DbmsSim<T> {
        let cpu = CpuBank::new(hw.cpus, cfg.cpu_policy);
        let disks = (0..hw.data_disks).map(|_| Disk::new()).collect();
        let pool = BufferPool::new(hw.bufferpool_pages);
        let locks = LockManager::new(cfg.lock_policy);
        DbmsSim {
            metrics: DbmsMetrics {
                disk_busy: vec![0.0; hw.data_disks as usize],
                ..Default::default()
            },
            hw,
            cfg,
            // Pre-sized: long runs keep thousands of events in flight and
            // must not re-grow the heap mid-measurement.
            events: EventQueue::with_capacity(1024),
            arena: EventArena::with_capacity(1024),
            batch: Vec::new(),
            batch_cursor: 0,
            cpu,
            disks,
            log: Disk::new(),
            log_batch: Vec::new(),
            log_current: Vec::new(),
            pool,
            locks,
            states: Slab::with_capacity(64),
            index: FxHashMap::default(),
            runnable: VecDeque::with_capacity(64),
            completions: Vec::new(),
            grant_scratch: Vec::new(),
            victim_scratch: Vec::new(),
            rng: SimRng::derive(seed, "dbms"),
            next_id: 0,
            events_processed: 0,
            chaos: None,
            trace,
        }
    }

    /// Attach the service-side fault layer. Injectors stay dormant until
    /// `onset` simulated seconds; their RNG streams derive from `seed`
    /// independently of the simulator's own stream, so a [`FaultSpec`]
    /// with every injector disabled (see [`FaultSpec::is_noop`]) leaves
    /// the simulation byte-identical to one built without this call.
    pub fn with_chaos(mut self, spec: FaultSpec, onset: f64, seed: u64) -> DbmsSim<T> {
        let spike = spec.disk_spike.map(|s| {
            Toggler::new(
                SimRng::derive(seed, "chaos/disk"),
                s.mean_on,
                s.mean_off,
                onset,
            )
        });
        let mut ch = ChaosState {
            spec,
            onset,
            stall_rng: SimRng::derive(seed, "chaos/stall"),
            abort_rng: SimRng::derive(seed, "chaos/abort"),
            spike,
        };
        if spec.abort_rate > 0.0 {
            let t = onset + ch.abort_rng.exp(1.0 / spec.abort_rate);
            let h = self.arena.insert(Ev::ChaosAbort);
            self.events.schedule(SimTime::from_secs_f64(t), h);
        }
        self.chaos = Some(ch);
        self
    }

    /// The attached trace sink.
    pub fn trace(&self) -> &T {
        &self.trace
    }

    /// Mutable access to the trace sink, so the driver can thread its
    /// own typed events (arrival bursts, controller discards) through
    /// the same stream the simulator emits into.
    pub fn trace_mut(&mut self) -> &mut T {
        &mut self.trace
    }

    /// Consume the simulator and hand back its trace sink.
    pub fn into_trace(self) -> T {
        self.trace
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.events.now().as_secs_f64()
    }

    /// Current simulated time as a [`SimTime`].
    pub fn now_time(&self) -> SimTime {
        self.events.now()
    }

    /// Number of transactions currently inside the DBMS (running, blocked,
    /// or backing off before a restart).
    pub fn in_flight(&self) -> usize {
        self.states.len()
    }

    /// Admit a transaction *now*. The caller (the external scheduler) is
    /// responsible for enforcing any MPL.
    pub fn submit(&mut self, body: TxnBody, external_arrival: f64) -> TxnId {
        let id = TxnId(self.next_id);
        self.next_id += 1;
        let now = self.now();
        let r = self.states.insert(TxnState {
            id,
            body,
            external_arrival,
            admitted: now,
            step: 0,
            page: 0,
            lock_acquired: false,
            delay_done: false,
            stalled: false,
            pending_cpu_extra: 0.0,
            phase: Phase::OnCpu, // placeholder until advance() decides
            restarts: 0,
            lock_wait: 0.0,
            block_start: 0.0,
            block_seq: 0,
        });
        self.index.insert(id, r);
        self.runnable.push_back(r);
        self.trace
            .record(TraceEvent::Admission { txn: id.0, t: now });
        self.pump();
        id
    }

    /// Schedule an opaque driver token to fire at `time`; [`DbmsSim::step`]
    /// returns it as [`StepOutcome::External`]. This is how arrival
    /// processes and controller timers share the simulation clock.
    pub fn schedule_external(&mut self, time: SimTime, token: u64) {
        // Drivers compute arrival times in f64 seconds (`now() + delay`);
        // the f64→nanosecond round-trip can land a few ticks before `now`
        // (the f64 representation error at the simulator's time scales is
        // well under a nanosecond, plus the truncating conversion). Clamp
        // only that conversion noise; a genuinely past time is a driver
        // bug and must still trip the event queue's debug assertion.
        const CONVERSION_SLACK_NANOS: u64 = 16;
        let now = self.events.now();
        let time = if time < now && now.as_nanos() - time.as_nanos() <= CONVERSION_SLACK_NANOS {
            now
        } else {
            time
        };
        let h = self.arena.insert(Ev::External { token });
        self.events.schedule(time, h);
    }

    /// Park `ev` in the arena and schedule its handle `delay` seconds out.
    #[inline]
    fn enqueue_in(&mut self, delay: f64, ev: Ev) {
        let h = self.arena.insert(ev);
        self.events.schedule_in(delay, h);
    }

    /// Time of the next pending event, if any. Events already drained
    /// into the dispatch batch are pending at the current timestamp.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if self.batch_cursor < self.batch.len() {
            Some(self.events.now())
        } else {
            self.events.peek_time()
        }
    }

    /// Refill the dispatch batch with the next same-timestamp run.
    /// Returns `false` when the simulator is truly idle.
    fn refill_batch(&mut self) -> bool {
        self.batch_cursor = 0;
        if self.events.pop_run_into(&mut self.batch).is_some() {
            return true;
        }
        // No events pending while transactions are still inside: every
        // in-flight transaction is blocked in a lock queue. Any cycle
        // the incremental detector missed (they can form through
        // queue-bypass reordering or multi-cycle aborts) is broken
        // here — the moral equivalent of a DBMS's lock-timeout sweep.
        if !self.states.is_empty() && self.break_global_deadlock() {
            self.events.pop_run_into(&mut self.batch).is_some()
        } else {
            false
        }
    }

    /// Dispatch one event payload. Shared by the single-step and batched
    /// entry points so the two cannot diverge. Returns the external token
    /// when the event was a driver timer (dispatch then stops *without*
    /// pumping, exactly as before: the driver reacts first).
    #[inline]
    fn dispatch(&mut self, ev: Ev) -> Option<u64> {
        self.events_processed += 1;
        match ev {
            Ev::External { token } => return Some(token),
            Ev::CpuDone { epoch, txn } => self.on_cpu_done(epoch, txn),
            Ev::DiskDone { disk } => self.on_disk_done(disk),
            Ev::LogDone => self.on_log_done(),
            Ev::Restart { txn } => self.on_restart(txn),
            Ev::DelayDone { txn } => self.on_delay_done(txn),
            Ev::LockTimeout { txn, block_seq } => self.on_lock_timeout(txn, block_seq),
            Ev::ChaosAbort => self.on_chaos_abort(),
        }
        self.pump();
        None
    }

    /// Process one event. Returns [`StepOutcome::Idle`] when no events
    /// remain (the driver then either schedules more arrivals or stops).
    ///
    /// Dispatch is batched under the hood: the queue drains whole
    /// same-timestamp runs into a reusable buffer and `step` consumes the
    /// buffer one event per call. The observable sequence of outcomes —
    /// and every simulation result — is bit-identical to popping events
    /// one at a time.
    pub fn step(&mut self) -> StepOutcome {
        if self.batch_cursor >= self.batch.len() && !self.refill_batch() {
            return StepOutcome::Idle;
        }
        let h = self.batch[self.batch_cursor];
        self.batch_cursor += 1;
        let ev = self.arena.take(h);
        match self.dispatch(ev) {
            Some(token) => StepOutcome::External(token),
            None => StepOutcome::Advanced,
        }
    }

    /// Batched fast path: dispatch the *rest of the current
    /// same-timestamp run* — refilled from the heap when the buffer is
    /// empty — through one tight loop, instead of paying the `step` call
    /// round-trip per event. Stops early (run remainder kept buffered)
    /// when an external token fires, so driver timers still interleave
    /// exactly as with [`DbmsSim::step`].
    ///
    /// Equivalent to calling `step` in a loop until it returns something
    /// other than [`StepOutcome::Advanced`] or the run ends; the
    /// simulation state after either entry point is bit-identical.
    pub fn step_run(&mut self) -> StepOutcome {
        if self.batch_cursor >= self.batch.len() && !self.refill_batch() {
            return StepOutcome::Idle;
        }
        while self.batch_cursor < self.batch.len() {
            let h = self.batch[self.batch_cursor];
            self.batch_cursor += 1;
            let ev = self.arena.take(h);
            if let Some(token) = self.dispatch(ev) {
                return StepOutcome::External(token);
            }
        }
        StepOutcome::Advanced
    }

    /// Take all completions recorded since the last call.
    ///
    /// Convenience form that hands over the internal buffer; the driver's
    /// hot loop uses [`DbmsSim::drain_completions_into`] instead, which
    /// recycles a caller-owned buffer and keeps the steady state
    /// allocation-free.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Swap all completions recorded since the last call into `out`
    /// (cleared first). The caller's buffer becomes the simulator's next
    /// accumulation buffer, so two buffers ping-pong and neither ever
    /// reallocates once warm.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.clear();
        std::mem::swap(&mut self.completions, out);
    }

    /// Capacities of the reusable hot-loop buffers (see [`CapacityStats`]).
    pub fn capacity_stats(&self) -> CapacityStats {
        CapacityStats {
            events: self.events.capacity(),
            txn_slots: self.states.capacity(),
            txn_index: self.index.capacity(),
            runnable: self.runnable.capacity(),
            completions: self.completions.capacity(),
            grant_scratch: self.grant_scratch.capacity(),
            victim_scratch: self.victim_scratch.capacity(),
            log_batch: self.log_batch.capacity(),
            log_current: self.log_current.capacity(),
            event_arena: self.arena.slots.capacity(),
            event_batch: self.batch.capacity(),
        }
    }

    /// Aggregate metrics up to the current simulated time.
    pub fn metrics(&mut self) -> DbmsMetrics {
        let now = self.now();
        let mut m = self.metrics.clone();
        m.cpu_busy = self.cpu.busy_time(now);
        for (i, d) in self.disks.iter_mut().enumerate() {
            m.disk_busy[i] = d.busy_time(now);
        }
        m.log_busy = self.log.busy_time(now);
        m.bp_hits = self.pool.hits();
        m.bp_misses = self.pool.misses();
        m.elapsed = now;
        m
    }

    /// Direct access to the lock manager (used by tests and invariants).
    pub fn lock_manager(&self) -> &LockManager {
        &self.locks
    }

    /// Total events processed by [`DbmsSim::step`] so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Diagnostic: counts of transactions per phase, lock-waiting count,
    /// and pending event count — used to investigate stuck configurations.
    pub fn debug_state(&self) -> String {
        let mut counts = std::collections::BTreeMap::new();
        for (_, st) in self.states.iter() {
            *counts.entry(format!("{:?}", st.phase)).or_insert(0u32) += 1;
        }
        format!(
            "in_flight={} phases={:?} lock_waiting={} events={}",
            self.states.len(),
            counts,
            self.locks.waiting_count(),
            self.events.len() + (self.batch.len() - self.batch_cursor)
        )
    }

    /// Pre-populate the buffer pool (typically with the hottest pages, i.e.
    /// the lowest Zipf ranks) so short runs don't spend their measurement
    /// window warming a cold cache. Does not count as hits or misses.
    pub fn warm_bufferpool(&mut self, pages: impl IntoIterator<Item = PageId>) {
        for p in pages {
            self.pool.insert(p);
        }
    }

    /// Hardware configuration the simulator runs.
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_cpu_done(&mut self, epoch: u64, txn: TxnId) {
        if !self.cpu.is_current(epoch) {
            return; // stale completion; a newer event is queued
        }
        let now = self.now();
        self.cpu.complete(now, txn);
        self.resched_cpu();
        let r = *self.index.get(&txn).expect("cpu done for unknown txn");
        let st = self.states.get_mut(r).expect("cpu done for stale slot");
        debug_assert_eq!(st.phase, Phase::OnCpu);
        st.step += 1;
        st.page = 0;
        st.lock_acquired = false;
        st.delay_done = false;
        st.stalled = false;
        self.runnable.push_back(r);
    }

    fn on_disk_done(&mut self, disk: usize) {
        let now = self.now();
        let (done, next) = self.disks[disk].complete(now);
        if let Some((_, delay)) = next {
            self.enqueue_in(delay, Ev::DiskDone { disk });
        }
        if done.txn == Self::WRITEBACK {
            return; // background flush; nobody is waiting
        }
        let r = *self.index.get(&done.txn).expect("io for unknown txn");
        let st = self.states.get_mut(r).expect("io for stale slot");
        debug_assert_eq!(st.phase, Phase::ReadingPage);
        let page = st.body.steps[st.step].pages[st.page];
        self.pool.insert(page);
        st.page += 1;
        self.runnable.push_back(r);
    }

    fn on_log_done(&mut self) {
        let now = self.now();
        if self.cfg.group_commit {
            let (_, next) = self.log.complete(now);
            debug_assert!(next.is_none(), "group commit never queues in the disk");
            let mut hardened = std::mem::take(&mut self.log_current);
            self.trace.record(TraceEvent::GroupCommit {
                batch: hardened.len() as u32,
                t: now,
            });
            // Start one force for everything that accumulated meanwhile.
            if !self.log_batch.is_empty() {
                self.metrics.group_commits += 1;
                let leader = self.log_batch[0];
                let service = self.rng.exp(self.hw.log_write_time);
                let delay = self
                    .log
                    .submit(
                        now,
                        IoRequest {
                            txn: leader,
                            service,
                        },
                    )
                    .expect("log just became idle");
                std::mem::swap(&mut self.log_batch, &mut self.log_current);
                self.enqueue_in(delay, Ev::LogDone);
            }
            for &txn in hardened.iter() {
                self.commit(txn);
            }
            // Recycle the drained force buffer: it becomes the next
            // accumulation batch (a force is in flight) or the next force
            // buffer (log went idle) — either way the vectors ping-pong
            // without reallocating.
            hardened.clear();
            if self.log.is_busy() {
                self.log_batch = hardened;
            } else {
                self.log_current = hardened;
            }
        } else {
            let (done, next) = self.log.complete(now);
            if let Some((_, delay)) = next {
                self.enqueue_in(delay, Ev::LogDone);
            }
            self.commit(done.txn);
        }
    }

    fn on_delay_done(&mut self, txn: SlotRef) {
        let st = self.states.get_mut(txn).expect("delay for unknown txn");
        debug_assert_eq!(st.phase, Phase::InStepDelay);
        st.delay_done = true;
        self.runnable.push_back(txn);
    }

    fn on_lock_timeout(&mut self, txn: SlotRef, block_seq: u64) {
        let Some(st) = self.states.get(txn) else {
            return; // committed meanwhile (slot generation moved on)
        };
        if st.phase != Phase::AcquiringLock || st.block_seq != block_seq {
            return; // the request this timer was armed for was granted
        }
        let id = st.id;
        self.metrics.timeout_aborts += 1;
        // The Timeout strategy's lock-timeout abort is its form of
        // deadlock resolution, so it shares the trace kind.
        let t = self.now();
        self.trace
            .record(TraceEvent::DeadlockAbort { txn: id.0, t });
        self.abort_txn(id);
        self.pump();
    }

    fn on_restart(&mut self, txn: SlotRef) {
        let st = self.states.get_mut(txn).expect("restart for unknown txn");
        debug_assert_eq!(st.phase, Phase::BackingOff);
        self.runnable.push_back(txn);
    }

    /// One tick of the client abort storm: kill the youngest transaction
    /// currently blocked in a lock queue (a client giving up on a stuck
    /// request), then schedule the next tick of the Poisson stream.
    fn on_chaos_abort(&mut self) {
        let now = self.now();
        let delay = {
            let ch = self.chaos.as_mut().expect("storm tick without chaos");
            ch.abort_rng.exp(1.0 / ch.spec.abort_rate)
        };
        self.enqueue_in(delay, Ev::ChaosAbort);
        let victim = self
            .states
            .iter()
            .filter(|(_, st)| st.phase == Phase::AcquiringLock)
            .map(|(_, st)| st.id)
            .max();
        if let Some(v) = victim {
            self.trace
                .record(TraceEvent::ChaosAbort { txn: v.0, t: now });
            self.abort_txn(v);
        }
    }

    /// Current data-disk service multiplier under the spike injector
    /// (1.0 when chaos is off or the spike is dormant). Polling emits a
    /// [`TraceEvent::ChaosDiskSpike`] per phase flip; the flip schedule
    /// itself is consultation-independent (see [`Toggler`]). Takes the
    /// fields it needs instead of `&mut self` so callers may hold a
    /// `states` borrow.
    fn chaos_disk_factor(chaos: &mut Option<ChaosState>, trace: &mut T, now: f64) -> f64 {
        let Some(ch) = chaos.as_mut() else {
            return 1.0;
        };
        let Some(tog) = ch.spike.as_mut() else {
            return 1.0;
        };
        while let Some((t, active)) = tog.poll(now) {
            trace.record(TraceEvent::ChaosDiskSpike { t, active });
        }
        if tog.is_active() {
            ch.spec.disk_spike.map_or(1.0, |s| s.factor)
        } else {
            1.0
        }
    }

    /// Roll the stall injector for a just-acquired step lock: `Some(len)`
    /// when the holder should freeze. One uniform draw per acquisition
    /// while enabled and past onset; zero draws otherwise.
    fn stall_draw(chaos: &mut Option<ChaosState>, now: f64) -> Option<f64> {
        let ch = chaos.as_mut()?;
        let sp = ch.spec.stall?;
        if now < ch.onset || sp.p_per_lock <= 0.0 {
            return None;
        }
        ch.stall_rng
            .chance(sp.p_per_lock)
            .then(|| ch.stall_rng.exp(sp.mean_secs))
    }

    // ------------------------------------------------------------------
    // Transaction state machine
    // ------------------------------------------------------------------

    /// Drain the runnable queue, advancing each transaction to its next
    /// blocking point. Grants and aborts push more work onto the queue, so
    /// this loop (not recursion) handles arbitrarily long cascades.
    fn pump(&mut self) {
        while let Some(r) = self.runnable.pop_front() {
            if self.states.get(r).is_some() {
                self.advance(r);
            }
        }
    }

    /// The effective lock of a step under the configured isolation level:
    /// Uncommitted Read skips shared locks entirely.
    fn effective_lock(
        &self,
        step_lock: Option<(crate::txn::ItemId, LockMode)>,
    ) -> Option<(crate::txn::ItemId, LockMode)> {
        match (self.cfg.isolation, step_lock) {
            (IsolationLevel::UncommittedRead, Some((_, LockMode::Shared))) => None,
            (_, l) => l,
        }
    }

    fn advance(&mut self, r: SlotRef) {
        let now = self.now();
        loop {
            let st = self.states.get_mut(r).expect("advancing unknown txn");
            let txn = st.id;
            if st.step >= st.body.steps.len() {
                // Commit: force the log. Under group commit, records that
                // arrive while a force is in flight are hardened together
                // by the next force.
                st.phase = Phase::WritingLog;
                if self.cfg.group_commit {
                    if self.log.is_busy() {
                        self.log_batch.push(txn);
                    } else {
                        let service = self.rng.exp(self.hw.log_write_time);
                        let delay = self
                            .log
                            .submit(now, IoRequest { txn, service })
                            .expect("idle log must start immediately");
                        debug_assert!(self.log_current.is_empty());
                        self.log_current.push(txn);
                        self.enqueue_in(delay, Ev::LogDone);
                    }
                } else {
                    let service = self.rng.exp(self.hw.log_write_time);
                    if let Some(delay) = self.log.submit(now, IoRequest { txn, service }) {
                        self.enqueue_in(delay, Ev::LogDone);
                    }
                }
                return;
            }
            if !st.delay_done && self.hw.step_delay > 0.0 {
                st.phase = Phase::InStepDelay;
                let d = self.rng.exp(self.hw.step_delay);
                self.enqueue_in(d, Ev::DelayDone { txn: r });
                return;
            }
            st.delay_done = true;
            let step_lock = st.body.steps[st.step].lock;
            let lock_needed = self.effective_lock(step_lock);
            let st = self.states.get_mut(r).expect("advancing unknown txn");
            if !st.lock_acquired {
                if let Some((item, mode)) = lock_needed {
                    let prio = st.body.priority;
                    match self.locks.request(txn, prio, item, mode) {
                        RequestOutcome::Granted => {
                            self.states.get_mut(r).unwrap().lock_acquired = true;
                        }
                        RequestOutcome::Blocked => {
                            let st = self.states.get_mut(r).unwrap();
                            st.phase = Phase::AcquiringLock;
                            st.block_start = now;
                            st.block_seq += 1;
                            let seq = st.block_seq;
                            self.trace
                                .record(TraceEvent::LockWait { txn: txn.0, t: now });
                            self.handle_block(txn, r, item, prio, seq);
                            return;
                        }
                    }
                } else {
                    st.lock_acquired = true;
                }
            }
            // Chaos: a freshly secured step lock may stall its holder. The
            // dice roll happens once per acquisition (`stalled` latches it),
            // never on the resume pass after the stall elapses.
            if self.chaos.is_some() && lock_needed.is_some() {
                let st = self.states.get_mut(r).expect("advancing unknown txn");
                if !st.stalled {
                    st.stalled = true;
                    if let Some(secs) = Self::stall_draw(&mut self.chaos, now) {
                        let st = self.states.get_mut(r).unwrap();
                        st.phase = Phase::InStepDelay;
                        self.enqueue_in(secs, Ev::DelayDone { txn: r });
                        self.trace.record(TraceEvent::ChaosStall {
                            txn: txn.0,
                            t: now,
                            secs,
                        });
                        return;
                    }
                }
            }
            // Page accesses.
            let st = self.states.get_mut(r).expect("advancing unknown txn");
            let step = &st.body.steps[st.step];
            while st.page < step.pages.len() {
                let pg = step.pages[st.page];
                if self.pool.probe(pg) {
                    st.pending_cpu_extra += self.cfg.hit_cpu_time;
                    st.page += 1;
                } else {
                    st.phase = Phase::ReadingPage;
                    let disk = Self::disk_of(pg, self.disks.len());
                    let factor = Self::chaos_disk_factor(&mut self.chaos, &mut self.trace, now);
                    let service = self.rng.exp(self.hw.disk_read_time) * factor;
                    if let Some(delay) = self.disks[disk].submit(now, IoRequest { txn, service }) {
                        self.enqueue_in(delay, Ev::DiskDone { disk });
                    }
                    self.trace.record(TraceEvent::DiskIo {
                        disk: disk as u32,
                        t: now,
                    });
                    return;
                }
            }
            // CPU burst.
            let work = step.cpu + st.pending_cpu_extra;
            st.pending_cpu_extra = 0.0;
            if work > 0.0 {
                st.phase = Phase::OnCpu;
                let prio = st.body.priority;
                self.cpu.add(now, txn, work, prio);
                self.resched_cpu();
                return;
            }
            st.step += 1;
            st.page = 0;
            st.lock_acquired = false;
            st.delay_done = false;
            st.stalled = false;
        }
    }

    fn disk_of(page: PageId, n_disks: usize) -> usize {
        (page.0 % n_disks as u64) as usize
    }

    /// Re-schedule the CPU bank's next completion under the current epoch.
    fn resched_cpu(&mut self) {
        let now = self.now();
        if let Some((dt, txn)) = self.cpu.next_completion(now) {
            let epoch = self.cpu.epoch();
            self.enqueue_in(dt, Ev::CpuDone { epoch, txn });
        }
    }

    /// A lock request just blocked: run deadlock detection and, for
    /// high-priority requesters under POW, preempt blocked low-priority
    /// holders.
    fn handle_block(
        &mut self,
        txn: TxnId,
        r: SlotRef,
        item: crate::txn::ItemId,
        prio: Priority,
        seq: u64,
    ) {
        match self.cfg.deadlock {
            DeadlockStrategy::Detection => {
                // A single block can close more than one cycle; abort
                // victims until no cycle through this transaction remains.
                // (Aborting a victim may grant `txn` its lock, at which
                // point the detector finds nothing and the loop ends.)
                while let Some(victim) = self.locks.find_deadlock_victim(txn) {
                    self.metrics.deadlock_aborts += 1;
                    let t = self.now();
                    self.trace
                        .record(TraceEvent::DeadlockAbort { txn: victim.0, t });
                    self.abort_txn(victim);
                }
            }
            DeadlockStrategy::Timeout { timeout } => {
                self.enqueue_in(
                    timeout,
                    Ev::LockTimeout {
                        txn: r,
                        block_seq: seq,
                    },
                );
            }
        }
        if self.cfg.lock_policy == LockPriorityPolicy::PreemptOnWait
            && prio == Priority::High
            && self.states.get(r).map(|s| s.phase) == Some(Phase::AcquiringLock)
        {
            let mut victims = std::mem::take(&mut self.victim_scratch);
            victims.clear();
            {
                let states = &self.states;
                let index = &self.index;
                self.locks.pow_victims_into(item, &mut victims, |t| {
                    index
                        .get(&t)
                        .and_then(|&r| states.get(r))
                        .map(|s| s.body.priority)
                });
            }
            for v in victims.drain(..) {
                // An earlier victim's abort may have granted this one the
                // lock it was waiting for — it is no longer a *blocked*
                // holder, so POW has no claim on it. (Aborting it anyway,
                // as the pre-slab code did, restarted a transaction that
                // was already back on the runnable queue and corrupted
                // its event flow.)
                if self.locks.waiting_for(v).is_none() {
                    continue;
                }
                self.metrics.pow_aborts += 1;
                let t = self.now();
                self.trace.record(TraceEvent::PowPreempt { txn: v.0, t });
                self.abort_txn(v);
            }
            self.victim_scratch = victims;
        }
    }

    /// Break a stall in which every in-flight transaction waits in a lock
    /// queue: abort a cycle victim if the detector finds one, otherwise
    /// the youngest waiter (our waits-for edges under priority reordering
    /// are an under-approximation, so a stalled cycle may be invisible).
    /// Returns true if it aborted something.
    fn break_global_deadlock(&mut self) -> bool {
        let mut blocked: Vec<TxnId> = self
            .states
            .iter()
            .filter(|(_, st)| st.phase == Phase::AcquiringLock)
            .map(|(_, st)| st.id)
            .collect();
        if blocked.is_empty() {
            return false;
        }
        blocked.sort();
        for t in &blocked {
            if let Some(victim) = self.locks.find_deadlock_victim(*t) {
                self.metrics.deadlock_aborts += 1;
                let now = self.now();
                self.trace.record(TraceEvent::DeadlockAbort {
                    txn: victim.0,
                    t: now,
                });
                self.abort_txn(victim);
                self.pump();
                return true;
            }
        }
        let victim = *blocked.last().expect("nonempty");
        self.metrics.deadlock_aborts += 1;
        let now = self.now();
        self.trace.record(TraceEvent::DeadlockAbort {
            txn: victim.0,
            t: now,
        });
        self.abort_txn(victim);
        self.pump();
        true
    }

    /// Abort a *blocked* transaction: release its locks (resuming any
    /// waiters they unblock), reset its program counter, and schedule its
    /// restart after an exponential backoff.
    fn abort_txn(&mut self, victim: TxnId) {
        let now = self.now();
        self.metrics.aborts += 1;
        let r = *self.index.get(&victim).expect("aborting unknown txn");
        {
            let st = self.states.get(r).expect("aborting stale slot");
            debug_assert_eq!(
                st.phase,
                Phase::AcquiringLock,
                "victims are blocked by construction"
            );
        }
        let mut grants = std::mem::take(&mut self.grant_scratch);
        grants.clear();
        self.locks.abort_into(victim, &mut grants);
        self.resume_grants(&grants, now);
        grants.clear();
        self.grant_scratch = grants;
        let backoff = self.rng.exp(self.cfg.restart_backoff);
        let st = self.states.get_mut(r).unwrap();
        st.restarts += 1;
        st.step = 0;
        st.page = 0;
        st.lock_acquired = false;
        st.delay_done = false;
        st.stalled = false;
        st.pending_cpu_extra = 0.0;
        if st.restarts > self.cfg.max_restarts {
            // Livelock guard: give up on 2PL for this transaction and let
            // it run lock-free (never observed in the paper's range).
            st.phase = Phase::OnCpu;
            st.body.steps.iter_mut().for_each(|s| s.lock = None);
            self.runnable.push_back(r);
            return;
        }
        st.phase = Phase::BackingOff;
        self.enqueue_in(backoff, Ev::Restart { txn: r });
    }

    fn resume_grants(&mut self, grants: &[Grant], now: f64) {
        for g in grants {
            let r = *self.index.get(&g.txn).expect("grant for unknown txn");
            let st = self.states.get_mut(r).expect("grant for stale slot");
            debug_assert_eq!(st.phase, Phase::AcquiringLock);
            let waited = now - st.block_start;
            st.lock_wait += waited;
            st.lock_acquired = true;
            self.runnable.push_back(r);
            self.trace.record(TraceEvent::LockGrant {
                txn: g.txn.0,
                t: now,
                waited,
            });
        }
    }

    /// Sentinel owner for asynchronous dirty-page write-backs.
    const WRITEBACK: TxnId = TxnId(u64::MAX);

    fn commit(&mut self, txn: TxnId) {
        let now = self.now();
        let mut grants = std::mem::take(&mut self.grant_scratch);
        grants.clear();
        self.locks.release_all_into(txn, &mut grants);
        self.resume_grants(&grants, now);
        grants.clear();
        self.grant_scratch = grants;
        let r = self.index.remove(&txn).expect("committing unknown txn");
        let st = self.states.remove(r).expect("committing stale slot");
        if self.cfg.writeback_fraction > 0.0 {
            // Flush a fraction of the touched pages back to the data
            // disks; the transaction does not wait for these.
            let frac = self.cfg.writeback_fraction;
            let factor = Self::chaos_disk_factor(&mut self.chaos, &mut self.trace, now);
            for pg in st.body.steps.iter().flat_map(|s| s.pages.iter().copied()) {
                if self.rng.chance(frac) {
                    let disk = Self::disk_of(pg, self.disks.len());
                    let service = self.rng.exp(self.hw.disk_read_time) * factor;
                    let req = IoRequest {
                        txn: Self::WRITEBACK,
                        service,
                    };
                    if let Some(delay) = self.disks[disk].submit(now, req) {
                        self.enqueue_in(delay, Ev::DiskDone { disk });
                    }
                    self.metrics.writebacks += 1;
                    self.trace.record(TraceEvent::DiskIo {
                        disk: disk as u32,
                        t: now,
                    });
                }
            }
        }
        self.metrics.commits += 1;
        self.trace.record(TraceEvent::Commit { txn: txn.0, t: now });
        self.completions.push(Completion {
            txn_type: st.body.txn_type,
            priority: st.body.priority,
            external_arrival: st.external_arrival,
            admitted: st.admitted,
            completed: now,
            restarts: st.restarts,
            lock_wait: st.lock_wait,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuPolicy;
    use crate::txn::{ItemId, Step};

    fn run_to_idle<T: TraceSink>(sim: &mut DbmsSim<T>) {
        while sim.step() != StepOutcome::Idle {}
    }

    fn cpu_only_txn(cpu: f64) -> TxnBody {
        TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step::compute(cpu)],
        }
    }

    fn sim(hw: HardwareConfig, cfg: DbmsConfig) -> DbmsSim {
        DbmsSim::new(hw, cfg, 42)
    }

    #[test]
    fn single_cpu_transaction_completes() {
        let mut s = sim(HardwareConfig::default(), DbmsConfig::default());
        s.submit(cpu_only_txn(0.010), 0.0);
        run_to_idle(&mut s);
        let done = s.drain_completions();
        assert_eq!(done.len(), 1);
        // Response = cpu burst + one log write (stochastic), so > 10 ms.
        assert!(done[0].response_time() >= 0.010);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn page_misses_go_to_disk_then_hit() {
        let hw = HardwareConfig::default();
        let body = TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step {
                lock: None,
                pages: vec![PageId(7), PageId(7)],
                cpu: 0.001,
            }],
        };
        let mut s = sim(hw, DbmsConfig::default());
        s.submit(body.clone(), 0.0);
        run_to_idle(&mut s);
        let m = s.metrics();
        assert_eq!(m.bp_misses, 1, "first access misses");
        assert_eq!(m.bp_hits, 1, "second access hits");
        // Second transaction touching the same page: all hits.
        s.submit(body, s.now());
        run_to_idle(&mut s);
        let m = s.metrics();
        assert_eq!(m.bp_misses, 1);
        assert_eq!(m.bp_hits, 3);
    }

    #[test]
    fn conflicting_writers_serialize() {
        let mk = || TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step {
                lock: Some((ItemId(1), LockMode::Exclusive)),
                pages: vec![],
                cpu: 0.010,
            }],
        };
        let mut s = sim(HardwareConfig::default(), DbmsConfig::default());
        s.submit(mk(), 0.0);
        s.submit(mk(), 0.0);
        run_to_idle(&mut s);
        let done = s.drain_completions();
        assert_eq!(done.len(), 2);
        let mut times: Vec<f64> = done.iter().map(|c| c.completed).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Serialized on the lock: second commit at least one burst later.
        assert!(times[1] - times[0] >= 0.010 - 1e-9);
        let second = done
            .iter()
            .max_by(|a, b| a.completed.partial_cmp(&b.completed).unwrap())
            .unwrap();
        assert!(second.lock_wait > 0.0, "second writer must have waited");
    }

    #[test]
    fn readers_run_concurrently_under_rr() {
        let mk = || TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step {
                lock: Some((ItemId(1), LockMode::Shared)),
                pages: vec![],
                cpu: 0.010,
            }],
        };
        let hw = HardwareConfig::default().with_cpus(2);
        let mut s = sim(hw, DbmsConfig::default());
        s.submit(mk(), 0.0);
        s.submit(mk(), 0.0);
        run_to_idle(&mut s);
        for c in s.drain_completions() {
            assert_eq!(c.lock_wait, 0.0, "shared locks should not block");
        }
    }

    #[test]
    fn deadlock_is_broken_and_both_commit() {
        // T1: X(1) then X(2); T2: X(2) then X(1) — classic deadlock.
        let t1 = TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![
                Step {
                    lock: Some((ItemId(1), LockMode::Exclusive)),
                    pages: vec![],
                    cpu: 0.005,
                },
                Step {
                    lock: Some((ItemId(2), LockMode::Exclusive)),
                    pages: vec![],
                    cpu: 0.005,
                },
            ],
        };
        let mut t2 = t1.clone();
        t2.steps.swap(0, 1);
        let hw = HardwareConfig::default().with_cpus(2);
        let mut s = sim(hw, DbmsConfig::default());
        s.submit(t1, 0.0);
        s.submit(t2, 0.0);
        run_to_idle(&mut s);
        let done = s.drain_completions();
        assert_eq!(done.len(), 2, "both must eventually commit");
        let m = s.metrics();
        assert!(m.deadlock_aborts >= 1, "a deadlock must have been detected");
        assert!(done.iter().any(|c| c.restarts > 0));
        s.lock_manager().check_invariants();
    }

    #[test]
    fn uncommitted_read_skips_shared_locks() {
        let mk = |mode| TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step {
                lock: Some((ItemId(1), mode)),
                pages: vec![],
                cpu: 0.010,
            }],
        };
        let cfg = DbmsConfig::default().with_isolation(IsolationLevel::UncommittedRead);
        let mut s = sim(HardwareConfig::default(), cfg);
        // A writer holds X(1); a reader under UR sails through.
        s.submit(mk(LockMode::Exclusive), 0.0);
        s.submit(mk(LockMode::Shared), 0.0);
        run_to_idle(&mut s);
        for c in s.drain_completions() {
            assert_eq!(c.lock_wait, 0.0, "UR reads never wait");
        }
    }

    #[test]
    fn pow_preempts_blocked_low_holder() {
        // Low L1 holds item 1, then blocks on item 2 (held by low L2).
        // High H blocks on item 1 → POW aborts L1 → H proceeds.
        let l1 = TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![
                Step {
                    lock: Some((ItemId(1), LockMode::Exclusive)),
                    pages: vec![],
                    cpu: 0.001,
                },
                Step {
                    lock: Some((ItemId(2), LockMode::Exclusive)),
                    pages: vec![],
                    cpu: 0.050,
                },
            ],
        };
        let l2 = TxnBody {
            txn_type: 1,
            priority: Priority::Low,
            steps: vec![Step {
                lock: Some((ItemId(2), LockMode::Exclusive)),
                pages: vec![],
                cpu: 0.100,
            }],
        };
        let h = TxnBody {
            txn_type: 2,
            priority: Priority::High,
            steps: vec![Step {
                lock: Some((ItemId(1), LockMode::Exclusive)),
                pages: vec![],
                cpu: 0.001,
            }],
        };
        let cfg = DbmsConfig::default().with_lock_policy(LockPriorityPolicy::PreemptOnWait);
        let hw = HardwareConfig::default().with_cpus(2);
        let mut s = sim(hw, cfg);
        s.submit(l2, 0.0); // grabs item 2 first
        s.submit(l1, 0.0); // grabs item 1, then blocks on item 2
        while s.lock_manager().waiting_count() == 0 {
            assert_ne!(s.step(), StepOutcome::Idle, "L1 never blocked");
        }
        s.submit(h, 0.0);
        run_to_idle(&mut s);
        let done = s.drain_completions();
        assert_eq!(done.len(), 3);
        let m = s.metrics();
        assert!(m.pow_aborts >= 1, "POW must have preempted L1");
        let high = done.iter().find(|c| c.priority == Priority::High).unwrap();
        let l1c = done.iter().find(|c| c.txn_type == 0).unwrap();
        assert!(high.completed < l1c.completed, "high finishes before L1");
    }

    #[test]
    fn external_tokens_interleave_with_events() {
        let mut s = sim(HardwareConfig::default(), DbmsConfig::default());
        s.schedule_external(SimTime::from_secs_f64(0.5), 99);
        s.submit(cpu_only_txn(0.1), 0.0);
        let mut saw_token_at = None;
        loop {
            match s.step() {
                StepOutcome::External(tok) => {
                    saw_token_at = Some((tok, s.now()));
                }
                StepOutcome::Idle => break,
                StepOutcome::Advanced => {}
            }
        }
        let (tok, at) = saw_token_at.expect("token fired");
        assert_eq!(tok, 99);
        assert!((at - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uncommitted_read_still_enforces_write_locks() {
        // UR drops S locks but writers must still serialize on X.
        let mk = || TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step {
                lock: Some((ItemId(1), LockMode::Exclusive)),
                pages: vec![],
                cpu: 0.010,
            }],
        };
        let cfg = DbmsConfig::default().with_isolation(IsolationLevel::UncommittedRead);
        let hw = HardwareConfig::default().with_cpus(2);
        let mut s = sim(hw, cfg);
        s.submit(mk(), 0.0);
        s.submit(mk(), 0.0);
        run_to_idle(&mut s);
        let done = s.drain_completions();
        let second = done
            .iter()
            .max_by(|a, b| a.completed.partial_cmp(&b.completed).unwrap())
            .unwrap();
        assert!(second.lock_wait > 0.0, "X-X conflict must block under UR");
    }

    #[test]
    fn cpu_priority_mode_speeds_up_high_class_end_to_end() {
        let mk = |prio| TxnBody {
            txn_type: 0,
            priority: prio,
            steps: vec![Step::compute(0.050)],
        };
        let cfg = DbmsConfig::default().with_cpu_policy(CpuPolicy::PrioritizeHigh);
        let mut s = DbmsSim::new(HardwareConfig::default(), cfg, 7);
        // 8 low-priority hogs plus one high-priority txn, all at t=0.
        for _ in 0..8 {
            s.submit(mk(Priority::Low), 0.0);
        }
        s.submit(mk(Priority::High), 0.0);
        run_to_idle(&mut s);
        let done = s.drain_completions();
        let high = done.iter().find(|c| c.priority == Priority::High).unwrap();
        let low_best = done
            .iter()
            .filter(|c| c.priority == Priority::Low)
            .map(|c| c.response_time())
            .fold(f64::INFINITY, f64::min);
        assert!(
            high.response_time() < 0.5 * low_best,
            "high {} vs best low {low_best}",
            high.response_time()
        );
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        // Many tiny transactions commit in a burst: with group commit the
        // log performs far fewer forces and throughput is higher.
        let run = |group: bool| -> (f64, u64) {
            let cfg = DbmsConfig::default().with_group_commit(group);
            let hw = HardwareConfig {
                log_write_time: 0.005,
                step_delay: 0.0,
                ..Default::default()
            };
            let mut s = DbmsSim::new(hw, cfg, 1);
            for _ in 0..50 {
                s.submit(cpu_only_txn(0.0001), 0.0);
            }
            run_to_idle(&mut s);
            let done = s.drain_completions();
            assert_eq!(done.len(), 50);
            let finish = done.iter().map(|c| c.completed).fold(0.0, f64::max);
            (finish, s.metrics().group_commits)
        };
        let (t_single, g_single) = run(false);
        let (t_group, g_group) = run(true);
        assert_eq!(g_single, 0);
        assert!(g_group > 0, "group commits must have happened");
        assert!(
            t_group < 0.5 * t_single,
            "group commit should finish the burst much faster: {t_group} vs {t_single}"
        );
    }

    #[test]
    fn lock_timeout_strategy_breaks_deadlock() {
        let t1 = TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![
                Step {
                    lock: Some((ItemId(1), LockMode::Exclusive)),
                    pages: vec![],
                    cpu: 0.005,
                },
                Step {
                    lock: Some((ItemId(2), LockMode::Exclusive)),
                    pages: vec![],
                    cpu: 0.005,
                },
            ],
        };
        let mut t2 = t1.clone();
        t2.steps.swap(0, 1);
        let cfg = DbmsConfig::default().with_deadlock(DeadlockStrategy::Timeout { timeout: 0.05 });
        let hw = HardwareConfig::default().with_cpus(2);
        let mut s = DbmsSim::new(hw, cfg, 42);
        s.submit(t1, 0.0);
        s.submit(t2, 0.0);
        run_to_idle(&mut s);
        let done = s.drain_completions();
        assert_eq!(done.len(), 2, "both must commit eventually");
        let m = s.metrics();
        assert!(m.timeout_aborts >= 1, "a timeout must have fired");
        assert_eq!(m.deadlock_aborts, 0, "no graph detection under Timeout");
    }

    #[test]
    fn stale_lock_timeouts_are_ignored() {
        // A request that is granted before its timer fires must not abort.
        let writer = TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step {
                lock: Some((ItemId(1), LockMode::Exclusive)),
                pages: vec![],
                cpu: 0.010,
            }],
        };
        let cfg = DbmsConfig::default().with_deadlock(DeadlockStrategy::Timeout { timeout: 10.0 });
        let mut s = DbmsSim::new(HardwareConfig::default(), cfg, 42);
        s.submit(writer.clone(), 0.0);
        s.submit(writer, 0.0); // waits ~13 ms, well under the timeout
        run_to_idle(&mut s);
        assert_eq!(s.drain_completions().len(), 2);
        assert_eq!(s.metrics().timeout_aborts, 0);
    }

    #[test]
    fn writeback_loads_disks_without_blocking_commits() {
        let body = TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step {
                lock: None,
                pages: vec![PageId(1), PageId(2), PageId(3), PageId(4)],
                cpu: 0.001,
            }],
        };
        let run = |frac: f64| -> (f64, u64, f64) {
            let cfg = DbmsConfig::default().with_writeback_fraction(frac);
            let mut s = DbmsSim::new(HardwareConfig::default(), cfg, 3);
            for _ in 0..20 {
                s.submit(body.clone(), 0.0);
            }
            run_to_idle(&mut s);
            let done = s.drain_completions();
            let mean_rt = done.iter().map(|c| c.response_time()).sum::<f64>() / done.len() as f64;
            let m = s.metrics();
            (mean_rt, m.writebacks, m.disk_busy[0])
        };
        let (rt0, wb0, busy0) = run(0.0);
        let (rt1, wb1, busy1) = run(1.0);
        assert_eq!(wb0, 0);
        assert_eq!(wb1, 20 * 4, "every touched page flushed");
        assert!(busy1 > 1.5 * busy0, "write-backs occupy the disk");
        // Reads queue behind write-backs, so commits slow somewhat — but
        // not by the full write-back service time per page.
        assert!(
            rt1 < 3.0 * rt0,
            "write-back must stay asynchronous: {rt0} vs {rt1}"
        );
    }

    /// Regression: when POW computes several victims and the first abort
    /// *grants* a later victim the lock it was blocked on, that victim is
    /// no longer a blocked holder and must be spared. (The pre-slab code
    /// aborted it anyway, leaving a restarted transaction with a stale
    /// backoff timer — a latent state corruption that surfaced as
    /// double commits under fig12's preemption-heavy runs.)
    #[test]
    fn pow_spares_victims_granted_by_an_earlier_abort() {
        let i = ItemId(1); // shared by both low holders; wanted by high
        let k = ItemId(2); // held by A, wanted by B
        let l = ItemId(3); // held by C, wanted by A
        let step = |lock, cpu| Step {
            lock: Some(lock),
            pages: vec![],
            cpu,
        };
        let c = TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![step((l, LockMode::Exclusive), 0.200)],
        };
        // A's early steps are tiny and B's first burst is long, so A is
        // certain to acquire k before B asks for it.
        let a = TxnBody {
            txn_type: 1,
            priority: Priority::Low,
            steps: vec![
                step((i, LockMode::Shared), 0.0001),
                step((k, LockMode::Exclusive), 0.0001),
                step((l, LockMode::Exclusive), 0.001),
            ],
        };
        let b = TxnBody {
            txn_type: 2,
            priority: Priority::Low,
            steps: vec![
                step((i, LockMode::Shared), 0.050),
                step((k, LockMode::Exclusive), 0.001),
            ],
        };
        let h = TxnBody {
            txn_type: 3,
            priority: Priority::High,
            steps: vec![step((i, LockMode::Exclusive), 0.001)],
        };
        let cfg = DbmsConfig::default().with_lock_policy(LockPriorityPolicy::PreemptOnWait);
        let hw = HardwareConfig::default().with_cpus(4);
        let mut s = DbmsSim::new(hw, cfg, 5);
        s.submit(c, 0.0);
        s.submit(a, 0.0);
        s.submit(b, 0.0);
        // Run until A (blocked on l) and B (blocked on k) both wait.
        while s.lock_manager().waiting_count() < 2 {
            assert_ne!(s.step(), StepOutcome::Idle, "A and B never both blocked");
        }
        // High-priority H blocks on i → POW victim sweep [A, B]; aborting
        // A releases k, granting B — B must be spared.
        s.submit(h, 0.0);
        run_to_idle(&mut s);
        let done = s.drain_completions();
        assert_eq!(done.len(), 4, "all four must commit");
        let m = s.metrics();
        assert_eq!(m.pow_aborts, 1, "only the still-blocked holder aborted");
        let aborted: Vec<u32> = done
            .iter()
            .filter(|c| c.restarts > 0)
            .map(|c| c.txn_type)
            .collect();
        assert_eq!(aborted, vec![1], "A restarted, B spared");
        s.lock_manager().check_invariants();
    }

    /// Allocation discipline: run a contended closed loop to steady
    /// state, snapshot every reusable buffer's capacity, run the same
    /// load again, and require zero growth — the hot loop must only
    /// allocate while warming up.
    #[test]
    fn steady_state_causes_no_buffer_growth() {
        let mut s = DbmsSim::new(HardwareConfig::default(), DbmsConfig::default(), 11);
        let mut rng = SimRng::derive(11, "wl");
        let submit = |s: &mut DbmsSim, rng: &mut SimRng| {
            let body = TxnBody {
                txn_type: 0,
                priority: if rng.chance(0.1) {
                    Priority::High
                } else {
                    Priority::Low
                },
                steps: vec![Step {
                    lock: Some((ItemId(rng.index_u64(5)), LockMode::Exclusive)),
                    pages: vec![PageId(rng.index_u64(200))],
                    cpu: 0.0005 + rng.uniform() * 0.001,
                }],
            };
            s.submit(body, s.now());
        };
        for _ in 0..8 {
            submit(&mut s, &mut rng);
        }
        const HALF: u64 = 1_000;
        let mut done = 0u64;
        let mut buf = Vec::new();
        let mut warm_caps = None;
        while done < 2 * HALF {
            if s.step() == StepOutcome::Idle {
                break;
            }
            s.drain_completions_into(&mut buf);
            for _ in buf.drain(..) {
                done += 1;
                submit(&mut s, &mut rng);
            }
            if done >= HALF && warm_caps.is_none() {
                warm_caps = Some(s.capacity_stats());
            }
        }
        assert_eq!(done, 2 * HALF, "workload must keep the sim busy");
        let warm = warm_caps.expect("first half completed");
        assert_eq!(
            s.capacity_stats(),
            warm,
            "second {HALF} transactions grew a hot-loop buffer"
        );
    }

    #[test]
    fn drain_into_swaps_buffers_without_losing_completions() {
        let mut s = sim(HardwareConfig::default(), DbmsConfig::default());
        s.submit(cpu_only_txn(0.010), 0.0);
        run_to_idle(&mut s);
        let mut buf = vec![Completion {
            txn_type: 99,
            priority: Priority::Low,
            external_arrival: 0.0,
            admitted: 0.0,
            completed: 0.0,
            restarts: 0,
            lock_wait: 0.0,
        }];
        s.drain_completions_into(&mut buf);
        assert_eq!(buf.len(), 1, "stale contents cleared, one completion");
        assert_eq!(buf[0].txn_type, 0);
        s.drain_completions_into(&mut buf);
        assert!(buf.is_empty(), "nothing new since the last drain");
    }

    /// The contract the whole observability layer rests on: attaching
    /// any trace sink changes *nothing* about the simulation — same
    /// completions to the bit, same metrics — and the ring recorder
    /// never grows past its pre-allocated capacity.
    #[test]
    fn tracing_is_observational() {
        use xsched_obs::{CountingSink, RingRecorder};

        fn run<T: TraceSink>(trace: T) -> (Vec<(u64, u64)>, String, T) {
            let mut s =
                DbmsSim::with_trace(HardwareConfig::default(), DbmsConfig::default(), 11, trace);
            let mut rng = SimRng::derive(11, "wl");
            for k in 0..60u64 {
                let body = TxnBody {
                    txn_type: 0,
                    priority: if rng.chance(0.1) {
                        Priority::High
                    } else {
                        Priority::Low
                    },
                    steps: vec![Step {
                        lock: Some((ItemId(k % 4), LockMode::Exclusive)),
                        pages: vec![PageId(rng.index_u64(100))],
                        cpu: 0.0005 + rng.uniform() * 0.001,
                    }],
                };
                s.submit(body, 0.0);
            }
            run_to_idle(&mut s);
            let m = format!("{:?}", s.metrics());
            let done = s
                .drain_completions()
                .iter()
                .map(|c| (c.completed.to_bits(), c.lock_wait.to_bits()))
                .collect();
            (done, m, s.into_trace())
        }

        let (base_done, base_metrics, _) = run(NoopTrace);
        assert_eq!(base_done.len(), 60);

        let (count_done, count_metrics, sink) = run(CountingSink::default());
        assert_eq!(base_done, count_done, "counting sink altered results");
        assert_eq!(base_metrics, count_metrics);
        assert!(sink.total > 0);
        let commits = sink.by_kind[TraceEvent::Commit { txn: 0, t: 0.0 }.kind()];
        assert_eq!(commits, 60, "one commit event per completion");
        let admissions = sink.by_kind[TraceEvent::Admission { txn: 0, t: 0.0 }.kind()];
        assert_eq!(admissions, 60);
        let waits = sink.by_kind[TraceEvent::LockWait { txn: 0, t: 0.0 }.kind()];
        assert!(waits > 0, "contended workload must block sometimes");

        let cap = RingRecorder::new(32).capacity();
        let (ring_done, ring_metrics, ring) = run(RingRecorder::new(32));
        assert_eq!(base_done, ring_done, "ring recorder altered results");
        assert_eq!(base_metrics, ring_metrics);
        assert_eq!(ring.capacity(), cap, "ring recorder must never grow");
        assert_eq!(ring.recorded(), sink.total, "sinks see the same stream");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mk_run = |seed: u64| {
            let mut s = DbmsSim::new(HardwareConfig::default(), DbmsConfig::default(), seed);
            let mut rng = SimRng::derive(seed, "wl");
            for k in 0..50u64 {
                let body = TxnBody {
                    txn_type: 0,
                    priority: Priority::Low,
                    steps: vec![Step {
                        lock: Some((ItemId(k % 5), LockMode::Exclusive)),
                        pages: vec![PageId(rng.index_u64(1000))],
                        cpu: 0.001 + rng.uniform() * 0.002,
                    }],
                };
                s.submit(body, 0.0);
            }
            run_to_idle(&mut s);
            s.drain_completions()
                .iter()
                .map(|c| (c.completed * 1e9) as u64)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk_run(7), mk_run(7));
        assert_ne!(mk_run(7), mk_run(8));
    }

    #[test]
    fn throughput_saturates_with_concurrency_on_one_disk() {
        // An IO-bound stream: with 8 concurrent txns a single disk is the
        // bottleneck, so doubling concurrency beyond that cannot double
        // throughput.
        let tput = |n: usize| {
            let hw = HardwareConfig {
                bufferpool_pages: 1, // force misses
                ..Default::default()
            };
            let mut s = DbmsSim::new(hw, DbmsConfig::default(), 1);
            let mut next_page = 0u64;
            let submit = |s: &mut DbmsSim, next_page: &mut u64| {
                let pages: Vec<PageId> = (0..4)
                    .map(|_| {
                        *next_page += 1;
                        PageId(*next_page * 7919)
                    })
                    .collect();
                s.submit(
                    TxnBody {
                        txn_type: 0,
                        priority: Priority::Low,
                        steps: vec![Step {
                            lock: None,
                            pages,
                            cpu: 0.010,
                        }],
                    },
                    s.now(),
                );
            };
            for _ in 0..n {
                submit(&mut s, &mut next_page);
            }
            let mut done = 0u64;
            while done < 400 {
                if s.step() == StepOutcome::Idle {
                    break;
                }
                for _ in s.drain_completions() {
                    done += 1;
                    submit(&mut s, &mut next_page);
                }
            }
            done as f64 / s.now()
        };
        let x1 = tput(1);
        let x4 = tput(4);
        let x16 = tput(16);
        assert!(x4 > 1.3 * x1, "some overlap gain: {x1} -> {x4}");
        assert!(
            x16 < 1.3 * x4,
            "saturated disk cannot keep scaling: {x4} -> {x16}"
        );
    }

    /// Contended burst under an optional fault layer. Runs to completion
    /// by transaction count (not to idle: the abort-storm tick
    /// self-reschedules forever) and returns completion bits + the event
    /// counts the injectors emitted.
    fn chaos_run(
        spec: Option<crate::fault::FaultSpec>,
        seed: u64,
    ) -> (Vec<(u64, u64)>, xsched_obs::CountingSink) {
        let mut s = DbmsSim::with_trace(
            HardwareConfig::default(),
            DbmsConfig::default(),
            seed,
            xsched_obs::CountingSink::default(),
        );
        if let Some(sp) = spec {
            s = s.with_chaos(sp, 0.0, seed);
        }
        let mut rng = SimRng::derive(seed, "wl");
        for k in 0..60u64 {
            let body = TxnBody {
                txn_type: 0,
                priority: Priority::Low,
                steps: vec![Step {
                    lock: Some((ItemId(k % 4), LockMode::Exclusive)),
                    pages: vec![PageId(rng.index_u64(100))],
                    cpu: 0.0005 + rng.uniform() * 0.001,
                }],
            };
            s.submit(body, 0.0);
        }
        let mut guard = 0u64;
        while s.in_flight() > 0 && s.step() != StepOutcome::Idle {
            guard += 1;
            assert!(guard < 10_000_000, "chaos run failed to finish");
        }
        let done = s
            .drain_completions()
            .iter()
            .map(|c| (c.completed.to_bits(), c.lock_wait.to_bits()))
            .collect();
        (done, s.into_trace())
    }

    /// The rate-0 identity the whole chaos axis rests on: attaching a
    /// fault layer with every injector disabled leaves completions and
    /// the trace stream byte-identical to a sim built without chaos.
    #[test]
    fn disabled_chaos_is_byte_identical() {
        let (base, base_sink) = chaos_run(None, 11);
        assert_eq!(base.len(), 60);
        let (noop, noop_sink) = chaos_run(Some(FaultSpec::default()), 11);
        assert_eq!(base, noop, "no-op fault layer altered results");
        assert_eq!(base_sink, noop_sink, "no-op fault layer altered trace");
    }

    #[test]
    fn chaos_is_bit_reproducible_in_seed_and_spec() {
        use crate::fault::{SpikeSpec, StallSpec};
        let spec = FaultSpec {
            stall: Some(StallSpec {
                p_per_lock: 0.5,
                mean_secs: 0.010,
            }),
            disk_spike: Some(SpikeSpec {
                mean_on: 0.050,
                mean_off: 0.050,
                factor: 8.0,
            }),
            abort_rate: 50.0,
        };
        let (a, sink_a) = chaos_run(Some(spec), 11);
        let (b, sink_b) = chaos_run(Some(spec), 11);
        assert_eq!(a, b, "same (seed, spec) must be bit-identical");
        assert_eq!(sink_a, sink_b);
        let (c, _) = chaos_run(Some(spec), 12);
        assert_ne!(a, c, "different seed must perturb the run");
    }

    #[test]
    fn stall_injector_freezes_lock_holders() {
        use crate::fault::StallSpec;
        let spec = FaultSpec {
            stall: Some(StallSpec {
                p_per_lock: 1.0,
                mean_secs: 0.050,
            }),
            ..Default::default()
        };
        let (base, _) = chaos_run(None, 11);
        let (stalled, sink) = chaos_run(Some(spec), 11);
        let kind = TraceEvent::ChaosStall {
            txn: 0,
            t: 0.0,
            secs: 0.0,
        }
        .kind();
        assert!(sink.by_kind[kind] >= 60, "every acquisition must stall");
        let makespan = |v: &Vec<(u64, u64)>| {
            v.iter()
                .map(|(c, _)| f64::from_bits(*c))
                .fold(0.0, f64::max)
        };
        assert!(
            makespan(&stalled) > 2.0 * makespan(&base),
            "stalls must stretch the contended burst: {} vs {}",
            makespan(&base),
            makespan(&stalled)
        );
    }

    #[test]
    fn abort_storm_kills_blocked_transactions() {
        let spec = FaultSpec {
            abort_rate: 500.0,
            ..Default::default()
        };
        let (done, sink) = chaos_run(Some(spec), 11);
        assert_eq!(done.len(), 60, "storm victims must restart and commit");
        let kind = TraceEvent::ChaosAbort { txn: 0, t: 0.0 }.kind();
        assert!(
            sink.by_kind[kind] > 0,
            "a 500/s storm over a contended burst must kill someone"
        );
    }

    #[test]
    fn disk_spike_inflates_read_latency() {
        use crate::fault::SpikeSpec;
        let run = |spec: Option<FaultSpec>| {
            let hw = HardwareConfig {
                bufferpool_pages: 1, // force every read to disk
                ..Default::default()
            };
            let mut s = DbmsSim::with_trace(
                hw,
                DbmsConfig::default(),
                9,
                xsched_obs::CountingSink::default(),
            );
            if let Some(sp) = spec {
                s = s.with_chaos(sp, 0.0, 9);
            }
            for k in 0..40u64 {
                s.submit(
                    TxnBody {
                        txn_type: 0,
                        priority: Priority::Low,
                        steps: vec![Step {
                            lock: None,
                            pages: vec![PageId(k * 7919 + 1)],
                            cpu: 0.001,
                        }],
                    },
                    0.0,
                );
            }
            run_to_idle(&mut s);
            let done = s.drain_completions();
            assert_eq!(done.len(), 40);
            let makespan = done.iter().map(|c| c.completed).fold(0.0, f64::max);
            (makespan, s.into_trace())
        };
        let (base, _) = run(None);
        let spec = FaultSpec {
            disk_spike: Some(SpikeSpec {
                mean_on: 1_000.0, // pinned ON for the whole run
                mean_off: 0.001,
                factor: 10.0,
            }),
            ..Default::default()
        };
        let (spiked, sink) = run(Some(spec));
        let kind = TraceEvent::ChaosDiskSpike {
            t: 0.0,
            active: false,
        }
        .kind();
        assert!(sink.by_kind[kind] >= 1, "the spike must have toggled on");
        assert!(
            spiked > 2.0 * base,
            "reads under a 10x spike must crawl: {base} vs {spiked}"
        );
    }
}
