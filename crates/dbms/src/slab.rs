//! Generation-tagged slab: dense, reusable storage for per-transaction
//! state.
//!
//! Admitted transactions get a [`SlotRef`] — a dense slot index plus a
//! generation tag. Slots are recycled when transactions commit, so the
//! backing vector stays as small as the peak in-flight population, and a
//! stale reference (an event armed for a transaction that has since
//! committed and whose slot was reused) is detected by the generation
//! mismatch instead of by a hash-map miss. Lookups are a bounds check and
//! a tag compare — no hashing in the event-dispatch hot path.
//!
//! Slot allocation order (LIFO free list) is a pure function of the
//! insert/remove sequence, so slab layout — like everything else in the
//! simulator — is deterministic for a given seed.

/// A dense handle to a slab entry: slot index plus generation tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotRef {
    /// Index into the slab's backing vector.
    pub slot: u32,
    /// Generation the slot had when this reference was issued.
    pub gen: u32,
}

#[derive(Debug)]
struct Entry<T> {
    gen: u32,
    val: Option<T>,
}

/// A generation-tagged slab.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `cap` live entries before reallocating.
    pub fn with_capacity(cap: usize) -> Slab<T> {
        Slab {
            entries: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots allocated (live + free).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Store `val`, reusing a free slot if one exists.
    pub fn insert(&mut self, val: T) -> SlotRef {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let e = &mut self.entries[slot as usize];
            debug_assert!(e.val.is_none(), "free list pointed at a live slot");
            e.val = Some(val);
            SlotRef { slot, gen: e.gen }
        } else {
            let slot = self.entries.len() as u32;
            self.entries.push(Entry {
                gen: 0,
                val: Some(val),
            });
            SlotRef { slot, gen: 0 }
        }
    }

    /// The entry behind `r`, unless it was removed (generation mismatch).
    #[inline]
    pub fn get(&self, r: SlotRef) -> Option<&T> {
        match self.entries.get(r.slot as usize) {
            Some(e) if e.gen == r.gen => e.val.as_ref(),
            _ => None,
        }
    }

    /// Mutable access behind `r`, unless it was removed.
    #[inline]
    pub fn get_mut(&mut self, r: SlotRef) -> Option<&mut T> {
        match self.entries.get_mut(r.slot as usize) {
            Some(e) if e.gen == r.gen => e.val.as_mut(),
            _ => None,
        }
    }

    /// Remove and return the entry behind `r`; the slot's generation is
    /// bumped so outstanding references to it go stale.
    pub fn remove(&mut self, r: SlotRef) -> Option<T> {
        let e = self.entries.get_mut(r.slot as usize)?;
        if e.gen != r.gen {
            return None;
        }
        let val = e.val.take()?;
        e.gen = e.gen.wrapping_add(1);
        self.free.push(r.slot);
        self.len -= 1;
        Some(val)
    }

    /// Iterate live entries in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (SlotRef, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.val.as_ref().map(|v| {
                (
                    SlotRef {
                        slot: i as u32,
                        gen: e.gen,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None, "removed entry unreachable");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_reference_detected_after_reuse() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        assert_eq!(b.slot, a.slot, "slot recycled");
        assert_ne!(b.gen, a.gen, "generation bumped");
        assert_eq!(s.get(a), None, "stale ref misses");
        assert_eq!(s.get(b), Some(&2));
        assert_eq!(s.remove(a), None, "stale remove is a no-op");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn capacity_tracks_peak_not_total() {
        let mut s = Slab::with_capacity(4);
        for round in 0..100 {
            let refs: Vec<SlotRef> = (0..4).map(|i| s.insert(round * 10 + i)).collect();
            for r in refs {
                s.remove(r);
            }
        }
        assert!(s.capacity() <= 4, "slots recycled, not appended");
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_slot_ordered() {
        let mut s = Slab::new();
        let a = s.insert(10);
        let _b = s.insert(20);
        let _c = s.insert(30);
        s.remove(a);
        let d = s.insert(40); // reuses slot 0
        assert_eq!(d.slot, 0);
        let vals: Vec<i32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![40, 20, 30]);
    }
}
