//! Per-transaction completion records and aggregate DBMS metrics.

use crate::txn::Priority;
use serde::{Deserialize, Serialize};

/// Emitted once per committed transaction; the external scheduler's
/// observation phase is built on these.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Workload-defined transaction type.
    pub txn_type: u32,
    /// Scheduling class.
    pub priority: Priority,
    /// Time the transaction arrived at the *external* queue, seconds.
    pub external_arrival: f64,
    /// Time it was admitted into the DBMS, seconds.
    pub admitted: f64,
    /// Commit time, seconds.
    pub completed: f64,
    /// Number of abort/restart cycles it went through.
    pub restarts: u32,
    /// Total time spent blocked in lock queues, seconds.
    pub lock_wait: f64,
}

impl Completion {
    /// End-to-end response time including external queueing (the paper's
    /// response-time metric).
    pub fn response_time(&self) -> f64 {
        self.completed - self.external_arrival
    }

    /// Time spent inside the DBMS only.
    pub fn service_time(&self) -> f64 {
        self.completed - self.admitted
    }

    /// Time spent waiting in the external queue.
    pub fn external_wait(&self) -> f64 {
        self.admitted - self.external_arrival
    }
}

/// Aggregate counters kept by the simulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DbmsMetrics {
    /// Committed transactions.
    pub commits: u64,
    /// Abort events (deadlock victims + POW preemptions).
    pub aborts: u64,
    /// Aborts caused by deadlock resolution.
    pub deadlock_aborts: u64,
    /// Aborts caused by POW preemption.
    pub pow_aborts: u64,
    /// Aborts caused by lock-wait timeouts.
    pub timeout_aborts: u64,
    /// Forces that hardened more than one commit record (group commit).
    pub group_commits: u64,
    /// Asynchronous dirty-page write-backs issued.
    pub writebacks: u64,
    /// Buffer pool hits / misses.
    pub bp_hits: u64,
    /// Buffer pool misses (each cost a disk read).
    pub bp_misses: u64,
    /// CPU busy time (CPU-seconds).
    pub cpu_busy: f64,
    /// Per-data-disk busy time, seconds.
    pub disk_busy: Vec<f64>,
    /// Log disk busy time, seconds.
    pub log_busy: f64,
    /// Wall-clock span the metrics cover, seconds.
    pub elapsed: f64,
}

impl DbmsMetrics {
    /// CPU utilization in `[0, 1]` given the number of CPUs.
    pub fn cpu_utilization(&self, cpus: u32) -> f64 {
        if self.elapsed == 0.0 {
            0.0
        } else {
            self.cpu_busy / (cpus as f64 * self.elapsed)
        }
    }

    /// Mean data-disk utilization in `[0, 1]`.
    pub fn disk_utilization(&self) -> f64 {
        if self.elapsed == 0.0 || self.disk_busy.is_empty() {
            0.0
        } else {
            self.disk_busy.iter().sum::<f64>() / (self.disk_busy.len() as f64 * self.elapsed)
        }
    }

    /// Log-disk utilization in `[0, 1]`.
    pub fn log_utilization(&self) -> f64 {
        if self.elapsed == 0.0 {
            0.0
        } else {
            self.log_busy / self.elapsed
        }
    }

    /// Buffer pool hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.bp_hits + self.bp_misses;
        if total == 0 {
            0.0
        } else {
            self.bp_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_decomposition() {
        let c = Completion {
            txn_type: 0,
            priority: Priority::Low,
            external_arrival: 1.0,
            admitted: 1.5,
            completed: 3.0,
            restarts: 0,
            lock_wait: 0.2,
        };
        assert!((c.response_time() - 2.0).abs() < 1e-12);
        assert!((c.external_wait() - 0.5).abs() < 1e-12);
        assert!((c.service_time() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn utilizations() {
        let m = DbmsMetrics {
            cpu_busy: 5.0,
            disk_busy: vec![2.0, 4.0],
            log_busy: 1.0,
            elapsed: 10.0,
            ..Default::default()
        };
        assert!((m.cpu_utilization(1) - 0.5).abs() < 1e-12);
        assert!((m.disk_utilization() - 0.3).abs() < 1e-12);
        assert!((m.log_utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = DbmsMetrics::default();
        assert_eq!(m.cpu_utilization(2), 0.0);
        assert_eq!(m.disk_utilization(), 0.0);
        assert_eq!(m.hit_ratio(), 0.0);
    }
}
