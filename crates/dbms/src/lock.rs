//! Strict two-phase-locking lock manager.
//!
//! Shared/exclusive item locks with FIFO wait queues, in-place upgrades,
//! waits-for deadlock detection with youngest-victim selection, and the two
//! internal prioritization policies of §5.2:
//!
//! * [`LockPriorityPolicy::PriorityQueue`] — high-priority requests queue
//!   ahead of (and may bypass) waiting low-priority requests;
//! * [`LockPriorityPolicy::PreemptOnWait`] (POW, McWherter et al. 2005) —
//!   additionally, a blocked high-priority request preempts low-priority
//!   lock *holders* that are themselves waiting at another lock queue.
//!
//! The manager provides mechanisms only (request / release / abort /
//! victim selection); `crate::sim` sequences them, so the same machinery
//! serves plain 2PL and both internal prioritization modes.

use crate::config::LockPriorityPolicy;
use crate::txn::{ItemId, LockMode, Priority, TxnId};
use std::collections::VecDeque;
use xsched_sim::FxHashMap;

/// Result of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The lock was granted (or was already held in a sufficient mode).
    Granted,
    /// The request was enqueued; the transaction must wait.
    Blocked,
}

/// A waiter that just received its lock during a release/abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The transaction whose request was granted.
    pub txn: TxnId,
    /// The item it was waiting for.
    pub item: ItemId,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    priority: Priority,
    /// True if the waiter already holds the lock in `Shared` mode and is
    /// waiting to upgrade to `Exclusive`.
    upgrade: bool,
}

#[derive(Debug, Default)]
struct LockState {
    holders: Vec<(TxnId, LockMode)>,
    queue: VecDeque<Waiter>,
}

impl LockState {
    fn holds(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m)
    }

    fn compatible_with_holders(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(t, m)| *t == txn || mode.compatible_with(*m))
    }
}

/// The lock manager.
///
/// All three tables use the Fx integer hash (ids are dense and never
/// attacker-controlled), and the per-item / per-transaction vectors are
/// recycled through free pools so steady-state request/release traffic
/// allocates nothing.
#[derive(Debug)]
pub struct LockManager {
    policy: LockPriorityPolicy,
    table: FxHashMap<ItemId, LockState>,
    /// Items currently held (in any mode) per transaction.
    held: FxHashMap<TxnId, Vec<ItemId>>,
    /// The single item each blocked transaction waits for.
    waiting: FxHashMap<TxnId, ItemId>,
    /// Recycled `LockState`s (their holder/queue buffers keep their
    /// capacity across items).
    state_pool: Vec<LockState>,
    /// Recycled per-transaction held-item vectors.
    items_pool: Vec<Vec<ItemId>>,
    grants: u64,
    blocks: u64,
}

impl LockManager {
    /// An empty lock table under the given priority policy.
    pub fn new(policy: LockPriorityPolicy) -> LockManager {
        LockManager {
            policy,
            table: FxHashMap::default(),
            held: FxHashMap::default(),
            waiting: FxHashMap::default(),
            state_pool: Vec::new(),
            items_pool: Vec::new(),
            grants: 0,
            blocks: 0,
        }
    }

    /// The active priority policy.
    pub fn policy(&self) -> LockPriorityPolicy {
        self.policy
    }

    /// Request `item` in `mode` for `txn`. On [`RequestOutcome::Blocked`]
    /// the transaction is enqueued and must not proceed until a
    /// [`Grant`] names it.
    pub fn request(
        &mut self,
        txn: TxnId,
        priority: Priority,
        item: ItemId,
        mode: LockMode,
    ) -> RequestOutcome {
        debug_assert!(
            !self.waiting.contains_key(&txn),
            "txn {txn:?} requested a lock while already waiting"
        );
        let state = self
            .table
            .entry(item)
            .or_insert_with(|| self.state_pool.pop().unwrap_or_default());

        if let Some(held_mode) = state.holds(txn) {
            match (held_mode, mode) {
                // Already sufficient.
                (LockMode::Exclusive, _) | (LockMode::Shared, LockMode::Shared) => {
                    self.grants += 1;
                    return RequestOutcome::Granted;
                }
                // Upgrade S → X.
                (LockMode::Shared, LockMode::Exclusive) => {
                    if state.holders.len() == 1 {
                        state.holders[0].1 = LockMode::Exclusive;
                        self.grants += 1;
                        return RequestOutcome::Granted;
                    }
                    // Upgrades wait at the very front: they cannot be
                    // granted until the co-holders release, and nothing
                    // behind them may be granted first.
                    state.queue.push_front(Waiter {
                        txn,
                        mode,
                        priority,
                        upgrade: true,
                    });
                    self.waiting.insert(txn, item);
                    self.blocks += 1;
                    return RequestOutcome::Blocked;
                }
            }
        }

        let bypass_ok = match self.policy {
            LockPriorityPolicy::None => state.queue.is_empty(),
            // A high-priority request may overtake low-priority waiters.
            _ => {
                state.queue.is_empty()
                    || (priority == Priority::High
                        && state.queue.iter().all(|w| w.priority == Priority::Low))
            }
        };
        if bypass_ok && state.compatible_with_holders(txn, mode) {
            state.holders.push((txn, mode));
            self.held
                .entry(txn)
                .or_insert_with(|| self.items_pool.pop().unwrap_or_default())
                .push(item);
            self.grants += 1;
            return RequestOutcome::Granted;
        }

        // Enqueue according to policy.
        let waiter = Waiter {
            txn,
            mode,
            priority,
            upgrade: false,
        };
        match self.policy {
            LockPriorityPolicy::None => state.queue.push_back(waiter),
            LockPriorityPolicy::PriorityQueue | LockPriorityPolicy::PreemptOnWait => {
                if priority == Priority::High {
                    // Behind other high-priority waiters and any upgrade,
                    // ahead of low-priority waiters.
                    let pos = state
                        .queue
                        .iter()
                        .position(|w| w.priority == Priority::Low && !w.upgrade)
                        .unwrap_or(state.queue.len());
                    state.queue.insert(pos, waiter);
                } else {
                    state.queue.push_back(waiter);
                }
            }
        }
        self.waiting.insert(txn, item);
        self.blocks += 1;
        RequestOutcome::Blocked
    }

    /// Release every lock held by `txn` (commit path) and promote waiters.
    /// Convenience wrapper over [`LockManager::release_all_into`].
    pub fn release_all(&mut self, txn: TxnId) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.release_all_into(txn, &mut grants);
        grants
    }

    /// Release every lock held by `txn` (commit path), appending promoted
    /// waiters to `grants` — the allocation-free form the simulator's hot
    /// loop uses with a per-sim scratch buffer.
    pub fn release_all_into(&mut self, txn: TxnId, grants: &mut Vec<Grant>) {
        debug_assert!(
            !self.waiting.contains_key(&txn),
            "committing txn {txn:?} cannot be waiting"
        );
        let before = grants.len();
        let mut items = self.held.remove(&txn).unwrap_or_default();
        for item in items.drain(..) {
            if let Some(state) = self.table.get_mut(&item) {
                state.holders.retain(|(t, _)| *t != txn);
                Self::promote(
                    &mut self.waiting,
                    &mut self.held,
                    &mut self.items_pool,
                    state,
                    item,
                    grants,
                );
                if state.holders.is_empty() && state.queue.is_empty() {
                    self.recycle(item);
                }
            }
        }
        self.items_pool.push(items);
        self.grants += (grants.len() - before) as u64;
    }

    /// Abort path: remove `txn` from any wait queue and release all its
    /// locks. Returns the waiters that became grantable. Convenience
    /// wrapper over [`LockManager::abort_into`].
    pub fn abort(&mut self, txn: TxnId) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.abort_into(txn, &mut grants);
        grants
    }

    /// Abort path, appending newly grantable waiters to `grants` (the
    /// scratch-buffer form).
    pub fn abort_into(&mut self, txn: TxnId, grants: &mut Vec<Grant>) {
        let before = grants.len();
        if let Some(item) = self.waiting.remove(&txn) {
            if let Some(state) = self.table.get_mut(&item) {
                state.queue.retain(|w| w.txn != txn);
                // Removing a queued X may unblock compatible waiters behind it.
                Self::promote(
                    &mut self.waiting,
                    &mut self.held,
                    &mut self.items_pool,
                    state,
                    item,
                    grants,
                );
            }
        }
        let mut items = self.held.remove(&txn).unwrap_or_default();
        for item in items.drain(..) {
            if let Some(state) = self.table.get_mut(&item) {
                state.holders.retain(|(t, _)| *t != txn);
                Self::promote(
                    &mut self.waiting,
                    &mut self.held,
                    &mut self.items_pool,
                    state,
                    item,
                    grants,
                );
                if state.holders.is_empty() && state.queue.is_empty() {
                    self.recycle(item);
                }
            }
        }
        self.items_pool.push(items);
        self.grants += (grants.len() - before) as u64;
    }

    /// Drop the (empty) lock state for `item`, keeping its buffers for
    /// the next contended item.
    fn recycle(&mut self, item: ItemId) {
        if let Some(state) = self.table.remove(&item) {
            debug_assert!(state.holders.is_empty() && state.queue.is_empty());
            self.state_pool.push(state);
        }
    }

    /// Grant queue heads while possible (static method to appease the
    /// borrow checker when called with `table` already borrowed).
    fn promote(
        waiting: &mut FxHashMap<TxnId, ItemId>,
        held: &mut FxHashMap<TxnId, Vec<ItemId>>,
        items_pool: &mut Vec<Vec<ItemId>>,
        state: &mut LockState,
        item: ItemId,
        grants: &mut Vec<Grant>,
    ) {
        while let Some(head) = state.queue.front().copied() {
            let grantable = if head.upgrade {
                // Upgrade requires being the sole holder.
                state.holders.len() == 1 && state.holders[0].0 == head.txn
            } else {
                state.compatible_with_holders(head.txn, head.mode)
            };
            if !grantable {
                break;
            }
            state.queue.pop_front();
            if head.upgrade {
                state.holders[0].1 = LockMode::Exclusive;
            } else {
                state.holders.push((head.txn, head.mode));
                held.entry(head.txn)
                    .or_insert_with(|| items_pool.pop().unwrap_or_default())
                    .push(item);
            }
            waiting.remove(&head.txn);
            grants.push(Grant {
                txn: head.txn,
                item,
            });
        }
    }

    /// The item `txn` is blocked on, if any.
    pub fn waiting_for(&self, txn: TxnId) -> Option<ItemId> {
        self.waiting.get(&txn).copied()
    }

    /// Items currently held by `txn`.
    pub fn held_items(&self, txn: TxnId) -> &[ItemId] {
        self.held.get(&txn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Transactions blocking `txn`: the holders of the item it waits for,
    /// plus waiters queued ahead of it (they will hold the lock before
    /// `txn` can).
    pub fn blockers_of(&self, txn: TxnId) -> Vec<TxnId> {
        let Some(item) = self.waiting.get(&txn) else {
            return Vec::new();
        };
        let Some(state) = self.table.get(item) else {
            return Vec::new();
        };
        let mut out: Vec<TxnId> = state
            .holders
            .iter()
            .map(|(t, _)| *t)
            .filter(|t| *t != txn)
            .collect();
        for w in &state.queue {
            if w.txn == txn {
                break;
            }
            out.push(w.txn);
        }
        out
    }

    /// Detect a deadlock cycle reachable from `txn` (which must be
    /// blocked) and pick the youngest member (largest [`TxnId`]) as victim.
    pub fn find_deadlock_victim(&self, txn: TxnId) -> Option<TxnId> {
        // Iterative DFS over the waits-for graph; a cycle exists iff `txn`
        // is reachable from one of its blockers.
        let mut stack: Vec<(TxnId, Vec<TxnId>)> = vec![(txn, vec![txn])];
        let mut visited: Vec<TxnId> = Vec::new();
        while let Some((node, path)) = stack.pop() {
            for b in self.blockers_of(node) {
                if b == txn {
                    // `path` plus the closing edge is the cycle.
                    return path.iter().max().copied();
                }
                if !visited.contains(&b) {
                    visited.push(b);
                    let mut p = path.clone();
                    p.push(b);
                    stack.push((b, p));
                }
            }
        }
        None
    }

    /// POW: low-priority holders of `item` that are themselves blocked at
    /// some other lock queue — the victims a blocked high-priority request
    /// is entitled to preempt. `priority_of` resolves a holder's class
    /// (the simulator answers from its transaction slab).
    pub fn pow_victims(
        &self,
        item: ItemId,
        priority_of: impl Fn(TxnId) -> Option<Priority>,
    ) -> Vec<TxnId> {
        let mut out = Vec::new();
        self.pow_victims_into(item, &mut out, priority_of);
        out
    }

    /// [`LockManager::pow_victims`], appending into a caller-owned scratch
    /// buffer (holders appear in grant order, which is deterministic).
    pub fn pow_victims_into(
        &self,
        item: ItemId,
        out: &mut Vec<TxnId>,
        priority_of: impl Fn(TxnId) -> Option<Priority>,
    ) {
        let Some(state) = self.table.get(&item) else {
            return;
        };
        out.extend(
            state
                .holders
                .iter()
                .map(|(t, _)| *t)
                .filter(|t| priority_of(*t) == Some(Priority::Low) && self.waiting.contains_key(t)),
        );
    }

    /// Total granted requests.
    pub fn grant_count(&self) -> u64 {
        self.grants
    }

    /// Total requests that had to wait.
    pub fn block_count(&self) -> u64 {
        self.blocks
    }

    /// Number of transactions currently blocked.
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    /// Consistency check used by tests and debug assertions: at most one
    /// exclusive holder per item, and no shared/exclusive mixing.
    pub fn check_invariants(&self) {
        for (item, state) in &self.table {
            let x_holders = state
                .holders
                .iter()
                .filter(|(_, m)| *m == LockMode::Exclusive)
                .count();
            if x_holders > 0 {
                assert_eq!(
                    state.holders.len(),
                    1,
                    "item {item:?}: exclusive lock shared"
                );
            }
            for w in &state.queue {
                assert!(
                    self.waiting.get(&w.txn) == Some(item),
                    "queued txn {:?} missing from waiting map",
                    w.txn
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }
    fn i(n: u64) -> ItemId {
        ItemId(n)
    }
    const LO: Priority = Priority::Low;
    const HI: Priority = Priority::High;

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        assert_eq!(
            lm.request(t(1), LO, i(1), LockMode::Shared),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(2), LO, i(1), LockMode::Shared),
            RequestOutcome::Granted
        );
        lm.check_invariants();
    }

    #[test]
    fn exclusive_blocks_everyone() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        assert_eq!(
            lm.request(t(1), LO, i(1), LockMode::Exclusive),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(t(2), LO, i(1), LockMode::Shared),
            RequestOutcome::Blocked
        );
        assert_eq!(
            lm.request(t(3), LO, i(1), LockMode::Exclusive),
            RequestOutcome::Blocked
        );
        assert_eq!(lm.waiting_count(), 2);
        lm.check_invariants();
        let grants = lm.release_all(t(1));
        // FIFO: t2 (shared) is granted; t3 (exclusive) still waits.
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(2),
                item: i(1)
            }]
        );
        let grants = lm.release_all(t(2));
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(3),
                item: i(1)
            }]
        );
        lm.check_invariants();
    }

    #[test]
    fn batched_shared_grants_on_release() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        let _ = lm.request(t(1), LO, i(1), LockMode::Exclusive);
        let _ = lm.request(t(2), LO, i(1), LockMode::Shared);
        let _ = lm.request(t(3), LO, i(1), LockMode::Shared);
        let grants = lm.release_all(t(1));
        assert_eq!(grants.len(), 2, "both shared waiters granted together");
    }

    #[test]
    fn fifo_prevents_shared_overtaking_exclusive() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        let _ = lm.request(t(1), LO, i(1), LockMode::Shared);
        let _ = lm.request(t(2), LO, i(1), LockMode::Exclusive); // waits
                                                                 // A later shared request must not leapfrog the queued X.
        assert_eq!(
            lm.request(t(3), LO, i(1), LockMode::Shared),
            RequestOutcome::Blocked
        );
        lm.check_invariants();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        let _ = lm.request(t(1), LO, i(1), LockMode::Shared);
        // Re-request in same mode: no-op grant.
        assert_eq!(
            lm.request(t(1), LO, i(1), LockMode::Shared),
            RequestOutcome::Granted
        );
        // Sole holder upgrades in place.
        assert_eq!(
            lm.request(t(1), LO, i(1), LockMode::Exclusive),
            RequestOutcome::Granted
        );
        // X holder re-requesting S is a no-op.
        assert_eq!(
            lm.request(t(1), LO, i(1), LockMode::Shared),
            RequestOutcome::Granted
        );
        lm.check_invariants();
    }

    #[test]
    fn contended_upgrade_waits_then_wins() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        let _ = lm.request(t(1), LO, i(1), LockMode::Shared);
        let _ = lm.request(t(2), LO, i(1), LockMode::Shared);
        assert_eq!(
            lm.request(t(1), LO, i(1), LockMode::Exclusive),
            RequestOutcome::Blocked
        );
        let grants = lm.release_all(t(2));
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(1),
                item: i(1)
            }]
        );
        // t1 now holds X.
        assert_eq!(
            lm.request(t(3), LO, i(1), LockMode::Shared),
            RequestOutcome::Blocked
        );
        lm.check_invariants();
    }

    #[test]
    fn deadlock_detected_and_youngest_chosen() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        let _ = lm.request(t(1), LO, i(1), LockMode::Exclusive);
        let _ = lm.request(t(2), LO, i(2), LockMode::Exclusive);
        assert_eq!(
            lm.request(t(1), LO, i(2), LockMode::Exclusive),
            RequestOutcome::Blocked
        );
        assert_eq!(
            lm.request(t(2), LO, i(1), LockMode::Exclusive),
            RequestOutcome::Blocked
        );
        let victim = lm.find_deadlock_victim(t(2)).expect("cycle exists");
        assert_eq!(victim, t(2), "youngest (largest id) in cycle");
        let grants = lm.abort(victim);
        // Aborting t2 releases i2 → t1 gets it.
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(1),
                item: i(2)
            }]
        );
        assert!(lm.find_deadlock_victim(t(1)).is_none());
        lm.check_invariants();
    }

    #[test]
    fn three_party_deadlock() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        for n in 1..=3 {
            let _ = lm.request(t(n), LO, i(n), LockMode::Exclusive);
        }
        assert_eq!(
            lm.request(t(1), LO, i(2), LockMode::Exclusive),
            RequestOutcome::Blocked
        );
        assert_eq!(
            lm.request(t(2), LO, i(3), LockMode::Exclusive),
            RequestOutcome::Blocked
        );
        assert_eq!(
            lm.request(t(3), LO, i(1), LockMode::Exclusive),
            RequestOutcome::Blocked
        );
        let victim = lm.find_deadlock_victim(t(3)).expect("3-cycle");
        assert_eq!(victim, t(3));
    }

    #[test]
    fn no_false_deadlocks() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        let _ = lm.request(t(1), LO, i(1), LockMode::Exclusive);
        let _ = lm.request(t(2), LO, i(1), LockMode::Exclusive);
        assert!(lm.find_deadlock_victim(t(2)).is_none());
    }

    #[test]
    fn priority_queue_inserts_high_ahead_of_low() {
        let mut lm = LockManager::new(LockPriorityPolicy::PriorityQueue);
        let _ = lm.request(t(1), LO, i(1), LockMode::Exclusive);
        let _ = lm.request(t(2), LO, i(1), LockMode::Exclusive);
        let _ = lm.request(t(3), HI, i(1), LockMode::Exclusive);
        let grants = lm.release_all(t(1));
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(3),
                item: i(1)
            }],
            "high first"
        );
    }

    #[test]
    fn high_priority_bypasses_low_waiters() {
        let mut lm = LockManager::new(LockPriorityPolicy::PriorityQueue);
        let _ = lm.request(t(1), LO, i(1), LockMode::Shared);
        let _ = lm.request(t(2), LO, i(1), LockMode::Exclusive); // waits
                                                                 // A high-priority S request may bypass the queued low X.
        assert_eq!(
            lm.request(t(3), HI, i(1), LockMode::Shared),
            RequestOutcome::Granted
        );
        // Under the None policy this would have blocked (see the
        // fifo_prevents_shared_overtaking_exclusive test).
        lm.check_invariants();
    }

    #[test]
    fn pow_victims_are_blocked_low_holders() {
        let mut lm = LockManager::new(LockPriorityPolicy::PreemptOnWait);
        let mut prios = std::collections::HashMap::new();
        prios.insert(t(1), LO);
        prios.insert(t(2), LO);
        prios.insert(t(3), HI);
        let prio_of = |t: TxnId| prios.get(&t).copied();
        // t1 holds i1 and waits for i2 (held by t2).
        let _ = lm.request(t(1), LO, i(1), LockMode::Exclusive);
        let _ = lm.request(t(2), LO, i(2), LockMode::Exclusive);
        assert_eq!(
            lm.request(t(1), LO, i(2), LockMode::Shared),
            RequestOutcome::Blocked
        );
        // High-priority t3 blocks on i1 whose holder t1 is waiting → victim.
        assert_eq!(
            lm.request(t(3), HI, i(1), LockMode::Exclusive),
            RequestOutcome::Blocked
        );
        assert_eq!(lm.pow_victims(i(1), prio_of), vec![t(1)]);
        // t2 holds i2 but is running (not waiting) → not a victim.
        assert!(lm.pow_victims(i(2), prio_of).is_empty());
        let grants = lm.abort(t(1));
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(3),
                item: i(1)
            }]
        );
        lm.check_invariants();
    }

    #[test]
    fn abort_of_waiter_unblocks_queue_behind_it() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        let _ = lm.request(t(1), LO, i(1), LockMode::Shared);
        let _ = lm.request(t(2), LO, i(1), LockMode::Exclusive); // waits
        let _ = lm.request(t(3), LO, i(1), LockMode::Shared); // waits behind X
        let grants = lm.abort(t(2));
        assert_eq!(
            grants,
            vec![Grant {
                txn: t(3),
                item: i(1)
            }]
        );
        lm.check_invariants();
    }

    #[test]
    fn stats_count_grants_and_blocks() {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        let _ = lm.request(t(1), LO, i(1), LockMode::Exclusive);
        let _ = lm.request(t(2), LO, i(1), LockMode::Exclusive);
        assert_eq!(lm.grant_count(), 1);
        assert_eq!(lm.block_count(), 1);
        let _ = lm.release_all(t(1));
        assert_eq!(lm.grant_count(), 2);
    }
}
