//! FCFS disks.
//!
//! Each data disk serves one I/O at a time from a FIFO queue; the database
//! is striped across the data disks by page number, so random page accesses
//! spread evenly — the "evenly striped" assumption the paper's balanced
//! throughput model makes. A separate instance serves the log.

use crate::txn::TxnId;
use std::collections::VecDeque;

/// One I/O request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoRequest {
    /// Transaction that issued the I/O.
    pub txn: TxnId,
    /// Service time of this request, seconds.
    pub service: f64,
}

/// A single FCFS disk.
#[derive(Debug, Default)]
pub struct Disk {
    queue: VecDeque<IoRequest>,
    /// The request currently on the platter, if any.
    current: Option<IoRequest>,
    busy_area: f64,
    last_sync: f64,
    completed: u64,
}

impl Disk {
    /// An idle disk.
    pub fn new() -> Disk {
        Disk::default()
    }

    fn sync(&mut self, now: f64) {
        let dt = now - self.last_sync;
        if dt > 0.0 && self.current.is_some() {
            self.busy_area += dt;
        }
        self.last_sync = now;
    }

    /// Submit a request at time `now`. Returns `Some(completion_delay)` if
    /// the disk was idle and the caller must schedule the completion; `None`
    /// if the request was queued behind others.
    #[must_use]
    pub fn submit(&mut self, now: f64, req: IoRequest) -> Option<f64> {
        self.sync(now);
        if self.current.is_none() {
            self.current = Some(req);
            Some(req.service)
        } else {
            self.queue.push_back(req);
            None
        }
    }

    /// The current request finished at `now`. Returns the finished request
    /// and, if another was queued, the next request with its completion
    /// delay for the caller to schedule.
    pub fn complete(&mut self, now: f64) -> (IoRequest, Option<(IoRequest, f64)>) {
        self.sync(now);
        let done = self.current.take().expect("completing idle disk");
        self.completed += 1;
        let next = self.queue.pop_front().map(|r| {
            self.current = Some(r);
            (r, r.service)
        });
        (done, next)
    }

    /// Number of requests waiting (excluding the one in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True if a request is in service.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Busy seconds so far.
    pub fn busy_time(&mut self, now: f64) -> f64 {
        self.sync(now);
        self.busy_area
    }

    /// Completed request count.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, s: f64) -> IoRequest {
        IoRequest {
            txn: TxnId(t),
            service: s,
        }
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = Disk::new();
        let delay = d.submit(0.0, req(1, 0.005));
        assert_eq!(delay, Some(0.005));
        assert!(d.is_busy());
        assert_eq!(d.queue_len(), 0);
    }

    #[test]
    fn busy_disk_queues() {
        let mut d = Disk::new();
        assert!(d.submit(0.0, req(1, 0.005)).is_some());
        assert!(d.submit(0.001, req(2, 0.004)).is_none());
        assert_eq!(d.queue_len(), 1);
        let (done, next) = d.complete(0.005);
        assert_eq!(done.txn, TxnId(1));
        let (nreq, delay) = next.unwrap();
        assert_eq!(nreq.txn, TxnId(2));
        assert!((delay - 0.004).abs() < 1e-15);
    }

    #[test]
    fn fcfs_order() {
        let mut d = Disk::new();
        let _ = d.submit(0.0, req(1, 0.01));
        let _ = d.submit(0.0, req(2, 0.01));
        let _ = d.submit(0.0, req(3, 0.01));
        let (a, _) = d.complete(0.01);
        let (b, _) = d.complete(0.02);
        let (c, next) = d.complete(0.03);
        assert_eq!((a.txn, b.txn, c.txn), (TxnId(1), TxnId(2), TxnId(3)));
        assert!(next.is_none());
        assert!(!d.is_busy());
        assert_eq!(d.completed(), 3);
    }

    #[test]
    fn busy_time_accumulates_only_when_serving() {
        let mut d = Disk::new();
        let _ = d.submit(1.0, req(1, 0.5));
        d.complete(1.5);
        // Idle from 1.5 to 3.0.
        assert!((d.busy_time(3.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "completing idle disk")]
    fn completing_idle_panics() {
        Disk::new().complete(0.0);
    }
}
