//! LRU buffer pool.
//!
//! The pool decides which page accesses are memory hits (CPU-only cost)
//! and which become disk reads. Capacity in pages vs. the workload's
//! database size reproduces the paper's memory-pressure dimension (Table 1
//! varies the buffer pool between 100 MB and 3 GB to turn the same
//! benchmark into a CPU-bound or an I/O-bound workload).
//!
//! Implementation: intrusive doubly-linked LRU list over an Fx-hashed
//! page map, O(1) probe and insert — the standard design, sized for tens
//! of millions of probes per experiment. Page ids are plain integers the
//! workload generator controls, so the map skips SipHash for the
//! multiply-rotate Fx hash; probes are the single hottest operation in
//! the simulator.

use crate::txn::PageId;
use xsched_sim::FxHashMap;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    page: PageId,
    prev: u32,
    next: u32,
}

/// A fixed-capacity LRU cache of pages.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    map: FxHashMap<PageId, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages (`capacity ≥ 1`).
    pub fn new(capacity: u64) -> BufferPool {
        let capacity = capacity.max(1) as usize;
        BufferPool {
            capacity,
            map: FxHashMap::with_capacity_and_hasher(capacity.min(1 << 22), Default::default()),
            nodes: Vec::with_capacity(capacity.min(1 << 22)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Probe for `page`. On a hit the page is moved to the MRU position
    /// and `true` is returned; on a miss `false` is returned and the caller
    /// is expected to perform the disk read and then [`BufferPool::insert`]
    /// the page.
    pub fn probe(&mut self, page: PageId) -> bool {
        if let Some(&idx) = self.map.get(&page) {
            self.hits += 1;
            self.move_to_front(idx);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Insert `page` at the MRU position, evicting the LRU page if full.
    /// Returns the evicted page, if any. Inserting a resident page just
    /// refreshes its position.
    pub fn insert(&mut self, page: PageId) -> Option<PageId> {
        if let Some(&idx) = self.map.get(&page) {
            self.move_to_front(idx);
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL);
            let victim = self.nodes[tail as usize].page;
            self.unlink(tail);
            self.map.remove(&victim);
            self.free.push(tail);
            Some(victim)
        } else {
            None
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node {
                page,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                page,
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        evicted
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn move_to_front(&mut self, idx: u32) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio so far (0 when unprobed).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut bp = BufferPool::new(10);
        assert!(!bp.probe(p(1)));
        bp.insert(p(1));
        assert!(bp.probe(p(1)));
        assert_eq!(bp.hits(), 1);
        assert_eq!(bp.misses(), 1);
        assert!((bp.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut bp = BufferPool::new(3);
        bp.insert(p(1));
        bp.insert(p(2));
        bp.insert(p(3));
        // Touch 1 so 2 becomes LRU.
        assert!(bp.probe(p(1)));
        let evicted = bp.insert(p(4));
        assert_eq!(evicted, Some(p(2)));
        assert!(bp.probe(p(1)));
        assert!(!bp.probe(p(2)));
        assert!(bp.probe(p(3)));
        assert!(bp.probe(p(4)));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut bp = BufferPool::new(5);
        for i in 0..100 {
            bp.insert(p(i));
            assert!(bp.len() <= 5);
        }
        assert_eq!(bp.len(), 5);
        // The five most recent pages are resident.
        for i in 95..100 {
            assert!(bp.probe(p(i)), "page {i} missing");
        }
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut bp = BufferPool::new(2);
        bp.insert(p(1));
        bp.insert(p(2));
        assert_eq!(bp.insert(p(1)), None); // refresh, no eviction
        assert_eq!(bp.insert(p(3)), Some(p(2))); // 2 was LRU after refresh
    }

    #[test]
    fn working_set_within_capacity_hits_forever() {
        let mut bp = BufferPool::new(64);
        // Warm up.
        for i in 0..64 {
            bp.probe(p(i));
            bp.insert(p(i));
        }
        let misses_before = bp.misses();
        for round in 0..10 {
            for i in 0..64 {
                assert!(bp.probe(p(i)), "round {round} page {i}");
            }
        }
        assert_eq!(bp.misses(), misses_before);
    }

    #[test]
    fn capacity_one() {
        let mut bp = BufferPool::new(1);
        bp.insert(p(1));
        assert_eq!(bp.insert(p(2)), Some(p(1)));
        assert!(bp.probe(p(2)));
        assert!(!bp.probe(p(1)));
    }
}
