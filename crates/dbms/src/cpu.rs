//! Processor-sharing CPU bank.
//!
//! `c` CPUs serve `n` runnable transactions: each job receives service rate
//! `min(1, c/n)` (a single job cannot run on two CPUs at once — the second
//! of the paper's two deliberate model pessimisms). Under
//! [`CpuPolicy::PrioritizeHigh`] the high-priority jobs are served first:
//! with `h` high jobs each gets `min(1, c/h)`, and low jobs share whatever
//! capacity remains — a preemptive-priority generalization of PS modelling
//! the paper's `renice` experiment.
//!
//! Because remaining work drains at a state-dependent rate, completion
//! events cannot be scheduled once and forgotten. The bank keeps an epoch
//! counter: every membership change bumps the epoch and re-schedules the
//! next completion; stale events are recognized and dropped by the caller
//! via [`CpuBank::is_current`].

use crate::config::CpuPolicy;
use crate::txn::{Priority, TxnId};

#[derive(Debug, Clone)]
struct CpuJob {
    txn: TxnId,
    remaining: f64,
    priority: Priority,
}

/// The shared CPU bank.
///
/// The runnable set is a dense vector in arrival order (its size is
/// bounded by the MPL, so linear scans beat hashing and every iteration
/// — including the floating-point busy-time accumulation — runs in a
/// deterministic order). A running count of high-priority jobs keeps the
/// two-class rate computation O(1).
#[derive(Debug)]
pub struct CpuBank {
    cpus: f64,
    policy: CpuPolicy,
    jobs: Vec<CpuJob>,
    high_jobs: usize,
    last_sync: f64,
    epoch: u64,
    /// Integral of busy capacity (0..=cpus) over time, for utilization.
    busy_area: f64,
}

impl CpuBank {
    /// A bank of `cpus` processors under the given policy.
    pub fn new(cpus: u32, policy: CpuPolicy) -> CpuBank {
        assert!(cpus >= 1);
        CpuBank {
            cpus: cpus as f64,
            policy,
            jobs: Vec::new(),
            high_jobs: 0,
            last_sync: 0.0,
            epoch: 0,
            busy_area: 0.0,
        }
    }

    /// Number of runnable jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no job is runnable.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Current epoch; completion events carry the epoch they were
    /// scheduled under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True if `epoch` matches the bank's current epoch (the event is not
    /// stale).
    pub fn is_current(&self, epoch: u64) -> bool {
        self.epoch == epoch
    }

    /// Service rate currently granted to a job of class `prio`.
    fn rate_for(&self, prio: Priority) -> f64 {
        let n = self.jobs.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        match self.policy {
            CpuPolicy::Fair => (self.cpus / n).min(1.0),
            CpuPolicy::PrioritizeHigh => {
                let h = self.high_jobs as f64;
                let high_rate = if h > 0.0 {
                    (self.cpus / h).min(1.0)
                } else {
                    0.0
                };
                match prio {
                    Priority::High => high_rate,
                    Priority::Low => {
                        let leftover = (self.cpus - h * high_rate).max(0.0);
                        let l = n - h;
                        if l > 0.0 {
                            (leftover / l).min(1.0)
                        } else {
                            0.0
                        }
                    }
                }
            }
        }
    }

    /// Advance all remaining-work counters to time `now` (seconds).
    fn sync(&mut self, now: f64) {
        let dt = now - self.last_sync;
        debug_assert!(dt >= -1e-9, "time went backwards in CpuBank");
        if dt > 0.0 {
            let mut busy = 0.0;
            // Precompute class rates once; they're uniform within a class.
            let rate_high = self.rate_for(Priority::High);
            let rate_low = self.rate_for(Priority::Low);
            for job in self.jobs.iter_mut() {
                let r = match job.priority {
                    Priority::High => rate_high,
                    Priority::Low => rate_low,
                };
                job.remaining = (job.remaining - r * dt).max(0.0);
                busy += r;
            }
            self.busy_area += busy.min(self.cpus) * dt;
        }
        self.last_sync = now;
    }

    /// Add `work` seconds of CPU demand for `txn` at time `now`. Returns
    /// the new epoch.
    pub fn add(&mut self, now: f64, txn: TxnId, work: f64, priority: Priority) -> u64 {
        self.sync(now);
        debug_assert!(
            !self.jobs.iter().any(|j| j.txn == txn),
            "txn {txn:?} already on CPU"
        );
        self.jobs.push(CpuJob {
            txn,
            remaining: work.max(0.0),
            priority,
        });
        if priority == Priority::High {
            self.high_jobs += 1;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Remove a job regardless of progress (abort path). Returns the new
    /// epoch if the job was present.
    pub fn remove(&mut self, now: f64, txn: TxnId) -> Option<u64> {
        self.sync(now);
        if let Some(pos) = self.jobs.iter().position(|j| j.txn == txn) {
            let job = self.jobs.remove(pos);
            if job.priority == Priority::High {
                self.high_jobs -= 1;
            }
            self.epoch += 1;
            Some(self.epoch)
        } else {
            None
        }
    }

    /// Time until the next job completes at current rates, and that job's
    /// id. `None` if the bank is idle (or all runnable jobs are starved,
    /// which cannot happen with `cpus ≥ 1`).
    pub fn next_completion(&mut self, now: f64) -> Option<(f64, TxnId)> {
        self.sync(now);
        let rate_high = self.rate_for(Priority::High);
        let rate_low = self.rate_for(Priority::Low);
        let mut best: Option<(f64, TxnId)> = None;
        for job in &self.jobs {
            let r = match job.priority {
                Priority::High => rate_high,
                Priority::Low => rate_low,
            };
            if r <= 0.0 {
                continue;
            }
            let t = job.remaining / r;
            // Deterministic tie-break on TxnId.
            let better = match best {
                None => true,
                Some((bt, bid)) => t < bt - 1e-15 || ((t - bt).abs() <= 1e-15 && job.txn < bid),
            };
            if better {
                best = Some((t, job.txn));
            }
        }
        best
    }

    /// Complete and remove the given job at `now`; asserts it had (almost)
    /// no work left. Returns the new epoch.
    pub fn complete(&mut self, now: f64, txn: TxnId) -> u64 {
        self.sync(now);
        let pos = self
            .jobs
            .iter()
            .position(|j| j.txn == txn)
            .expect("completing unknown CPU job");
        let job = self.jobs.remove(pos);
        if job.priority == Priority::High {
            self.high_jobs -= 1;
        }
        debug_assert!(
            job.remaining < 1e-6,
            "completed job had {} s left",
            job.remaining
        );
        self.epoch += 1;
        self.epoch
    }

    /// CPU-seconds of capacity consumed so far (for utilization:
    /// `busy_time / (cpus · elapsed)`).
    pub fn busy_time(&mut self, now: f64) -> f64 {
        self.sync(now);
        self.busy_area
    }

    /// Total capacity of the bank (number of CPUs).
    pub fn capacity(&self) -> f64 {
        self.cpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn single_job_runs_at_full_speed() {
        let mut bank = CpuBank::new(1, CpuPolicy::Fair);
        bank.add(0.0, id(1), 2.0, Priority::Low);
        let (t, who) = bank.next_completion(0.0).unwrap();
        assert_eq!(who, id(1));
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_jobs_share_one_cpu() {
        let mut bank = CpuBank::new(1, CpuPolicy::Fair);
        bank.add(0.0, id(1), 1.0, Priority::Low);
        bank.add(0.0, id(2), 1.0, Priority::Low);
        let (t, _) = bank.next_completion(0.0).unwrap();
        assert!((t - 2.0).abs() < 1e-12, "each runs at rate 1/2: {t}");
    }

    #[test]
    fn two_jobs_two_cpus_run_at_full_speed() {
        let mut bank = CpuBank::new(2, CpuPolicy::Fair);
        bank.add(0.0, id(1), 1.0, Priority::Low);
        bank.add(0.0, id(2), 3.0, Priority::Low);
        let (t, who) = bank.next_completion(0.0).unwrap();
        assert_eq!(who, id(1));
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_job_cannot_use_two_cpus() {
        let mut bank = CpuBank::new(2, CpuPolicy::Fair);
        bank.add(0.0, id(1), 1.0, Priority::Low);
        let (t, _) = bank.next_completion(0.0).unwrap();
        assert!((t - 1.0).abs() < 1e-12, "rate capped at 1: {t}");
    }

    #[test]
    fn progress_is_tracked_across_membership_changes() {
        let mut bank = CpuBank::new(1, CpuPolicy::Fair);
        bank.add(0.0, id(1), 1.0, Priority::Low);
        // At t=0.5, half done; a second job arrives.
        bank.add(0.5, id(2), 1.0, Priority::Low);
        // Job 1 has 0.5 left at rate 0.5 → completes at t=1.5.
        let (t, who) = bank.next_completion(0.5).unwrap();
        assert_eq!(who, id(1));
        assert!((t - 1.0).abs() < 1e-12, "dt until completion {t}");
        bank.complete(1.5, id(1));
        // Job 2: consumed 0.5 while sharing; 0.5 left at full rate.
        let (t2, who2) = bank.next_completion(1.5).unwrap();
        assert_eq!(who2, id(2));
        assert!((t2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn priority_mode_starves_low_when_saturated() {
        let mut bank = CpuBank::new(1, CpuPolicy::PrioritizeHigh);
        bank.add(0.0, id(1), 1.0, Priority::High);
        bank.add(0.0, id(2), 1.0, Priority::Low);
        // High runs at 1, low at 0 → next completion is high at t=1.
        let (t, who) = bank.next_completion(0.0).unwrap();
        assert_eq!(who, id(1));
        assert!((t - 1.0).abs() < 1e-12);
        bank.complete(1.0, id(1));
        // Low job made no progress; now runs alone.
        let (t2, _) = bank.next_completion(1.0).unwrap();
        assert!((t2 - 1.0).abs() < 1e-12, "low made progress while starved");
    }

    #[test]
    fn priority_mode_shares_leftover_with_low() {
        let mut bank = CpuBank::new(2, CpuPolicy::PrioritizeHigh);
        bank.add(0.0, id(1), 1.0, Priority::High);
        bank.add(0.0, id(2), 1.0, Priority::Low);
        bank.add(0.0, id(3), 1.0, Priority::Low);
        // High gets rate 1; the second CPU is split between the two lows.
        let (t, who) = bank.next_completion(0.0).unwrap();
        assert_eq!(who, id(1));
        assert!((t - 1.0).abs() < 1e-12);
        bank.complete(1.0, id(1));
        // Lows each did 0.5 of work; now share 2 CPUs at rate 1 each.
        let (t2, _) = bank.next_completion(1.0).unwrap();
        assert!((t2 - 0.5).abs() < 1e-12, "t2 {t2}");
    }

    #[test]
    fn epochs_invalidate_on_change() {
        let mut bank = CpuBank::new(1, CpuPolicy::Fair);
        let e1 = bank.add(0.0, id(1), 1.0, Priority::Low);
        assert!(bank.is_current(e1));
        let e2 = bank.add(0.1, id(2), 1.0, Priority::Low);
        assert!(!bank.is_current(e1));
        assert!(bank.is_current(e2));
    }

    #[test]
    fn remove_mid_flight() {
        let mut bank = CpuBank::new(1, CpuPolicy::Fair);
        bank.add(0.0, id(1), 1.0, Priority::Low);
        bank.add(0.0, id(2), 1.0, Priority::Low);
        assert!(bank.remove(0.5, id(1)).is_some());
        assert!(bank.remove(0.5, id(1)).is_none());
        // Job 2 did 0.25 of work sharing; 0.75 left at full speed.
        let (t, _) = bank.next_completion(0.5).unwrap();
        assert!((t - 0.75).abs() < 1e-12, "t {t}");
    }

    #[test]
    fn utilization_accounting() {
        let mut bank = CpuBank::new(2, CpuPolicy::Fair);
        bank.add(0.0, id(1), 1.0, Priority::Low);
        bank.complete(1.0, id(1));
        // One CPU busy for 1s out of 2 CPUs × 2s.
        let busy = bank.busy_time(2.0);
        assert!((busy - 1.0).abs() < 1e-12);
        assert_eq!(bank.capacity(), 2.0);
    }
}
