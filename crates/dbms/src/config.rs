//! Hardware and DBMS configuration.
//!
//! These structs correspond to the knobs varied across the paper's 17
//! setups (Table 2): number of CPUs, number of data disks, memory/buffer
//! pool size, and isolation level — plus the internal prioritization
//! switches used in §5.2.

use serde::{Deserialize, Serialize};

/// Physical resources of the simulated database server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Number of CPUs (1 or 2 in the paper).
    pub cpus: u32,
    /// Number of data disks the database is striped over (1–6 in the
    /// paper; one further disk is always dedicated to the log).
    pub data_disks: u32,
    /// Buffer pool capacity in pages. Together with the workload's
    /// database size this determines the hit ratio — the paper varies it
    /// between 100 MB and 1 GB (Table 1).
    pub bufferpool_pages: u64,
    /// Mean service time of one data-disk read, seconds.
    pub disk_read_time: f64,
    /// Mean service time of one log write (commit force), seconds.
    pub log_write_time: f64,
    /// Mean non-resource delay per step, seconds: client↔server round
    /// trips and per-statement protocol work that occupy the transaction
    /// (and its MPL slot, and its locks) without using CPU or disk. This
    /// is why even a pure-CPU workload needs an MPL of ~5 rather than ~1
    /// to saturate one CPU (Fig. 2).
    pub step_delay: f64,
}

impl Default for HardwareConfig {
    fn default() -> Self {
        HardwareConfig {
            cpus: 1,
            data_disks: 1,
            bufferpool_pages: 50_000,
            disk_read_time: 0.005,
            log_write_time: 0.003,
            step_delay: 0.0006,
        }
    }
}

impl HardwareConfig {
    /// Write a structural fingerprint of every field (floats as IEEE bit
    /// patterns) — the measurement-cache key's view of this config. The
    /// exhaustive destructuring (no `..`) makes adding a field without
    /// fingerprinting it a compile error.
    pub fn fingerprint_into(&self, fp: &mut xsched_sim::StableFp) {
        let HardwareConfig {
            cpus,
            data_disks,
            bufferpool_pages,
            disk_read_time,
            log_write_time,
            step_delay,
        } = *self;
        fp.write_u32(cpus);
        fp.write_u32(data_disks);
        fp.write_u64(bufferpool_pages);
        fp.write_f64(disk_read_time);
        fp.write_f64(log_write_time);
        fp.write_f64(step_delay);
    }

    /// Builder-style setter for the CPU count.
    pub fn with_cpus(mut self, cpus: u32) -> Self {
        self.cpus = cpus;
        self
    }

    /// Builder-style setter for the data-disk count.
    pub fn with_data_disks(mut self, disks: u32) -> Self {
        self.data_disks = disks;
        self
    }

    /// Builder-style setter for the buffer-pool capacity.
    pub fn with_bufferpool_pages(mut self, pages: u64) -> Self {
        self.bufferpool_pages = pages;
        self
    }
}

/// Isolation level, controlling how much locking transactions perform.
///
/// The paper contrasts DB2's default Repeatable Read (RR) with Uncommitted
/// Read (UR) to create different levels of lock contention (setups 13–17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IsolationLevel {
    /// Repeatable Read: shared locks on reads and exclusive locks on
    /// writes, all held until commit (strict 2PL).
    RepeatableRead,
    /// Uncommitted Read: no shared locks at all; only writes take
    /// (exclusive) locks.
    UncommittedRead,
}

/// How the lock manager orders waiters (internal prioritization, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockPriorityPolicy {
    /// Plain FIFO lock queues — no internal lock prioritization.
    None,
    /// High-priority requests enqueue ahead of waiting low-priority
    /// requests (non-preemptive priority queues).
    PriorityQueue,
    /// Preempt-on-Wait (McWherter et al., cited by the paper): like
    /// [`LockPriorityPolicy::PriorityQueue`], and additionally a blocked
    /// high-priority request aborts any low-priority lock *holder* that is
    /// itself waiting at some other lock queue.
    PreemptOnWait,
}

/// How the CPU bank shares cycles (internal prioritization, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuPolicy {
    /// Egalitarian processor sharing across all runnable transactions.
    Fair,
    /// Preemptive two-level priority: high-priority transactions share the
    /// CPUs first; low-priority ones get the leftover capacity (the
    /// paper's `renice -20` / `+20` experiment).
    PrioritizeHigh,
}

/// How blocked-forever situations are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeadlockStrategy {
    /// Waits-for graph cycle detection at block time, youngest victim
    /// aborted (the default, what DB2 and Shore do).
    Detection,
    /// No graph maintenance: a blocked request that has waited longer than
    /// the timeout is aborted (the cheap alternative several systems use;
    /// trades detection cost for false positives under load).
    Timeout {
        /// Seconds a lock request may wait before its transaction aborts.
        timeout: f64,
    },
}

/// Software configuration of the simulated DBMS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbmsConfig {
    /// Isolation level for all transactions.
    pub isolation: IsolationLevel,
    /// Lock-queue priority policy.
    pub lock_policy: LockPriorityPolicy,
    /// CPU scheduling policy.
    pub cpu_policy: CpuPolicy,
    /// Extra CPU time consumed per buffer-pool *hit* page access, seconds
    /// (a memory hit still costs cycles).
    pub hit_cpu_time: f64,
    /// Mean of the exponential backoff before an aborted transaction is
    /// restarted, seconds.
    pub restart_backoff: f64,
    /// Upper bound on restarts per transaction before it is force-completed
    /// without its locks (guards against livelock in pathological configs;
    /// never reached in the paper's operating range).
    pub max_restarts: u32,
    /// Deadlock resolution strategy.
    pub deadlock: DeadlockStrategy,
    /// Group commit: while the log disk is busy, arriving commit records
    /// accumulate and are hardened by a single force write. Off by default
    /// (per-commit forces, as calibrated against the paper's setups).
    pub group_commit: bool,
    /// Fraction of a committed transaction's touched pages written back to
    /// the data disks asynchronously after commit (dirty-page flushing).
    /// The transaction does not wait for these writes, but they occupy
    /// the disks. 0.0 disables write-back.
    pub writeback_fraction: f64,
}

impl Default for DbmsConfig {
    fn default() -> Self {
        DbmsConfig {
            isolation: IsolationLevel::RepeatableRead,
            lock_policy: LockPriorityPolicy::None,
            cpu_policy: CpuPolicy::Fair,
            hit_cpu_time: 20e-6,
            restart_backoff: 0.010,
            max_restarts: 50,
            deadlock: DeadlockStrategy::Detection,
            group_commit: false,
            writeback_fraction: 0.0,
        }
    }
}

impl DbmsConfig {
    /// Write a structural fingerprint of every field — the
    /// measurement-cache key's view of this config. The exhaustive
    /// destructuring (no `..`) makes adding a field without
    /// fingerprinting it a compile error.
    pub fn fingerprint_into(&self, fp: &mut xsched_sim::StableFp) {
        let DbmsConfig {
            isolation,
            lock_policy,
            cpu_policy,
            hit_cpu_time,
            restart_backoff,
            max_restarts,
            deadlock,
            group_commit,
            writeback_fraction,
        } = *self;
        fp.write_u64(match isolation {
            IsolationLevel::RepeatableRead => 0,
            IsolationLevel::UncommittedRead => 1,
        });
        fp.write_u64(match lock_policy {
            LockPriorityPolicy::None => 0,
            LockPriorityPolicy::PriorityQueue => 1,
            LockPriorityPolicy::PreemptOnWait => 2,
        });
        fp.write_u64(match cpu_policy {
            CpuPolicy::Fair => 0,
            CpuPolicy::PrioritizeHigh => 1,
        });
        fp.write_f64(hit_cpu_time);
        fp.write_f64(restart_backoff);
        fp.write_u32(max_restarts);
        match deadlock {
            DeadlockStrategy::Detection => fp.write_u64(0),
            DeadlockStrategy::Timeout { timeout } => {
                fp.write_u64(1);
                fp.write_f64(timeout);
            }
        }
        fp.write_bool(group_commit);
        fp.write_f64(writeback_fraction);
    }

    /// Builder-style setter for the isolation level.
    pub fn with_isolation(mut self, iso: IsolationLevel) -> Self {
        self.isolation = iso;
        self
    }

    /// Builder-style setter for the lock priority policy.
    pub fn with_lock_policy(mut self, p: LockPriorityPolicy) -> Self {
        self.lock_policy = p;
        self
    }

    /// Builder-style setter for the CPU policy.
    pub fn with_cpu_policy(mut self, p: CpuPolicy) -> Self {
        self.cpu_policy = p;
        self
    }

    /// Builder-style setter for the deadlock strategy.
    pub fn with_deadlock(mut self, d: DeadlockStrategy) -> Self {
        self.deadlock = d;
        self
    }

    /// Builder-style setter for group commit.
    pub fn with_group_commit(mut self, on: bool) -> Self {
        self.group_commit = on;
        self
    }

    /// Builder-style setter for asynchronous dirty-page write-back.
    pub fn with_writeback_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.writeback_fraction = f;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_resource_rr_fair() {
        let hw = HardwareConfig::default();
        assert_eq!(hw.cpus, 1);
        assert_eq!(hw.data_disks, 1);
        let db = DbmsConfig::default();
        assert_eq!(db.isolation, IsolationLevel::RepeatableRead);
        assert_eq!(db.lock_policy, LockPriorityPolicy::None);
        assert_eq!(db.cpu_policy, CpuPolicy::Fair);
    }

    #[test]
    fn builders_chain() {
        let hw = HardwareConfig::default()
            .with_cpus(2)
            .with_data_disks(4)
            .with_bufferpool_pages(123);
        assert_eq!((hw.cpus, hw.data_disks, hw.bufferpool_pages), (2, 4, 123));
        let db = DbmsConfig::default()
            .with_isolation(IsolationLevel::UncommittedRead)
            .with_lock_policy(LockPriorityPolicy::PreemptOnWait)
            .with_cpu_policy(CpuPolicy::PrioritizeHigh);
        assert_eq!(db.isolation, IsolationLevel::UncommittedRead);
        assert_eq!(db.lock_policy, LockPriorityPolicy::PreemptOnWait);
        assert_eq!(db.cpu_policy, CpuPolicy::PrioritizeHigh);
    }
}
