//! Transaction identity and structure.
//!
//! A transaction body is a straight-line program of [`Step`]s. Each step
//! optionally acquires one lock, then touches a set of pages (buffer pool
//! probes that may become disk reads), then burns a CPU burst. Commit
//! forces one log write and releases all locks (strict 2PL).

use serde::{Deserialize, Serialize};

/// Identifier of an admitted transaction instance, unique per simulation
/// and monotone in admission order (used as the age for deadlock
/// victim selection: larger id = younger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

/// Identifier of a database page (buffer pool / disk granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u64);

/// Identifier of a lockable item (row / table granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u64);

/// Lock mode of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared (read) lock — compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock — compatible with nothing.
    Exclusive,
}

impl LockMode {
    /// Lock compatibility matrix of strict 2PL.
    pub fn compatible_with(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Scheduling class of a transaction (the paper uses two: 10% "big
/// spenders" are high priority, the rest low).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Priority {
    /// Low-priority class (ordinary shoppers).
    Low,
    /// High-priority class (revenue-carrying transactions).
    High,
}

/// One step of a transaction body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Lock acquired at the start of the step, if any. Under Uncommitted
    /// Read isolation, `Shared` requests are skipped entirely.
    pub lock: Option<(ItemId, LockMode)>,
    /// Pages touched during the step; each is a buffer-pool probe that
    /// costs `hit_cpu_time` on a hit or one disk read on a miss.
    pub pages: Vec<PageId>,
    /// Pure CPU demand of the step, seconds.
    pub cpu: f64,
}

impl Step {
    /// A compute-only step.
    pub fn compute(cpu: f64) -> Step {
        Step {
            lock: None,
            pages: Vec::new(),
            cpu,
        }
    }
}

/// A complete transaction body as submitted by the external scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnBody {
    /// Workload-defined transaction type index (e.g. NewOrder = 0); only
    /// used for reporting.
    pub txn_type: u32,
    /// Scheduling class.
    pub priority: Priority,
    /// The program.
    pub steps: Vec<Step>,
}

impl TxnBody {
    /// Total pure CPU demand across steps (excludes buffer-hit costs).
    pub fn total_cpu(&self) -> f64 {
        self.steps.iter().map(|s| s.cpu).sum()
    }

    /// Total number of page accesses.
    pub fn total_pages(&self) -> usize {
        self.steps.iter().map(|s| s.pages.len()).sum()
    }

    /// Number of lock requests (before isolation-level filtering).
    pub fn total_locks(&self) -> usize {
        self.steps.iter().filter(|s| s.lock.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible_with(Shared));
        assert!(!Shared.compatible_with(Exclusive));
        assert!(!Exclusive.compatible_with(Shared));
        assert!(!Exclusive.compatible_with(Exclusive));
    }

    #[test]
    fn body_totals() {
        let body = TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![
                Step {
                    lock: Some((ItemId(1), LockMode::Shared)),
                    pages: vec![PageId(1), PageId(2)],
                    cpu: 0.001,
                },
                Step::compute(0.002),
                Step {
                    lock: Some((ItemId(2), LockMode::Exclusive)),
                    pages: vec![PageId(3)],
                    cpu: 0.003,
                },
            ],
        };
        assert!((body.total_cpu() - 0.006).abs() < 1e-12);
        assert_eq!(body.total_pages(), 3);
        assert_eq!(body.total_locks(), 2);
    }

    #[test]
    fn priority_orders_low_below_high() {
        assert!(Priority::Low < Priority::High);
    }
}
