//! Rate-parameterized fault injection for the simulated DBMS.
//!
//! A [`FaultSpec`] describes service-side chaos — lock-holder stalls,
//! disk-latency spikes, client-abort storms — as a handful of rates and
//! means. Each enabled injector draws from its own derived RNG stream
//! (`chaos/stall`, `chaos/disk`, `chaos/abort`), so:
//!
//! * every injector is bit-reproducible in `(seed, spec)`, and
//! * a spec with every injector disabled consumes **zero** chaos draws
//!   and schedules **zero** extra events, leaving the simulation
//!   byte-identical to one built without chaos at all.
//!
//! Traffic-side chaos (arrival bursts, flash crowds, think-time
//! overrides) lives in `xsched-workload`; the two meet in the
//! experiment driver.

use serde::Serialize;
use xsched_sim::SimRng;

/// Lock-holder stall injector: with probability `p_per_lock`, a
/// transaction that just secured its step lock freezes for an
/// exponential pause *while holding the lock* — the injected analogue
/// of a client pausing mid-transaction or a VM hiccup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StallSpec {
    /// Probability that a freshly acquired lock stalls its holder.
    pub p_per_lock: f64,
    /// Mean stall length, seconds (exponential).
    pub mean_secs: f64,
}

/// Disk-latency spike injector: an ON/OFF modulation of data-disk
/// service times (both demand reads and background write-backs),
/// multiplying every service draw by `factor` while ON.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SpikeSpec {
    /// Mean length of the degraded (ON) phase, seconds.
    pub mean_on: f64,
    /// Mean length of the healthy (OFF) phase, seconds.
    pub mean_off: f64,
    /// Service-time multiplier while the spike is active (> 1).
    pub factor: f64,
}

/// The service-side fault layer attached to a [`crate::DbmsSim`] via
/// [`crate::DbmsSim::with_chaos`]. The default value disables every
/// injector and is behaviourally (and byte-wise) a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct FaultSpec {
    /// Lock-holder stalls, or `None` to disable.
    pub stall: Option<StallSpec>,
    /// Disk-latency spikes, or `None` to disable.
    pub disk_spike: Option<SpikeSpec>,
    /// Poisson rate (events/second) of the client abort storm; each
    /// event kills the youngest lock-blocked transaction, mirroring a
    /// client cancelling a request stuck behind a lock. `0` disables.
    pub abort_rate: f64,
}

impl FaultSpec {
    /// True when every injector is disabled — the byte-identity case.
    pub fn is_noop(&self) -> bool {
        self.stall.is_none() && self.disk_spike.is_none() && self.abort_rate <= 0.0
    }
}

/// A deterministic two-state (OFF/ON) modulator: phase lengths are
/// exponential draws from the toggler's private RNG stream, so the flip
/// schedule is a pure function of the stream — independent of when (or
/// whether) the state is consulted. Used for the disk-spike injector
/// here and the MMPP arrival burst in the driver.
#[derive(Debug)]
pub struct Toggler {
    rng: SimRng,
    mean_on: f64,
    mean_off: f64,
    next_flip: f64,
    active: bool,
}

impl Toggler {
    /// A toggler starting OFF at `start`; the first ON phase begins an
    /// exponential (`mean_off`) draw later.
    pub fn new(mut rng: SimRng, mean_on: f64, mean_off: f64, start: f64) -> Toggler {
        let first = rng.exp(mean_off);
        Toggler {
            rng,
            mean_on,
            mean_off,
            next_flip: start + first,
            active: false,
        }
    }

    /// Advance past the next flip at or before `now`, returning it as
    /// `(flip_time, new_active)`. Call in a loop until `None`; the state
    /// is then current as of `now`.
    pub fn poll(&mut self, now: f64) -> Option<(f64, bool)> {
        if self.next_flip > now {
            return None;
        }
        let t = self.next_flip;
        self.active = !self.active;
        let mean = if self.active {
            self.mean_on
        } else {
            self.mean_off
        };
        self.next_flip = t + self.rng.exp(mean);
        Some((t, self.active))
    }

    /// Whether the ON phase is in force (as of the last `poll`).
    pub fn is_active(&self) -> bool {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_noop() {
        assert!(FaultSpec::default().is_noop());
        let s = FaultSpec {
            abort_rate: 2.0,
            ..Default::default()
        };
        assert!(!s.is_noop());
    }

    #[test]
    fn toggler_flip_schedule_is_consultation_independent() {
        // Poll sparsely vs densely: the flip times must be identical,
        // because the schedule is a pure function of the RNG stream.
        let flips = |probe_times: &[f64]| -> Vec<(u64, bool)> {
            let mut t = Toggler::new(SimRng::derive(7, "chaos/disk"), 2.0, 5.0, 1.0);
            let mut out = Vec::new();
            for &now in probe_times {
                while let Some((ft, act)) = t.poll(now) {
                    out.push((ft.to_bits(), act));
                }
            }
            out
        };
        let sparse = flips(&[100.0]);
        let dense: Vec<f64> = (0..1000).map(|i| i as f64 * 0.1).collect();
        assert_eq!(sparse, flips(&dense));
        assert!(!sparse.is_empty(), "100 s must contain flips");
        assert!(sparse[0].1, "first flip turns the spike ON");
        assert!(sparse[0].0 >= 1.0f64.to_bits(), "no flips before start");
    }

    #[test]
    fn toggler_alternates_phases() {
        let mut t = Toggler::new(SimRng::derive(3, "x"), 1.0, 1.0, 0.0);
        let mut expect = true;
        let mut n = 0;
        while let Some((_, act)) = t.poll(50.0) {
            assert_eq!(act, expect);
            expect = !expect;
            n += 1;
        }
        assert!(n >= 10, "50 s of mean-1 phases must flip many times");
    }
}
