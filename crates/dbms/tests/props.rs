//! Property-based tests for the DBMS substrate components.

use proptest::prelude::*;
use xsched_dbms::bufferpool::BufferPool;
use xsched_dbms::cpu::CpuBank;
use xsched_dbms::txn::{PageId, Priority, Step, TxnBody, TxnId};
use xsched_dbms::{CpuPolicy, DbmsConfig, DbmsSim, HardwareConfig, StepOutcome};

proptest! {
    /// LRU capacity is never exceeded; a re-probed page is always resident
    /// immediately after insertion.
    #[test]
    fn bufferpool_capacity_and_residency(
        cap in 1u64..64,
        pages in proptest::collection::vec(0u64..200, 1..400),
    ) {
        let mut bp = BufferPool::new(cap);
        for &p in &pages {
            let page = PageId(p);
            if !bp.probe(page) {
                bp.insert(page);
            }
            prop_assert!(bp.len() as u64 <= cap);
            prop_assert!(bp.probe(page), "freshly inserted page must be resident");
        }
        prop_assert_eq!(bp.hits() + bp.misses(), 2 * pages.len() as u64);
    }

    /// The most recently touched `cap` distinct pages are exactly the
    /// resident set (LRU correctness against a brute-force model).
    #[test]
    fn bufferpool_matches_reference_lru(
        cap in 1usize..16,
        pages in proptest::collection::vec(0u64..40, 1..200),
    ) {
        let mut bp = BufferPool::new(cap as u64);
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        for &p in &pages {
            if bp.probe(PageId(p)) {
                let pos = model.iter().position(|&x| x == p).expect("model out of sync");
                model.remove(pos);
                model.insert(0, p);
            } else {
                bp.insert(PageId(p));
                model.insert(0, p);
                if model.len() > cap {
                    model.pop();
                }
            }
            prop_assert_eq!(bp.len(), model.len());
        }
        // Every model-resident page must hit (probe also reorders both,
        // consistently, so check via fresh membership comparison).
        for &p in &model.clone() {
            prop_assert!(bp.probe(PageId(p)), "page {p} missing from pool");
        }
    }

    /// CPU bank work conservation: total busy time equals total work
    /// completed, and no job finishes before its work could possibly be
    /// done (elapsed ≥ work at rate ≤ 1).
    #[test]
    fn cpu_bank_conserves_work(
        works in proptest::collection::vec(0.001f64..0.1, 1..20),
        cpus in 1u32..4,
    ) {
        let mut bank = CpuBank::new(cpus, CpuPolicy::Fair);
        let mut t = 0.0;
        for (i, &w) in works.iter().enumerate() {
            bank.add(t, TxnId(i as u64), w, Priority::Low);
        }
        let mut finished = 0;
        let start = t;
        while let Some((dt, who)) = bank.next_completion(t) {
            t += dt;
            bank.complete(t, who);
            finished += 1;
        }
        prop_assert_eq!(finished, works.len());
        let total_work: f64 = works.iter().sum();
        let busy = bank.busy_time(t);
        prop_assert!((busy - total_work).abs() < 1e-6,
            "busy {busy} vs work {total_work}");
        // Makespan ≥ max individual work and ≥ total/cpus.
        let span = t - start;
        let min_span = works.iter().cloned().fold(0.0, f64::max)
            .max(total_work / cpus as f64);
        prop_assert!(span >= min_span - 1e-9);
    }

    /// End-to-end: any batch of lock-free transactions commits exactly
    /// once, and completion timestamps are nondecreasing in drain order.
    #[test]
    fn simulator_commits_everything(
        cpu_bursts in proptest::collection::vec(0.0001f64..0.01, 1..40),
        seed in any::<u64>(),
    ) {
        let mut sim = DbmsSim::new(HardwareConfig::default(), DbmsConfig::default(), seed);
        for (i, &c) in cpu_bursts.iter().enumerate() {
            sim.submit(
                TxnBody {
                    txn_type: i as u32,
                    priority: Priority::Low,
                    steps: vec![Step::compute(c)],
                },
                0.0,
            );
        }
        let mut seen = vec![false; cpu_bursts.len()];
        while sim.step() != StepOutcome::Idle {}
        for c in sim.drain_completions() {
            let idx = c.txn_type as usize;
            prop_assert!(!seen[idx], "duplicate completion for {idx}");
            seen[idx] = true;
            prop_assert!(c.completed >= c.admitted);
            prop_assert!(c.admitted >= c.external_arrival);
        }
        prop_assert!(seen.iter().all(|s| *s), "some txn never committed");
        prop_assert_eq!(sim.in_flight(), 0);
    }
}
