//! Property-based tests for the DBMS substrate components.

use proptest::prelude::*;
use xsched_dbms::bufferpool::BufferPool;
use xsched_dbms::cpu::CpuBank;
use xsched_dbms::txn::{ItemId, LockMode, PageId, Priority, Step, TxnBody, TxnId};
use xsched_dbms::{
    CountingSink, CpuPolicy, DbmsConfig, DbmsSim, FaultSpec, HardwareConfig, SpikeSpec, StallSpec,
    StepOutcome,
};
use xsched_sim::SimRng;

/// A small lock-contending workload driven to completion under an
/// optional fault layer; returns every completion timestamp bit pattern
/// plus the per-kind trace event counts.
fn chaos_fingerprint(spec: Option<FaultSpec>, seed: u64) -> (Vec<u64>, CountingSink) {
    let mut sim = DbmsSim::with_trace(
        HardwareConfig::default(),
        DbmsConfig::default(),
        seed,
        CountingSink::default(),
    );
    if let Some(sp) = spec {
        sim = sim.with_chaos(sp, 0.0, seed);
    }
    let mut rng = SimRng::derive(seed, "wl");
    for k in 0..40u64 {
        let body = TxnBody {
            txn_type: 0,
            priority: Priority::Low,
            steps: vec![Step {
                lock: Some((ItemId(k % 4), LockMode::Exclusive)),
                pages: vec![PageId(rng.index_u64(64))],
                cpu: 0.0005 + rng.uniform() * 0.001,
            }],
        };
        sim.submit(body, 0.0);
    }
    let mut guard = 0u64;
    while sim.in_flight() > 0 && sim.step() != StepOutcome::Idle {
        guard += 1;
        assert!(guard < 10_000_000, "chaos run failed to finish");
    }
    let done = sim
        .drain_completions()
        .iter()
        .map(|c| c.completed.to_bits())
        .collect();
    (done, sim.into_trace())
}

proptest! {
    /// LRU capacity is never exceeded; a re-probed page is always resident
    /// immediately after insertion.
    #[test]
    fn bufferpool_capacity_and_residency(
        cap in 1u64..64,
        pages in proptest::collection::vec(0u64..200, 1..400),
    ) {
        let mut bp = BufferPool::new(cap);
        for &p in &pages {
            let page = PageId(p);
            if !bp.probe(page) {
                bp.insert(page);
            }
            prop_assert!(bp.len() as u64 <= cap);
            prop_assert!(bp.probe(page), "freshly inserted page must be resident");
        }
        prop_assert_eq!(bp.hits() + bp.misses(), 2 * pages.len() as u64);
    }

    /// The most recently touched `cap` distinct pages are exactly the
    /// resident set (LRU correctness against a brute-force model).
    #[test]
    fn bufferpool_matches_reference_lru(
        cap in 1usize..16,
        pages in proptest::collection::vec(0u64..40, 1..200),
    ) {
        let mut bp = BufferPool::new(cap as u64);
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        for &p in &pages {
            if bp.probe(PageId(p)) {
                let pos = model.iter().position(|&x| x == p).expect("model out of sync");
                model.remove(pos);
                model.insert(0, p);
            } else {
                bp.insert(PageId(p));
                model.insert(0, p);
                if model.len() > cap {
                    model.pop();
                }
            }
            prop_assert_eq!(bp.len(), model.len());
        }
        // Every model-resident page must hit (probe also reorders both,
        // consistently, so check via fresh membership comparison).
        for &p in &model.clone() {
            prop_assert!(bp.probe(PageId(p)), "page {p} missing from pool");
        }
    }

    /// CPU bank work conservation: total busy time equals total work
    /// completed, and no job finishes before its work could possibly be
    /// done (elapsed ≥ work at rate ≤ 1).
    #[test]
    fn cpu_bank_conserves_work(
        works in proptest::collection::vec(0.001f64..0.1, 1..20),
        cpus in 1u32..4,
    ) {
        let mut bank = CpuBank::new(cpus, CpuPolicy::Fair);
        let mut t = 0.0;
        for (i, &w) in works.iter().enumerate() {
            bank.add(t, TxnId(i as u64), w, Priority::Low);
        }
        let mut finished = 0;
        let start = t;
        while let Some((dt, who)) = bank.next_completion(t) {
            t += dt;
            bank.complete(t, who);
            finished += 1;
        }
        prop_assert_eq!(finished, works.len());
        let total_work: f64 = works.iter().sum();
        let busy = bank.busy_time(t);
        prop_assert!((busy - total_work).abs() < 1e-6,
            "busy {busy} vs work {total_work}");
        // Makespan ≥ max individual work and ≥ total/cpus.
        let span = t - start;
        let min_span = works.iter().cloned().fold(0.0, f64::max)
            .max(total_work / cpus as f64);
        prop_assert!(span >= min_span - 1e-9);
    }

    /// End-to-end: any batch of lock-free transactions commits exactly
    /// once, and completion timestamps are nondecreasing in drain order.
    #[test]
    fn simulator_commits_everything(
        cpu_bursts in proptest::collection::vec(0.0001f64..0.01, 1..40),
        seed in any::<u64>(),
    ) {
        let mut sim = DbmsSim::new(HardwareConfig::default(), DbmsConfig::default(), seed);
        for (i, &c) in cpu_bursts.iter().enumerate() {
            sim.submit(
                TxnBody {
                    txn_type: i as u32,
                    priority: Priority::Low,
                    steps: vec![Step::compute(c)],
                },
                0.0,
            );
        }
        let mut seen = vec![false; cpu_bursts.len()];
        while sim.step() != StepOutcome::Idle {}
        for c in sim.drain_completions() {
            let idx = c.txn_type as usize;
            prop_assert!(!seen[idx], "duplicate completion for {idx}");
            seen[idx] = true;
            prop_assert!(c.completed >= c.admitted);
            prop_assert!(c.admitted >= c.external_arrival);
        }
        prop_assert!(seen.iter().all(|s| *s), "some txn never committed");
        prop_assert_eq!(sim.in_flight(), 0);
    }

    /// Every fault injector, at any rate, is bit-reproducible in
    /// `(seed, spec)`: two runs of the same chaos case agree on every
    /// completion timestamp bit and every trace event count.
    #[test]
    fn fault_injectors_are_bit_reproducible(
        seed in any::<u64>(),
        stall_p in 0.0f64..1.0,
        stall_mean in 0.0001f64..0.05,
        spike_on in 0.001f64..0.5,
        spike_off in 0.001f64..0.5,
        spike_factor in 1.0f64..20.0,
        abort_rate in 0.0f64..200.0,
        enables in 0u8..8,
    ) {
        let spec = FaultSpec {
            stall: (enables & 1 != 0).then_some(StallSpec {
                p_per_lock: stall_p,
                mean_secs: stall_mean,
            }),
            disk_spike: (enables & 2 != 0).then_some(SpikeSpec {
                mean_on: spike_on,
                mean_off: spike_off,
                factor: spike_factor,
            }),
            abort_rate: if enables & 4 != 0 { abort_rate } else { 0.0 },
        };
        let a = chaos_fingerprint(Some(spec), seed);
        let b = chaos_fingerprint(Some(spec), seed);
        prop_assert_eq!(a.0, b.0, "completion bits diverged");
        prop_assert_eq!(a.1, b.1, "trace event counts diverged");
    }

    /// The rate-0 identity, quantified over seeds: a fault layer whose
    /// every injector is disabled (including one carrying a zero-rate
    /// stall) is byte-identical to a sim built without chaos at all.
    #[test]
    fn zero_rate_chaos_is_byte_identical(seed in any::<u64>()) {
        let (base, base_trace) = chaos_fingerprint(None, seed);
        prop_assert_eq!(base.len(), 40);
        let (dflt, dflt_trace) = chaos_fingerprint(Some(FaultSpec::default()), seed);
        prop_assert_eq!(&base, &dflt, "default fault layer altered results");
        prop_assert_eq!(&base_trace, &dflt_trace, "default fault layer altered trace");
        let zero_rate = FaultSpec {
            stall: Some(StallSpec { p_per_lock: 0.0, mean_secs: 1.0 }),
            disk_spike: None,
            abort_rate: 0.0,
        };
        let (zr, zr_trace) = chaos_fingerprint(Some(zero_rate), seed);
        prop_assert_eq!(&base, &zr, "zero-rate stall altered results");
        prop_assert_eq!(&base_trace, &zr_trace, "zero-rate stall altered trace");
    }
}
