//! Fig. 10 benchmark: matrix-geometric solution of the flexible
//! multiserver queue, plus the QBD-vs-truncated-chain ablation (the
//! design choice DESIGN.md calls out: the matrix-geometric solver is the
//! production path; the exact truncated solve is the cross-check).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xsched_queueing::{ctmc, FlexServer, H2};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_qbd");
    for (c2, rho, mpl) in [(2.0, 0.7, 5u32), (15.0, 0.7, 15), (15.0, 0.9, 30)] {
        let label = format!("c2{c2}_rho{rho}_mpl{mpl}");
        let h2 = H2::fit(0.1, c2);
        let lambda = rho / 0.1;
        g.bench_with_input(
            BenchmarkId::new("matrix_geometric", &label),
            &mpl,
            |b, &mpl| {
                let fs = FlexServer::new(lambda, h2, mpl);
                b.iter(|| fs.solve().mean_response_time);
            },
        );
        g.bench_with_input(
            BenchmarkId::new("truncated_chain", &label),
            &mpl,
            |b, &mpl| {
                let fs = FlexServer::new(lambda, h2, mpl);
                b.iter(|| ctmc::solve_truncated(&fs, 600).mean_response_time);
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
