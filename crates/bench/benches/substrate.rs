//! Microbenchmarks of the DBMS substrate components: lock manager
//! grant/release cycles, buffer-pool probes, CPU-bank churn, Zipf
//! sampling and the event queue — the inner loops every simulated
//! experiment turns millions of times.

use criterion::{criterion_group, criterion_main, Criterion};
use xsched_dbms::bufferpool::BufferPool;
use xsched_dbms::cpu::CpuBank;
use xsched_dbms::lock::LockManager;
use xsched_dbms::txn::{ItemId, LockMode, PageId, Priority, TxnId};
use xsched_dbms::{CpuPolicy, LockPriorityPolicy};
use xsched_sim::zipf::Zipf;
use xsched_sim::{EventQueue, SimRng, SimTime};

fn bench(c: &mut Criterion) {
    c.bench_function("lock_grant_release_uncontended", |b| {
        let mut lm = LockManager::new(LockPriorityPolicy::None);
        let mut n = 0u64;
        b.iter(|| {
            let t = TxnId(n);
            n += 1;
            for i in 0..8u64 {
                let _ = lm.request(t, Priority::Low, ItemId(i), LockMode::Shared);
            }
            lm.release_all(t).len()
        });
    });

    c.bench_function("bufferpool_probe_hit", |b| {
        let mut bp = BufferPool::new(10_000);
        for i in 0..10_000u64 {
            bp.insert(PageId(i));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            bp.probe(PageId(i))
        });
    });

    c.bench_function("cpu_bank_churn_16_jobs", |b| {
        let mut bank = CpuBank::new(2, CpuPolicy::Fair);
        let mut t = 0.0f64;
        let mut n = 0u64;
        for k in 0..16u64 {
            bank.add(t, TxnId(k), 1e9, Priority::Low);
        }
        b.iter(|| {
            t += 1e-4;
            let id = TxnId(16 + n);
            n += 1;
            bank.add(t, id, 0.001, Priority::Low);
            t += 1e-4;
            bank.remove(t, id);
            bank.next_completion(t)
        });
    });

    c.bench_function("zipf_sample_1m", |b| {
        let z = Zipf::new(1_000_000, 0.9);
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| z.sample(&mut rng));
    });

    c.bench_function("event_queue_push_pop_64", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            for i in 0..64u64 {
                t += 17;
                q.schedule(SimTime::from_nanos(t + i * 31), i);
            }
            let mut sum = 0u64;
            for _ in 0..64 {
                sum += q.pop().unwrap().1;
            }
            sum
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
