//! §4.3 benchmark: full controller sessions (calibration + jump-start +
//! observation/reaction loop), contrasting queueing-model jump-start with
//! a cold start at MPL 1 — the ablation behind the paper's claim that the
//! jump-start is what makes small constant reaction steps viable.

use criterion::{criterion_group, criterion_main, Criterion};
use xsched_core::{Driver, RunConfig, Targets};
use xsched_workload::setup;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller");
    g.sample_size(10);
    let rc = RunConfig {
        warmup_txns: 50,
        measured_txns: 400,
        ..Default::default()
    };
    g.bench_function("session_jumpstart_setup1", |b| {
        let d = Driver::new(setup(1)).with_config(rc.clone());
        b.iter(|| {
            let o = d.run_controller_with_start(Targets::twenty_percent(), None);
            o.iterations
        });
    });
    g.bench_function("session_cold_setup1", |b| {
        let d = Driver::new(setup(1)).with_config(rc.clone());
        b.iter(|| {
            let o = d.run_controller_with_start(Targets::twenty_percent(), Some(1));
            o.iterations
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
