//! Hot-path baseline benchmark: `figures --quick`-scale sweeps through
//! the sweep executor, timed by the vendored criterion harness, plus a
//! raw simulator events/second measurement and a shard-balance
//! experiment — written out as machine-readable `BENCH_hotpath.json` so
//! CI can archive the repo's perf trajectory run over run (and fail on
//! events/sec regressions against the committed baseline).
//!
//! ```text
//! cargo bench -p xsched-bench --bench hotpath
//! BENCH_JSON_PATH=/tmp/b.json cargo bench -p xsched-bench --bench hotpath
//! ```
//!
//! The JSON carries one entry per figure (mean/min wall seconds per full
//! sweep), an `events` block with the raw event-loop rate, a `cells`
//! array with per-cell wall-clock over the heterogeneous fig2 + rt_open
//! grid, and a `shard_balance` block comparing static striding against
//! cost-balanced (LPT) slicing on that grid: per-shard wall-clock and the
//! max/min imbalance ratio for both modes. Figures run through the same
//! `SweepOpts`/`SweepExecutor` path the `figures` binary uses, so these
//! numbers track exactly what an operator waits on.

use criterion::{black_box, Criterion};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;
use xsched_bench::{
    fig2_report, fig2_scenarios, quick_rc, quick_rc_heavy, rt_open_report, rt_open_scenarios,
    SweepOpts,
};
use xsched_core::cost::encode_timing_cell;
use xsched_core::{BalanceMode, CellTiming, CostModel, SweepExecutor, SweepPlan};
use xsched_dbms::{CountingSink, DbmsSim, NoopTrace, StepOutcome, TraceSink};
use xsched_workload::{setup, TxnGen};

/// Raw event-loop rate: a saturated closed system on setup 1 driven
/// straight against the simulator (no external scheduler), measured over
/// a fixed number of processed events. Generic over the trace sink so
/// the same loop measures both the disabled path (`NoopTrace`, which
/// must compile away) and an attached `CountingSink`.
fn measure_events_per_sec<T: TraceSink>(trace: T) -> (u64, f64, T) {
    const TARGET_EVENTS: u64 = 400_000;
    const CLIENTS: usize = 16;
    let s = setup(1);
    let mut sim = DbmsSim::with_trace(s.hw.clone(), s.cfg.clone(), 7, trace);
    let mut gen = TxnGen::new(s.workload.clone(), 7);
    for _ in 0..CLIENTS {
        let body = gen.next();
        sim.submit(body, 0.0);
    }
    let mut completions = Vec::new();
    let t0 = Instant::now();
    while sim.events_processed() < TARGET_EVENTS {
        if sim.step() == StepOutcome::Idle {
            unreachable!("closed loop keeps the simulator busy");
        }
        sim.drain_completions_into(&mut completions);
        for _ in completions.drain(..) {
            let now = sim.now();
            let body = gen.next();
            sim.submit(body, now);
        }
    }
    let events = sim.events_processed();
    (events, t0.elapsed().as_secs_f64(), sim.into_trace())
}

fn figure_benches(c: &mut Criterion) {
    // threads: 0 = one worker per core, exactly like the figures binary.
    let opts = SweepOpts {
        threads: 0,
        ..Default::default()
    };
    c.bench_function("fig2_quick", |b| {
        b.iter(|| black_box(fig2_report(&quick_rc(), &opts).len()))
    });
    c.bench_function("rt_open_quick", |b| {
        b.iter(|| black_box(rt_open_report(&quick_rc_heavy(), &opts).len()))
    });
}

/// Per-shard wall-clock of one slicing mode over `plan`, each shard run
/// serially in turn — the single-process stand-in for "one host per
/// shard". Returns `(wall seconds per shard, per-cell timings)`.
fn measure_shards(
    plan: &SweepPlan,
    of: usize,
    balance: BalanceMode,
    model: &Arc<CostModel>,
) -> (Vec<f64>, Vec<CellTiming>) {
    let tasks = plan.tasks();
    let mut walls = Vec::with_capacity(of);
    let mut cells = Vec::new();
    for index in 0..of {
        let executor = SweepExecutor::serial()
            .with_balance(balance)
            .with_cost_model(Arc::clone(model));
        let t0 = Instant::now();
        let shard = executor.run_shard(plan, index, of);
        walls.push(t0.elapsed().as_secs_f64());
        for &(t, secs) in &shard.timings {
            let scenario = &plan.scenarios[tasks[t].0];
            cells.push(CellTiming {
                bucket: CostModel::bucket(scenario),
                units: CostModel::units(scenario),
                secs,
            });
        }
    }
    (walls, cells)
}

/// Max/min shard wall-clock — 1.0 is perfect balance; the slowest shard
/// gates a multi-host run, so this is the number balancing must shrink.
fn imbalance(walls: &[f64]) -> f64 {
    let max = walls.iter().cloned().fold(f64::MIN, f64::max);
    let min = walls.iter().cloned().fold(f64::MAX, f64::min);
    max / min.max(1e-9)
}

fn json_escape_free(name: &str) -> String {
    // Bench labels are ASCII identifiers; strip anything that would need
    // JSON escaping rather than implementing an escaper for no caller.
    name.chars()
        .filter(|c| c.is_ascii() && *c != '"' && *c != '\\')
        .collect()
}

fn json_shard_mode(walls: &[f64]) -> String {
    let list: Vec<String> = walls.iter().map(|w| format!("{w:.4}")).collect();
    format!(
        "{{\"imbalance\": {:.4}, \"wall_secs\": [{}]}}",
        imbalance(walls),
        list.join(", ")
    )
}

fn main() {
    let mut c = Criterion::default();
    figure_benches(&mut c);
    let (events, wall, _) = measure_events_per_sec(NoopTrace);
    let events_per_sec = events as f64 / wall;
    println!(
        "{:<40} {events} events in {wall:.3} s  ({:.0} events/s)",
        "raw_sim/events", events_per_sec
    );
    // The same loop with a CountingSink attached: the gap between the
    // two rates is the real cost of enabling tracing, and CI gates only
    // the disabled-path rate (the sink-attached rate is informational).
    let (traced_events, traced_wall, sink) = measure_events_per_sec(CountingSink::default());
    let traced_events_per_sec = traced_events as f64 / traced_wall;
    println!(
        "{:<40} {traced_events} events in {traced_wall:.3} s  ({:.0} events/s, {} trace records)",
        "raw_sim/events_traced", traced_events_per_sec, sink.total
    );

    // Shard-balance experiment on the heterogeneous fig2 + rt_open quick
    // grid (browsing cells run 5× the transactions of inventory cells;
    // open-load cells pay a capacity run): static striding vs
    // cost-balanced LPT slices, the latter calibrated from the stride
    // pass's own per-cell timings — exactly the `--timings`/`--calibrate`
    // feedback loop.
    const SHARDS: usize = 6;
    let mut scenarios = fig2_scenarios(&quick_rc());
    scenarios.extend(rt_open_scenarios(&quick_rc_heavy()));
    let plan = SweepPlan::new(scenarios);
    let structural = Arc::new(CostModel::structural());
    let (stride_walls, cells) = measure_shards(&plan, SHARDS, BalanceMode::Stride, &structural);
    let calibrated = Arc::new(CostModel::calibrated(&cells));
    let (cost_walls, _) = measure_shards(&plan, SHARDS, BalanceMode::Cost, &calibrated);
    println!(
        "{:<40} stride {:.2}x  cost-balanced {:.2}x  ({} cells over {SHARDS} shards)",
        "shard_balance/imbalance",
        imbalance(&stride_walls),
        imbalance(&cost_walls),
        plan.task_count(),
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"xsched-hotpath-v2\",\n  \"figures\": [\n");
    let records = c.records();
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_secs_mean\": {:.6}, \"wall_secs_min\": {:.6}, \"iters\": {}}}{}\n",
            json_escape_free(&r.name),
            r.mean_secs,
            r.min_secs,
            r.iters,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"events\": {{\"count\": {events}, \"wall_secs\": {wall:.6}, \"events_per_sec\": {events_per_sec:.1}, \"traced_events_per_sec\": {traced_events_per_sec:.1}, \"trace_records\": {}}},\n",
        sink.total
    ));
    json.push_str(&format!(
        "  \"shard_balance\": {{\n    \"shards\": {SHARDS},\n    \"tasks\": {},\n    \"stride\": {},\n    \"cost\": {},\n    \"improvement\": {:.4}\n  }},\n",
        plan.task_count(),
        json_shard_mode(&stride_walls),
        json_shard_mode(&cost_walls),
        imbalance(&stride_walls) / imbalance(&cost_walls),
    ));
    json.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {}{}\n",
            encode_timing_cell(cell),
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    // Default to the workspace root (cargo runs benches with the package
    // directory as cwd), where the committed baseline lives.
    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json").into()
    });
    let mut f = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create bench baseline {path}: {e}"));
    f.write_all(json.as_bytes()).expect("write bench baseline");
    println!("wrote {path}");
}
