//! Hot-path baseline benchmark: `figures --quick`-scale sweeps through
//! the sweep executor, timed by the vendored criterion harness, plus a
//! raw simulator events/second measurement — written out as
//! machine-readable `BENCH_hotpath.json` so CI can archive the repo's
//! perf trajectory run over run.
//!
//! ```text
//! cargo bench -p xsched-bench --bench hotpath
//! BENCH_JSON_PATH=/tmp/b.json cargo bench -p xsched-bench --bench hotpath
//! ```
//!
//! The JSON carries one entry per figure (mean/min wall seconds per full
//! sweep) and an `events` block with the raw event-loop rate. Figures run
//! through the same `SweepOpts`/`SweepExecutor` path the `figures` binary
//! uses, so these numbers track exactly what an operator waits on.

use criterion::{black_box, Criterion};
use std::io::Write as _;
use std::time::Instant;
use xsched_bench::{fig2_report, quick_rc, quick_rc_heavy, rt_open_report, SweepOpts};
use xsched_dbms::{DbmsSim, StepOutcome};
use xsched_workload::{setup, TxnGen};

/// Raw event-loop rate: a saturated closed system on setup 1 driven
/// straight against the simulator (no external scheduler), measured over
/// a fixed number of processed events.
fn measure_events_per_sec() -> (u64, f64) {
    const TARGET_EVENTS: u64 = 400_000;
    const CLIENTS: usize = 16;
    let s = setup(1);
    let mut sim = DbmsSim::new(s.hw.clone(), s.cfg.clone(), 7);
    let mut gen = TxnGen::new(s.workload.clone(), 7);
    for _ in 0..CLIENTS {
        let body = gen.next();
        sim.submit(body, 0.0);
    }
    let mut completions = Vec::new();
    let t0 = Instant::now();
    while sim.events_processed() < TARGET_EVENTS {
        if sim.step() == StepOutcome::Idle {
            unreachable!("closed loop keeps the simulator busy");
        }
        sim.drain_completions_into(&mut completions);
        for _ in completions.drain(..) {
            let now = sim.now();
            let body = gen.next();
            sim.submit(body, now);
        }
    }
    (sim.events_processed(), t0.elapsed().as_secs_f64())
}

fn figure_benches(c: &mut Criterion) {
    // threads: 0 = one worker per core, exactly like the figures binary.
    let opts = SweepOpts {
        threads: 0,
        ..Default::default()
    };
    c.bench_function("fig2_quick", |b| {
        b.iter(|| black_box(fig2_report(&quick_rc(), &opts).len()))
    });
    c.bench_function("rt_open_quick", |b| {
        b.iter(|| black_box(rt_open_report(&quick_rc_heavy(), &opts).len()))
    });
}

fn json_escape_free(name: &str) -> String {
    // Bench labels are ASCII identifiers; strip anything that would need
    // JSON escaping rather than implementing an escaper for no caller.
    name.chars()
        .filter(|c| c.is_ascii() && *c != '"' && *c != '\\')
        .collect()
}

fn main() {
    let mut c = Criterion::default();
    figure_benches(&mut c);
    let (events, wall) = measure_events_per_sec();
    let events_per_sec = events as f64 / wall;
    println!(
        "{:<40} {events} events in {wall:.3} s  ({:.0} events/s)",
        "raw_sim/events", events_per_sec
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"xsched-hotpath-v1\",\n  \"figures\": [\n");
    let records = c.records();
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_secs_mean\": {:.6}, \"wall_secs_min\": {:.6}, \"iters\": {}}}{}\n",
            json_escape_free(&r.name),
            r.mean_secs,
            r.min_secs,
            r.iters,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"events\": {{\"count\": {events}, \"wall_secs\": {wall:.6}, \"events_per_sec\": {events_per_sec:.1}}}\n"
    ));
    json.push_str("}\n");

    let path =
        std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "BENCH_hotpath.json".to_string());
    let mut f = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create bench baseline {path}: {e}"));
    f.write_all(json.as_bytes()).expect("write bench baseline");
    println!("wrote {path}");
}
