//! Hot-path baseline benchmark: `figures --quick`-scale sweeps through
//! the sweep executor, timed by the vendored criterion harness, plus a
//! raw simulator events/second measurement and a shard-balance
//! experiment — written out as machine-readable `BENCH_hotpath.json` so
//! CI can archive the repo's perf trajectory run over run (and fail on
//! events/sec regressions against the committed baseline).
//!
//! ```text
//! cargo bench -p xsched-bench --bench hotpath
//! BENCH_JSON_PATH=/tmp/b.json cargo bench -p xsched-bench --bench hotpath
//! ```
//!
//! The JSON carries one entry per figure (mean/min wall seconds per full
//! sweep), an `events` block with the raw event-loop rate, a `dispatch`
//! block with the batched-dispatch ceiling (pop_run_into + arena
//! handles, no DBMS model), a `saturation_grid` block streaming a
//! 120-cell open-load grid through `run_fold` with its peak-RSS
//! high-water mark, a `queue` array with heap-only push/pop rates at 1M
//! and 10M pending events, a `cells` array with per-cell wall-clock over
//! the heterogeneous fig2 + rt_open grid (capacity seconds split into
//! `ref/` buckets), and a `shard_balance` block comparing static
//! striding against cost-balanced (LPT) slicing on that grid: per-shard
//! wall-clock and the max/min imbalance ratio for both modes. Figures
//! run through the same `SweepOpts`/`SweepExecutor` path the `figures`
//! binary uses, so these numbers track exactly what an operator waits
//! on.

use criterion::{black_box, Criterion};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;
use xsched_bench::{
    fig2_report, fig2_scenarios, quick_rc, quick_rc_heavy, rt_open_report, rt_open_scenarios,
    SweepOpts,
};
use xsched_core::cost::encode_timing_cell;
use xsched_core::{
    ArrivalSpec, BalanceMode, CellTiming, CostModel, ExecSpec, MeasurementCache, MplSpec,
    PolicyKind, RunConfig, Scenario, ScenarioOutcome, SweepExecutor, SweepPlan, TaskOutcome,
};
use xsched_dbms::{CountingSink, DbmsSim, NoopTrace, StepOutcome, TraceSink};
use xsched_sim::{EventQueue, SimTime};
use xsched_workload::{setup, TxnGen};

/// Raw event-loop rate: a saturated closed system on setup 1 driven
/// straight against the simulator (no external scheduler), measured over
/// a fixed number of processed events. Generic over the trace sink so
/// the same loop measures both the disabled path (`NoopTrace`, which
/// must compile away) and an attached `CountingSink`.
fn measure_events_per_sec<T: TraceSink>(trace: T) -> (u64, f64, T) {
    const TARGET_EVENTS: u64 = 400_000;
    const CLIENTS: usize = 16;
    let s = setup(1);
    let mut sim = DbmsSim::with_trace(s.hw.clone(), s.cfg.clone(), 7, trace);
    let mut gen = TxnGen::new(s.workload.clone(), 7);
    for _ in 0..CLIENTS {
        let body = gen.next();
        sim.submit(body, 0.0);
    }
    let mut completions = Vec::new();
    let t0 = Instant::now();
    while sim.events_processed() < TARGET_EVENTS {
        if sim.step() == StepOutcome::Idle {
            unreachable!("closed loop keeps the simulator busy");
        }
        sim.drain_completions_into(&mut completions);
        for _ in completions.drain(..) {
            let now = sim.now();
            let body = gen.next();
            sim.submit(body, now);
        }
    }
    let events = sim.events_processed();
    (events, t0.elapsed().as_secs_f64(), sim.into_trace())
}

/// One arena slot of the batched-dispatch loop: the payload lives here,
/// the heap carries only a `u32` handle — the layout the DBMS simulator's
/// event arena uses, reduced to its essentials.
struct Slot {
    kind: u32,
    data: u64,
}

/// Raw batched-dispatch ceiling: an `EventQueue<u32>` over an arena of
/// `RESIDENT` payload slots, timestamps quantized to a tick grid so
/// maximal same-time runs drain through [`EventQueue::pop_run_into`] and
/// dispatch through one tight match loop. This is the upper bound the
/// batching + arena redesign buys before any DBMS model cost — the
/// number the "events barrier" CI gate tracks alongside the full
/// simulator rate. Returns `(events, wall seconds, runs drained)`.
fn measure_batched_dispatch() -> (u64, f64, u64) {
    const TARGET_EVENTS: u64 = 10_000_000;
    const RESIDENT: usize = 256;
    const TICK: u64 = 1_000; // nanos between adjacent grid points
    const LCG_MUL: u64 = 6364136223846793005;
    const LCG_ADD: u64 = 1442695040888963407;

    let mut q: EventQueue<u32> = EventQueue::with_capacity(RESIDENT + 8);
    let mut arena: Vec<Slot> = Vec::with_capacity(RESIDENT);
    let mut state: u64 = 0x9e3779b97f4a7c15;
    for i in 0..RESIDENT {
        state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
        arena.push(Slot {
            kind: (state >> 60) as u32 & 3,
            data: state,
        });
        q.schedule(
            SimTime::from_nanos(TICK * (1 + (state >> 32) % 4)),
            i as u32,
        );
    }
    let mut batch: Vec<u32> = Vec::with_capacity(RESIDENT);
    let mut processed: u64 = 0;
    let mut runs: u64 = 0;
    let mut checksum: u64 = 0;
    let t0 = Instant::now();
    while processed < TARGET_EVENTS {
        let Some(now) = q.pop_run_into(&mut batch) else {
            unreachable!("every dispatched event reschedules its slot");
        };
        let base = now.as_nanos();
        for &h in &batch {
            let p = &mut arena[h as usize];
            checksum = checksum.wrapping_add(match p.kind {
                0 => p.data,
                1 => p.data.rotate_left(7),
                2 => p.data ^ base,
                _ => p.data.wrapping_mul(3),
            });
            // Reschedule in place: same handle, successor payload, 1–4
            // ticks out — the grid keeps same-time runs long.
            p.data = p.data.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
            p.kind = (p.data >> 60) as u32 & 3;
            q.schedule(
                SimTime::from_nanos(base + TICK * (1 + (p.data >> 32) % 4)),
                h,
            );
        }
        processed += batch.len() as u64;
        runs += 1;
    }
    black_box(checksum);
    (processed, t0.elapsed().as_secs_f64(), runs)
}

/// Heap-only push/pop rates at a given resident population: fill the
/// queue with `pending` events at pseudo-random future timestamps, then
/// drain it dry. Isolates the 4-ary heap from everything else — at 10M
/// pending this resident set (~240 MB) dwarfs any cache level, so run it
/// *after* the RSS ceiling has been read.
fn measure_queue(pending: u64) -> (f64, f64) {
    let mut q: EventQueue<u32> = EventQueue::with_capacity(pending as usize);
    let mut state: u64 = 0x243f6a8885a308d3;
    let t0 = Instant::now();
    for i in 0..pending {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        q.schedule(SimTime::from_nanos(1 + (state >> 16)), i as u32);
    }
    let push_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut drained: u64 = 0;
    while let Some((_, e)) = q.pop() {
        black_box(e);
        drained += 1;
    }
    let pop_secs = t0.elapsed().as_secs_f64();
    assert_eq!(drained, pending);
    (
        pending as f64 / push_secs.max(1e-9),
        pending as f64 / pop_secs.max(1e-9),
    )
}

/// Peak resident set of this process so far, from `/proc/self/status`
/// `VmHWM` (Linux only; `None` elsewhere keeps the bench portable).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// The 100×-scale streaming case: a saturation grid of open-load cells
/// spanning offered loads from 5% to 124% of capacity, folded through
/// [`SweepExecutor::run_fold`] so memory stays O(cells in flight) instead
/// of O(grid). The fold keeps only scalar aggregates; `peak_parked` is
/// the largest out-of-order window the streaming consumer ever held.
struct GridStats {
    cells: usize,
    wall_secs: f64,
    peak_parked: usize,
    max_mean_rt: f64,
    total_commits: u64,
}

fn measure_saturation_grid() -> GridStats {
    const LOADS: usize = 120;
    let rc = RunConfig {
        warmup_txns: 10,
        measured_txns: 60,
        ..Default::default()
    };
    let scenarios: Vec<Scenario> = (0..LOADS)
        .map(|i| {
            let load = 0.05 + i as f64 * 0.01;
            Scenario {
                row: "saturation".to_string(),
                col: format!("load {load:.2}"),
                setup: setup(1),
                exec: ExecSpec::Run {
                    mpl: MplSpec::Fixed(8),
                    policy: PolicyKind::Fifo,
                    arrivals: ArrivalSpec::OpenLoad(load),
                },
                rc: rc.clone(),
            }
        })
        .collect();
    let plan = SweepPlan::new(scenarios);
    let executor = SweepExecutor::parallel(0).with_cache(MeasurementCache::shared());
    let t0 = Instant::now();
    let (acc, stats) = executor.run_fold(&plan, (0usize, 0.0f64, 0u64), |acc, _, outcome| {
        let TaskOutcome::Ok(ScenarioOutcome::Run(r)) = outcome else {
            unreachable!("the grid is all plain runs with no fault policy");
        };
        (acc.0 + 1, acc.1.max(r.mean_rt), acc.2 + r.metrics.commits)
    });
    GridStats {
        cells: acc.0,
        wall_secs: t0.elapsed().as_secs_f64(),
        peak_parked: stats.peak_parked,
        max_mean_rt: acc.1,
        total_commits: acc.2,
    }
}

fn figure_benches(c: &mut Criterion) {
    // threads: 0 = one worker per core, exactly like the figures binary.
    let opts = SweepOpts {
        threads: 0,
        ..Default::default()
    };
    c.bench_function("fig2_quick", |b| {
        b.iter(|| black_box(fig2_report(&quick_rc(), &opts).len()))
    });
    c.bench_function("rt_open_quick", |b| {
        b.iter(|| black_box(rt_open_report(&quick_rc_heavy(), &opts).len()))
    });
}

/// Per-shard wall-clock of one slicing mode over `plan`, each shard run
/// serially in turn — the single-process stand-in for "one host per
/// shard". Returns `(wall seconds per shard, per-cell timings)`.
fn measure_shards(
    plan: &SweepPlan,
    of: usize,
    balance: BalanceMode,
    model: &Arc<CostModel>,
) -> (Vec<f64>, Vec<CellTiming>) {
    let tasks = plan.tasks();
    let mut walls = Vec::with_capacity(of);
    let mut cells = Vec::new();
    for index in 0..of {
        let executor = SweepExecutor::serial()
            .with_balance(balance)
            .with_cost_model(Arc::clone(model));
        let t0 = Instant::now();
        let shard = executor.run_shard(plan, index, of);
        walls.push(t0.elapsed().as_secs_f64());
        // Reference (capacity) seconds split into their own `ref/` cells
        // — open-load cells that paid for a capacity run would otherwise
        // pollute the per-bucket averages the calibrated model fits.
        let refs: std::collections::HashMap<usize, f64> =
            shard.ref_timings.iter().copied().collect();
        let events: std::collections::HashMap<usize, u64> = shard.events.iter().copied().collect();
        let ref_events: std::collections::HashMap<usize, u64> =
            shard.ref_events.iter().copied().collect();
        for &(t, secs) in &shard.timings {
            let scenario = &plan.scenarios[tasks[t].0];
            let ref_secs = refs.get(&t).copied().unwrap_or(0.0);
            let ref_ev = ref_events.get(&t).copied().unwrap_or(0);
            let ev = events.get(&t).copied().unwrap_or(0).saturating_add(ref_ev);
            cells.extend(CostModel::timing_cells(
                scenario, secs, ref_secs, ev, ref_ev,
            ));
        }
    }
    (walls, cells)
}

/// Max/min shard wall-clock — 1.0 is perfect balance; the slowest shard
/// gates a multi-host run, so this is the number balancing must shrink.
fn imbalance(walls: &[f64]) -> f64 {
    let max = walls.iter().cloned().fold(f64::MIN, f64::max);
    let min = walls.iter().cloned().fold(f64::MAX, f64::min);
    max / min.max(1e-9)
}

fn json_escape_free(name: &str) -> String {
    // Bench labels are ASCII identifiers; strip anything that would need
    // JSON escaping rather than implementing an escaper for no caller.
    name.chars()
        .filter(|c| c.is_ascii() && *c != '"' && *c != '\\')
        .collect()
}

fn json_shard_mode(walls: &[f64]) -> String {
    let list: Vec<String> = walls.iter().map(|w| format!("{w:.4}")).collect();
    format!(
        "{{\"imbalance\": {:.4}, \"wall_secs\": [{}]}}",
        imbalance(walls),
        list.join(", ")
    )
}

fn main() {
    let mut c = Criterion::default();
    figure_benches(&mut c);
    let (events, wall, _) = measure_events_per_sec(NoopTrace);
    let events_per_sec = events as f64 / wall;
    println!(
        "{:<40} {events} events in {wall:.3} s  ({:.0} events/s)",
        "raw_sim/events", events_per_sec
    );
    // The same loop with a CountingSink attached: the gap between the
    // two rates is the real cost of enabling tracing, and CI gates only
    // the disabled-path rate (the sink-attached rate is informational).
    let (traced_events, traced_wall, sink) = measure_events_per_sec(CountingSink::default());
    let traced_events_per_sec = traced_events as f64 / traced_wall;
    println!(
        "{:<40} {traced_events} events in {traced_wall:.3} s  ({:.0} events/s, {} trace records)",
        "raw_sim/events_traced", traced_events_per_sec, sink.total
    );

    // The batched-dispatch ceiling: pop_run_into + arena handles + one
    // match loop, no DBMS model — what the hot-path redesign buys at the
    // dispatch layer itself.
    let (disp_events, disp_wall, disp_runs) = measure_batched_dispatch();
    let disp_rate = disp_events as f64 / disp_wall;
    let disp_run_len = disp_events as f64 / disp_runs as f64;
    println!(
        "{:<40} {disp_events} events in {disp_wall:.3} s  ({disp_rate:.0} events/s, mean run {disp_run_len:.1})",
        "raw_sim/batched_dispatch"
    );

    // The streaming saturation grid, then its memory high-water mark —
    // read *before* the queue micro-benches allocate their 10M-event
    // resident set, so the ceiling reflects the streaming executor.
    let grid = measure_saturation_grid();
    let grid_rss = peak_rss_bytes();
    println!(
        "{:<40} {} cells in {:.2} s  (peak parked {}, peak RSS {} MB)",
        "saturation_grid/stream",
        grid.cells,
        grid.wall_secs,
        grid.peak_parked,
        grid_rss.map_or(0, |b| b >> 20),
    );

    // Shard-balance experiment on the heterogeneous fig2 + rt_open quick
    // grid (browsing cells run 5× the transactions of inventory cells;
    // open-load cells pay a capacity run): static striding vs
    // cost-balanced LPT slices, the latter calibrated from the stride
    // pass's own per-cell timings — exactly the `--timings`/`--calibrate`
    // feedback loop.
    const SHARDS: usize = 6;
    let mut scenarios = fig2_scenarios(&quick_rc());
    scenarios.extend(rt_open_scenarios(&quick_rc_heavy()));
    let plan = SweepPlan::new(scenarios);
    let structural = Arc::new(CostModel::structural());
    let (stride_walls, cells) = measure_shards(&plan, SHARDS, BalanceMode::Stride, &structural);
    let calibrated = Arc::new(CostModel::calibrated(&cells));
    let (cost_walls, _) = measure_shards(&plan, SHARDS, BalanceMode::Cost, &calibrated);
    println!(
        "{:<40} stride {:.2}x  cost-balanced {:.2}x  ({} cells over {SHARDS} shards)",
        "shard_balance/imbalance",
        imbalance(&stride_walls),
        imbalance(&cost_walls),
        plan.task_count(),
    );

    // Heap-only push/pop rates, last: the 10M-pending resident set
    // (~240 MB) must not pollute the saturation grid's RSS ceiling.
    let queue_sizes: [u64; 2] = [1_000_000, 10_000_000];
    let queue_rates: Vec<(u64, f64, f64)> = queue_sizes
        .iter()
        .map(|&n| {
            let (push, pop) = measure_queue(n);
            println!(
                "{:<40} {n} pending: push {push:.0}/s  pop {pop:.0}/s",
                "event_queue/push_pop"
            );
            (n, push, pop)
        })
        .collect();

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"xsched-hotpath-v2\",\n  \"figures\": [\n");
    let records = c.records();
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_secs_mean\": {:.6}, \"wall_secs_min\": {:.6}, \"iters\": {}}}{}\n",
            json_escape_free(&r.name),
            r.mean_secs,
            r.min_secs,
            r.iters,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"events\": {{\"count\": {events}, \"wall_secs\": {wall:.6}, \"events_per_sec\": {events_per_sec:.1}, \"traced_events_per_sec\": {traced_events_per_sec:.1}, \"trace_records\": {}}},\n",
        sink.total
    ));
    // NOTE: the CI gate greps the *first* "events_per_sec" in this file —
    // the full-simulator rate above. The dispatch block deliberately
    // names its rate differently.
    json.push_str(&format!(
        "  \"dispatch\": {{\"count\": {disp_events}, \"wall_secs\": {disp_wall:.6}, \"dispatch_events_per_sec\": {disp_rate:.1}, \"mean_run_len\": {disp_run_len:.2}}},\n",
    ));
    json.push_str(&format!(
        "  \"saturation_grid\": {{\"cells\": {}, \"wall_secs\": {:.6}, \"peak_parked\": {}, \"peak_rss_bytes\": {}, \"max_mean_rt\": {:.6}, \"total_commits\": {}}},\n",
        grid.cells,
        grid.wall_secs,
        grid.peak_parked,
        grid_rss.map_or(0, |b| b),
        grid.max_mean_rt,
        grid.total_commits,
    ));
    json.push_str("  \"queue\": [\n");
    for (i, (n, push, pop)) in queue_rates.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"pending\": {n}, \"push_per_sec\": {push:.1}, \"pop_per_sec\": {pop:.1}}}{}\n",
            if i + 1 < queue_rates.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"shard_balance\": {{\n    \"shards\": {SHARDS},\n    \"tasks\": {},\n    \"stride\": {},\n    \"cost\": {},\n    \"improvement\": {:.4}\n  }},\n",
        plan.task_count(),
        json_shard_mode(&stride_walls),
        json_shard_mode(&cost_walls),
        imbalance(&stride_walls) / imbalance(&cost_walls),
    ));
    json.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {}{}\n",
            encode_timing_cell(cell),
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    // Default to the workspace root (cargo runs benches with the package
    // directory as cwd), where the committed baseline lives.
    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json").into()
    });
    let mut f = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create bench baseline {path}: {e}"));
    f.write_all(json.as_bytes()).expect("write bench baseline");
    println!("wrote {path}");
}
