//! Fig. 3 driver benchmark: I/O-bound simulation runs on 1 vs 4 disks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xsched_core::{Driver, PolicyKind, RunConfig};
use xsched_workload::{setup, ArrivalProcess};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_io_tput");
    g.sample_size(10);
    for (label, id) in [("1disk", 5u32), ("4disks", 8)] {
        g.bench_with_input(BenchmarkId::new(label, 10), &id, |b, &id| {
            let rc = RunConfig {
                warmup_txns: 50,
                measured_txns: 400,
                ..Default::default()
            };
            let d = Driver::new(setup(id)).with_config(rc);
            b.iter(|| {
                let r = d.run(10, PolicyKind::Fifo, &ArrivalProcess::saturated(100));
                assert!(r.throughput > 0.0);
                r.throughput
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
