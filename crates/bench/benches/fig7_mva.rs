//! Fig. 7 benchmark: exact MVA solves and MPL recommendations for the
//! balanced-disk model, up to 16 disks (the analysis the controller's
//! jump-start runs online).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xsched_queueing::{recommend, ClosedNetwork, ThroughputModel};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_mva");
    for disks in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("solve_series_1000", disks),
            &disks,
            |b, &d| {
                let net = ClosedNetwork::balanced(d, 1.0);
                b.iter(|| net.solve_series(1000).last().unwrap().throughput);
            },
        );
        g.bench_with_input(BenchmarkId::new("min_mpl_95", disks), &disks, |b, &d| {
            let model = ThroughputModel::balanced(d);
            b.iter(|| recommend::min_mpl_for_throughput(&model, 0.95));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
