//! Integration test of the full shard → encode → decode → merge pipeline
//! at the report level: a report rendered from merged shard payloads must
//! be byte-identical to the same report rendered by a normal run.

use std::sync::{Arc, Mutex};
use xsched_bench::{rt_open_report, MergeError, SweepMode, SweepOpts};
use xsched_core::shard::decode_payloads;
use xsched_core::RunConfig;

fn tiny_rc() -> RunConfig {
    RunConfig {
        warmup_txns: 20,
        measured_txns: 120,
        ..Default::default()
    }
}

#[test]
fn report_merged_from_shards_is_byte_identical_to_a_direct_run() {
    let rc = tiny_rc();
    let direct = rt_open_report(
        &rc,
        &SweepOpts {
            threads: 0,
            ..Default::default()
        },
    );

    // Simulate three independent shard processes, round-tripping each
    // payload through the wire format.
    let mut stream = String::new();
    for index in 0..3 {
        let sink = Arc::new(Mutex::new(Vec::new()));
        let opts = SweepOpts {
            threads: 2,
            mode: SweepMode::Shard {
                index,
                of: 3,
                sink: Arc::clone(&sink),
            },
            ..Default::default()
        };
        rt_open_report(&rc, &opts);
        for payload in sink.lock().unwrap().iter() {
            stream.push_str("# experiment rt_open\n");
            stream.push_str(payload);
        }
    }

    let pool = decode_payloads(&stream).expect("payloads decode");
    assert_eq!(pool.len(), 3, "one payload per shard");
    let merged = rt_open_report(
        &rc,
        &SweepOpts {
            mode: SweepMode::Merge {
                pool: Arc::new(pool),
            },
            ..Default::default()
        },
    );
    assert_eq!(direct, merged, "merged tables must be byte-identical");
}

#[test]
fn merge_with_missing_shard_raises_a_typed_user_error() {
    let rc = tiny_rc();
    let sink = Arc::new(Mutex::new(Vec::new()));
    rt_open_report(
        &rc,
        &SweepOpts {
            threads: 2,
            mode: SweepMode::Shard {
                index: 0,
                of: 2,
                sink: Arc::clone(&sink),
            },
            ..Default::default()
        },
    );
    let payload = sink.lock().unwrap().join("");
    let pool = decode_payloads(&payload).unwrap();
    let outcome = std::panic::catch_unwind(|| {
        rt_open_report(
            &rc,
            &SweepOpts {
                mode: SweepMode::Merge {
                    pool: Arc::new(pool),
                },
                ..Default::default()
            },
        )
    });
    // The panic payload is the typed MergeError the figures binary
    // downcasts — the user-error contract, not a string-prefix match.
    let err = outcome.expect_err("incomplete partition must fail");
    let merge = err
        .downcast_ref::<MergeError>()
        .expect("payload is a typed MergeError");
    assert!(
        merge.0.contains("cannot merge shard payloads"),
        "{}",
        merge.0
    );
    assert!(merge.0.contains("incomplete partition"), "{}", merge.0);
}
