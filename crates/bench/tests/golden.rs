//! Golden determinism tests for the `figures` pivot tables.
//!
//! fig2 (simulation-backed, `--quick` scale) and fig7 (analytic) are
//! rendered to strings and compared byte-for-byte against checked-in
//! snapshots. Anything that moves these tables — simulator behaviour,
//! CI/table formatting, column layout — now fails loudly and must be a
//! deliberate snapshot update:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p xsched-bench --test golden
//! ```
//!
//! The snapshots double as cross-machine determinism evidence: the same
//! commit must print the same bytes on every host and thread count.

use xsched_bench::{
    chaos_report, chaos_specs, fig2_report, fig7_report, quick_rc, quick_rc_heavy, SweepOpts,
};
use xsched_core::{Driver, Targets};

fn check(name: &str, rendered: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {path:?}: {e}"));
    assert_eq!(
        rendered, want,
        "rendered {name} drifted from its golden snapshot; if the change \
         is deliberate, regenerate with UPDATE_GOLDEN=1"
    );
}

/// fig2 in `--quick` mode (the exact configuration the CLI uses) must
/// render byte-identically, regardless of worker thread count.
#[test]
fn fig2_quick_table_matches_golden_snapshot() {
    let opts = SweepOpts {
        threads: 0,
        ..Default::default()
    };
    let report = fig2_report(&quick_rc(), &opts);
    check("fig2_quick.txt", &report);
    // The determinism claim itself: another pass under a different
    // thread count prints the same bytes.
    let serial = SweepOpts {
        threads: 1,
        ..Default::default()
    };
    assert_eq!(report, fig2_report(&quick_rc(), &serial));
}

/// fig7 is analytic (MVA): the snapshot pins number formatting and the
/// 80%/95% MPL loci.
#[test]
fn fig7_table_matches_golden_snapshot() {
    check("fig7.txt", &fig7_report());
}

/// The controller telemetry series — per-tick MPL setpoint, queue
/// length, throughput, and response-time percentiles — must be
/// bit-stable: the snapshot pins the exact float bits of every tick of
/// a `--quick`-scale 20%-target session on setup 1.
#[test]
fn controller_series_quick_matches_golden_snapshot() {
    let d = Driver::new(xsched_workload::setup(1)).with_config(quick_rc());
    let (_, series) = d.run_controller_with_series(Targets::twenty_percent(), None);
    assert!(!series.is_empty(), "a converging session emits ticks");
    check("controller_series_quick.txt", &series.encode_text());
    // Determinism claim: a second session reproduces the same bytes.
    let (_, again) = d.run_controller_with_series(Targets::twenty_percent(), None);
    assert_eq!(series.encode_text(), again.encode_text());
}

/// The chaos robustness figure in `--quick` mode must render
/// byte-identically at any worker thread count — the fault injectors
/// and traffic shapers draw from derived RNG streams, so chaos cells
/// are as deterministic as plain ones.
#[test]
fn chaos_quick_table_matches_golden_snapshot() {
    let opts = SweepOpts {
        threads: 0,
        ..Default::default()
    };
    let report = chaos_report(&quick_rc_heavy(), &opts);
    check("chaos_quick.txt", &report);
    let serial = SweepOpts {
        threads: 1,
        ..Default::default()
    };
    assert_eq!(report, chaos_report(&quick_rc_heavy(), &serial));
}

/// The per-window telemetry of one chaos session (the stall row of the
/// quick figure) pinned to the bit: every reaction's time, setpoint,
/// queue length, throughput, and response-time percentiles.
#[test]
fn chaos_series_quick_matches_golden_snapshot() {
    let specs = chaos_specs(&quick_rc_heavy());
    let (label, spec) = &specs[0];
    assert_eq!(*label, "stall");
    let d = Driver::new(xsched_workload::setup(1)).with_config(quick_rc_heavy());
    let (out, series) = d.run_chaos_with_series(spec, Targets::twenty_percent(), None);
    assert!(out.post_onset_windows > 0, "onset inside the session");
    assert!(!series.is_empty(), "a chaos session emits ticks");
    check("chaos_series_quick.txt", &series.encode_text());
    let (_, again) = d.run_chaos_with_series(spec, Targets::twenty_percent(), None);
    assert_eq!(series.encode_text(), again.encode_text());
}
