//! One function per table/figure of Schroeder et al. (ICDE 2006).
//!
//! Every simulation-backed experiment builds a [`SweepPlan`] — a list of
//! [`Scenario`] literals — and renders it with the shared
//! [`pivot_table`](crate::table::pivot_table) builder, so all figures share
//! one execution path: multi-core fan-out over `(scenario, seed)` tasks
//! and 95% confidence intervals whenever more than one replication seed is
//! configured (see [`SweepOpts`]). Analytic experiments (Figs. 7, 9, 10)
//! take no configuration — they are exact.

use crate::fmt::{f0, f1, f2, f3, ms, table};
use crate::table::{pivot_table, Col};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xsched_core::{
    run_worker, ArrivalSpec, BalanceMode, CellTiming, CheckpointJournal, CoordConfig, CoordServer,
    Coordinator, CostModel, ExecSpec, FaultPolicy, JournalReplay, MeasurementCache, MplSpec,
    PolicyKind, RunConfig, Scenario, ScenarioResult, ShardResult, SweepExecutor, SweepObs,
    SweepPlan, Targets, Transport, WorkerConfig, WorkerError,
};
use xsched_dbms::{CpuPolicy, FaultSpec, LockPriorityPolicy, SpikeSpec, StallSpec};
use xsched_queueing::{flex::FlexServer, mg1, recommend, ClosedNetwork, ThroughputModel, H2};
use xsched_sim::Dist;
use xsched_workload::{
    labeled_setups, setup, setup_ids, setups, trace, workloads, BurstSpec, ChaosSpec, FlashSpec,
    Setup,
};

/// The MPL grid used by the throughput figures.
pub const MPL_GRID: [u32; 10] = [1, 2, 3, 5, 7, 10, 15, 20, 30, 40];

/// The `figures --quick` run length. One definition shared by the binary
/// and the golden determinism tests, so the snapshots pin the CLI's
/// actual output.
pub fn quick_rc() -> RunConfig {
    RunConfig {
        warmup_txns: 100,
        measured_txns: 800,
        ..Default::default()
    }
}

/// Full-length run configuration of the `figures` binary.
pub fn full_rc() -> RunConfig {
    RunConfig {
        warmup_txns: 500,
        measured_txns: 4_000,
        ..Default::default()
    }
}

/// `--quick` configuration for experiments that run many inner
/// simulations per scenario (controller sessions, MPL searches).
pub fn quick_rc_heavy() -> RunConfig {
    RunConfig {
        warmup_txns: 100,
        measured_txns: 600,
        ..Default::default()
    }
}

/// Full-length configuration for the heavy (multi-simulation) experiments.
pub fn full_rc_heavy() -> RunConfig {
    RunConfig {
        warmup_txns: 300,
        measured_txns: 2_000,
        ..Default::default()
    }
}

/// Raised through `std::panic::panic_any` when merge-mode shard
/// validation fails — a *user-input* problem (wrong files, mixed flags),
/// not a bug. The `figures` binary downcasts the panic payload to this
/// type to report a clean one-line error, so the contract is typed
/// rather than a string-prefix match.
#[derive(Debug)]
pub struct MergeError(pub String);

/// How a report's sweep executes: in full, as one shard of a split run,
/// by merging previously recorded shard payloads, or coordinated across
/// hosts (serving task leases, or working a coordinator's queue).
#[derive(Clone, Default)]
pub enum SweepMode {
    /// Run every task in this process (the default).
    #[default]
    Run,
    /// Run only the strided task slice `index` of `of` and append the
    /// encoded [`ShardResult`] to `sink`; the returned results aggregate
    /// just this shard's share (cells the shard skipped stay empty).
    Shard {
        /// 0-based shard index.
        index: usize,
        /// Total shard count.
        of: usize,
        /// Collects one encoded payload per executed sweep.
        sink: Arc<Mutex<Vec<String>>>,
    },
    /// Run nothing: reassemble each sweep from decoded shard payloads,
    /// matched to the plan by fingerprint. Panics if the pool does not
    /// exactly partition the plan — shards must come from the same
    /// figures flags (`--quick`, `--seeds`, ...).
    Merge {
        /// Decoded payloads from every shard file.
        pool: Arc<Vec<ShardResult>>,
    },
    /// Serve each sweep as a task-queue coordinator: hand out leases to
    /// `--worker` clients over TCP, record (and optionally journal)
    /// their outcomes, reassign expired leases, and return the merged
    /// results — byte-identical to a direct run.
    Serve {
        /// The bound TCP listener, shared across the run's sweeps.
        server: Arc<CoordServer>,
        /// Sweep epoch counter; each executed sweep takes the next one,
        /// so coordinator and workers (running the same experiment
        /// flags) stay aligned sweep for sweep.
        epoch: Arc<AtomicU64>,
        /// Lease duration granted per claim, seconds.
        lease_secs: f64,
        /// Seconds to keep answering after a sweep completes, so slow
        /// workers can still poll their `done`.
        linger_secs: f64,
    },
    /// Work a coordinator's queue: claim task leases over `transport`,
    /// execute them through the normal executor, stream outcomes back.
    /// Returns empty results (the coordinator renders the tables) —
    /// unless the coordinator is unreachable from the start, in which
    /// case the sweep degrades to a full local run and `degraded` is
    /// raised so the caller knows the results are real.
    Worker {
        /// Round-trip channel to the coordinator (possibly fault-injected).
        transport: Arc<dyn Transport>,
        /// Sweep epoch counter mirroring the coordinator's.
        epoch: Arc<AtomicU64>,
        /// Worker identity and retry/heartbeat tuning.
        config: Arc<WorkerConfig>,
        /// Set when any sweep fell back to local execution.
        degraded: Arc<AtomicBool>,
    },
}

impl std::fmt::Debug for SweepMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepMode::Run => f.debug_struct("Run").finish(),
            SweepMode::Shard { index, of, .. } => f
                .debug_struct("Shard")
                .field("index", index)
                .field("of", of)
                .finish_non_exhaustive(),
            SweepMode::Merge { pool } => {
                f.debug_struct("Merge").field("pool", &pool.len()).finish()
            }
            SweepMode::Serve {
                epoch, lease_secs, ..
            } => f
                .debug_struct("Serve")
                .field("epoch", epoch)
                .field("lease_secs", lease_secs)
                .finish_non_exhaustive(),
            SweepMode::Worker { epoch, config, .. } => f
                .debug_struct("Worker")
                .field("epoch", epoch)
                .field("config", config)
                .finish_non_exhaustive(),
        }
    }
}

/// How a report executes its sweep: replication seeds, worker threads,
/// the execution mode (full, sharded, or merge), shard balancing, and
/// optional per-cell timing telemetry.
#[derive(Debug, Clone, Default)]
pub struct SweepOpts {
    /// Replication seeds; every scenario runs once per seed and cells
    /// print `mean ±hw` when there are at least two. **Empty** (the
    /// default) runs each scenario once under the caller's
    /// `RunConfig::seed`, so reports stay faithful to a custom seed.
    pub seeds: Vec<u64>,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Full, sharded, or merge execution.
    pub mode: SweepMode,
    /// How `Shard` mode slices task grids (striding or cost-balanced
    /// LPT). Every shard of one sweep must use the same mode and model.
    pub balance: BalanceMode,
    /// Cost model for balancing and longest-first task claiming; `None`
    /// uses the structural model.
    pub cost_model: Option<Arc<CostModel>>,
    /// When set, per-cell wall-clock telemetry from every executed sweep
    /// is appended here ([`CellTiming`]: bucket, structural units,
    /// seconds) — the feed for `figures --timings` and the next run's
    /// calibration.
    pub timings: Option<Arc<Mutex<Vec<CellTiming>>>>,
    /// When set, every executed sweep records execution telemetry
    /// (worker/shard progress, cache hits/misses, task-time histogram,
    /// controller series) into this shared sink — the feed for
    /// `figures --metrics`. Observational only: result bytes never
    /// change.
    pub obs: Option<Arc<SweepObs>>,
    /// Print a per-task completion ticker to stderr while sweeps run.
    pub progress: bool,
    /// Split each splittable cell into this many independently-seeded
    /// sub-runs on the worker pool (`0`/`1` = run cells whole — the
    /// default, whose output bytes the goldens pin). Participates in the
    /// plan fingerprint, so shards and merges must agree on it.
    pub subruns: u32,
    /// Fault tolerance for every executed sweep: panic isolation, retry,
    /// watchdog, keep-going degradation, fault injection. The default
    /// policy is inactive — exactly today's fail-fast behavior on the
    /// executor's unguarded hot path.
    pub faults: FaultPolicy,
    /// Checkpoint journal every executed sweep appends completed task
    /// outcomes to (kill-safe; see `figures --checkpoint`).
    pub journal: Option<Arc<CheckpointJournal>>,
    /// Journal replay to resume from: journaled tasks are skipped and
    /// their outcomes spliced in bit-identically.
    pub resume: Option<Arc<JournalReplay>>,
}

impl SweepOpts {
    /// Execute `scenarios` under these options.
    pub fn run(&self, mut scenarios: Vec<Scenario>) -> Vec<ScenarioResult> {
        if self.subruns >= 2 {
            for s in &mut scenarios {
                s.rc.subruns = self.subruns;
            }
        }
        let plan = SweepPlan::new(scenarios).with_seeds(self.seeds.clone());
        let mut executor = SweepExecutor::parallel(self.threads)
            .with_balance(self.balance)
            .with_progress(self.progress)
            .with_faults(self.faults.clone());
        if let Some(model) = &self.cost_model {
            executor = executor.with_cost_model(Arc::clone(model));
        }
        if let Some(obs) = &self.obs {
            executor = executor.with_obs(Arc::clone(obs));
        }
        // Durability belongs to whichever side records outcomes: the
        // executor in local/sharded runs, the Coordinator in Serve mode
        // (workers never journal — a worker's journal would hold a
        // meaningless subset).
        if matches!(self.mode, SweepMode::Run | SweepMode::Shard { .. }) {
            if let Some(journal) = &self.journal {
                executor = executor.with_journal(Arc::clone(journal));
            }
            if let Some(replay) = &self.resume {
                executor = executor.with_resume(Arc::clone(replay));
            }
        }
        match &self.mode {
            SweepMode::Run => {
                // The degenerate one-shard run, so the telemetry path is
                // the same as a split run's; assembly is unchanged.
                let shard = executor.run_shard(&plan, 0, 1);
                self.record_timings(&plan, &shard);
                shard.partial_results(&plan)
            }
            SweepMode::Shard { index, of, sink } => {
                let shard = executor.run_shard(&plan, *index, *of);
                self.record_timings(&plan, &shard);
                sink.lock().unwrap().push(shard.encode());
                shard.partial_results(&plan)
            }
            SweepMode::Merge { pool } => {
                let fp = plan.fingerprint();
                let mine = pool.iter().filter(|s| s.plan_fingerprint == fp);
                match ShardResult::merge(&plan, mine) {
                    Ok(results) => results,
                    Err(e) => std::panic::panic_any(MergeError(format!(
                        "cannot merge shard payloads for this sweep: {e}\n\
                         (were all shards produced by the same figures \
                         flags — --quick, --seeds, --replications?)"
                    ))),
                }
            }
            SweepMode::Serve {
                server,
                epoch,
                lease_secs,
                linger_secs,
            } => {
                let ep = epoch.fetch_add(1, Ordering::SeqCst);
                let mut coord = Coordinator::new(
                    ep,
                    &plan,
                    CoordConfig {
                        lease_secs: *lease_secs,
                    },
                );
                if let Some(journal) = &self.journal {
                    coord = coord.with_journal(Arc::clone(journal));
                }
                if let Some(replay) = &self.resume {
                    coord = coord.with_resume(replay);
                }
                if let Some(obs) = &self.obs {
                    coord = coord.with_obs(Arc::clone(obs));
                }
                eprintln!(
                    "[coord] sweep {ep}: serving {} task(s), lease {lease_secs}s",
                    coord.remaining()
                );
                server
                    .serve_sweep(&mut coord, *linger_secs)
                    .unwrap_or_else(|e| panic!("coordinator server failed: {e}"));
                let shard = coord.into_shard_result();
                // The coordinator refuses to finish below full coverage,
                // so this merge can only fail on a genuine bug.
                ShardResult::merge(&plan, [&shard])
                    .unwrap_or_else(|e| panic!("coordinated sweep failed to merge: {e}"))
            }
            SweepMode::Worker {
                transport,
                epoch,
                config,
                degraded,
            } => {
                let ep = epoch.fetch_add(1, Ordering::SeqCst);
                // One shared measurement cache across the per-task
                // executor calls, so this worker pays for each capacity
                // reference at most once per sweep.
                let executor = executor.with_cache(MeasurementCache::shared());
                match run_worker(&plan, ep, &executor, transport.as_ref(), config) {
                    Ok(summary) => {
                        eprintln!(
                            "[worker {}] sweep {ep}: executed {} task(s), {} reconnect(s)",
                            config.id, summary.tasks_executed, summary.reconnects
                        );
                        // The coordinator holds the outcomes and renders
                        // the tables; this side has nothing to show.
                        ShardResult {
                            shard: 0,
                            of: 1,
                            plan_fingerprint: plan.fingerprint(),
                            task_count: plan.task_count(),
                            entries: Vec::new(),
                            failures: Vec::new(),
                            timings: Vec::new(),
                            ref_timings: Vec::new(),
                            events: Vec::new(),
                            ref_events: Vec::new(),
                        }
                        .partial_results(&plan)
                    }
                    Err(WorkerError::Unreachable(e)) => {
                        degraded.store(true, Ordering::SeqCst);
                        eprintln!(
                            "[worker {}] sweep {ep}: coordinator unreachable ({e}); \
                             degrading to a local run",
                            config.id
                        );
                        let shard = executor.run_shard(&plan, 0, 1);
                        self.record_timings(&plan, &shard);
                        shard.partial_results(&plan)
                    }
                    Err(e) => panic!("worker {} failed on sweep {ep}: {e}", config.id),
                }
            }
        }
    }

    /// Append this shard's per-task wall-clock telemetry to the timing
    /// sink, tagged with each cell's cost bucket and structural units so
    /// [`CostModel::calibrated`] can fit seconds-per-unit from it.
    fn record_timings(&self, plan: &SweepPlan, shard: &ShardResult) {
        let Some(sink) = &self.timings else { return };
        let tasks = plan.tasks();
        let refs: std::collections::HashMap<usize, f64> =
            shard.ref_timings.iter().copied().collect();
        let events: std::collections::HashMap<usize, u64> = shard.events.iter().copied().collect();
        let ref_events: std::collections::HashMap<usize, u64> =
            shard.ref_events.iter().copied().collect();
        let mut sink = sink.lock().unwrap();
        for &(t, secs) in &shard.timings {
            let scenario = &plan.scenarios[tasks[t].0];
            let ref_secs = refs.get(&t).copied().unwrap_or(0.0);
            // Cells that paid for a capacity run split into a `run/` cell
            // (their own cost) and a `ref/` cell (the reference seconds),
            // so `--calibrate` never averages the unlike costs. Shard
            // events are already net of the reference run, so re-add it
            // here: `timing_cells` subtracts it back out per cell.
            let ref_ev = ref_events.get(&t).copied().unwrap_or(0);
            let ev = events.get(&t).copied().unwrap_or(0).saturating_add(ref_ev);
            sink.extend(CostModel::timing_cells(
                scenario, secs, ref_secs, ev, ref_ev,
            ));
        }
    }
}

/// Heavy-tailed (C² ≈ 15) workloads need much longer measurement windows:
/// with completion-count windows the rare huge transactions accumulate
/// past the window's end and measured throughput is biased upward. Scale
/// the run length for the browsing setups so references are unbiased.
fn rc_for(id: u32, rc: &RunConfig) -> RunConfig {
    if setup(id).workload.name.contains("browsing") || setup(id).workload.name.contains("ordering")
    {
        RunConfig {
            warmup_txns: rc.warmup_txns * 3,
            measured_txns: rc.measured_txns * 5,
            min_warmup_time: 400.0,
            ..rc.clone()
        }
    } else {
        rc.clone()
    }
}

/// Table 1: the six workload definitions with their derived statistics.
pub fn table1_report() -> String {
    let rows: Vec<Vec<String>> = workloads()
        .iter()
        .map(|w| {
            let (mean_cached, c2_cached) = w.intrinsic_demand_stats(0.0);
            let (mean_io, _) = w.intrinsic_demand_stats(0.005);
            vec![
                w.name.to_string(),
                w.db_pages.to_string(),
                w.hot_items.to_string(),
                f1(w.mean_pages()),
                ms(w.mean_cpu()),
                ms(mean_cached),
                ms(mean_io),
                f1(c2_cached),
            ]
        })
        .collect();
    format!(
        "Table 1 — workloads (derived statistics)\n{}",
        table(
            &[
                "workload",
                "db pages",
                "hot items",
                "pages/txn",
                "cpu ms",
                "demand ms (cached)",
                "demand ms (uncached)",
                "C2",
            ],
            &rows,
        )
    )
}

/// Table 2: the 17 setups.
pub fn table2_report() -> String {
    let rows: Vec<Vec<String>> = setups()
        .iter()
        .map(|s| {
            vec![
                s.id.to_string(),
                s.workload.name.to_string(),
                s.hw.cpus.to_string(),
                s.hw.data_disks.to_string(),
                format!("{:?}", s.cfg.isolation),
                s.hw.bufferpool_pages.to_string(),
                s.clients.to_string(),
            ]
        })
        .collect();
    format!(
        "Table 2 — setups\n{}",
        table(
            &[
                "setup",
                "workload",
                "CPUs",
                "disks",
                "isolation",
                "pool pages",
                "clients"
            ],
            &rows,
        )
    )
}

/// Throughput-vs-MPL table for a set of setups (the engine behind
/// Figs. 2–5). Returns `(report, curves)` where `curves[i][j]` is the mean
/// throughput of setup `i` at `grid[j]`.
pub fn throughput_curves(
    labels: &[(&str, u32)],
    grid: &[u32],
    rc: &RunConfig,
    opts: &SweepOpts,
) -> (String, Vec<Vec<f64>>) {
    let results = opts.run(tput_scenarios(labels, grid, rc));

    let cols: Vec<Col> = grid
        .iter()
        .map(|m| Col::new(format!("MPL {m}"), "throughput", format!("MPL {m}"), f1))
        .collect();
    let report = pivot_table("curve", &results, &cols);

    // Result order is plan order: row-major over labels × grid.
    let curves = results
        .chunks(grid.len())
        .map(|row| row.iter().map(|r| r.mean("throughput")).collect())
        .collect();
    (report, curves)
}

/// The `(curve label, setup id)` rows of Fig. 2 — a deliberately
/// heterogeneous grid: the browsing setups run 5× the transactions of the
/// inventory ones (see [`rc_for`]), which is what makes it the
/// shard-balancing benchmark's test bed.
pub const FIG2_LABELS: [(&str, u32); 4] = [
    ("W_CPU-inventory 1 CPU", 1),
    ("W_CPU-inventory 2 CPUs", 2),
    ("W_CPU-browsing 1 CPU", 3),
    ("W_CPU-browsing 2 CPUs", 4),
];

/// The scenario grid behind [`fig2_report`] (labels × [`MPL_GRID`]).
pub fn fig2_scenarios(rc: &RunConfig) -> Vec<Scenario> {
    tput_scenarios(&FIG2_LABELS, &MPL_GRID, rc)
}

/// Scenario grid of a throughput-vs-MPL figure: labeled setups × MPL
/// grid, with per-setup run-length scaling ([`rc_for`]).
pub fn tput_scenarios(labels: &[(&str, u32)], grid: &[u32], rc: &RunConfig) -> Vec<Scenario> {
    labeled_setups(labels)
        .into_iter()
        .flat_map(|(label, s)| {
            let rc = rc_for(s.id, rc);
            grid.iter()
                .map(|&m| {
                    Scenario::tput(
                        format!("{label} (setup {})", s.id),
                        s.clone(),
                        m,
                        rc.clone(),
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Fig. 2: throughput vs. MPL for the CPU-bound workloads, 1 vs 2 CPUs.
pub fn fig2_report(rc: &RunConfig, opts: &SweepOpts) -> String {
    let (t, _) = throughput_curves(&FIG2_LABELS, &MPL_GRID, rc, opts);
    format!("Fig. 2 — effect of MPL on throughput, CPU-bound workloads\n{t}")
}

/// Fig. 3: throughput vs. MPL for the I/O-bound workloads, 1–4 disks.
pub fn fig3_report(rc: &RunConfig, opts: &SweepOpts) -> String {
    let (t, _) = throughput_curves(
        &[
            ("W_IO-inventory 1 disk", 5),
            ("W_IO-inventory 2 disks", 6),
            ("W_IO-inventory 3 disks", 7),
            ("W_IO-inventory 4 disks", 8),
            ("W_IO-browsing 1 disk", 9),
            ("W_IO-browsing 4 disks", 10),
        ],
        &MPL_GRID,
        rc,
        opts,
    );
    format!("Fig. 3 — effect of MPL on throughput, I/O-bound workloads\n{t}")
}

/// Fig. 4: throughput vs. MPL for the balanced CPU+I/O workload.
pub fn fig4_report(rc: &RunConfig, opts: &SweepOpts) -> String {
    let (t, _) = throughput_curves(
        &[
            ("W_CPU+IO-inventory 1 disk 1 CPU", 11),
            ("W_CPU+IO-inventory 4 disks 2 CPUs", 12),
        ],
        &MPL_GRID,
        rc,
        opts,
    );
    format!("Fig. 4 — effect of MPL on throughput, balanced workload\n{t}")
}

/// Fig. 5: throughput vs. MPL under heavy (RR) vs light (UR) locking.
pub fn fig5_report(rc: &RunConfig, opts: &SweepOpts) -> String {
    let (t, _) = throughput_curves(
        &[
            ("W_CPU-inventory RR", 1),
            ("W_CPU-inventory UR", 17),
            ("W_CPU-ordering 2cpu RR", 15),
            ("W_CPU-ordering 2cpu UR", 16),
        ],
        &[1, 2, 5, 10, 20, 40, 70, 100],
        rc,
        opts,
    );
    format!("Fig. 5 — effect of MPL on throughput under heavy locking (RR) vs light (UR)\n{t}")
}

/// §3.2: squared coefficients of variation of the intrinsic demands —
/// TPC-C ≈ 1–1.5, commercial traces ≈ 2, TPC-W ≈ 15.
pub fn c2_report() -> String {
    let mut rows = Vec::new();
    for w in workloads() {
        let io_cost = if w.name.contains("IO") { 0.005 } else { 0.0 };
        let (mean, c2) = w.intrinsic_demand_stats(io_cost);
        rows.push(vec![w.name.to_string(), ms(mean), f1(c2)]);
    }
    for w in [trace::retailer(), trace::auction()] {
        let (mean, c2) = w.intrinsic_demand_stats(0.0);
        rows.push(vec![w.name.to_string(), ms(mean), f1(c2)]);
    }
    format!(
        "§3.2 — demand variability (paper: TPC-C 1.0–1.5, traces ≈ 2, TPC-W ≈ 15)\n{}",
        table(&["workload", "mean demand ms", "C2"], &rows)
    )
}

/// The MPL grid of the open-system response-time experiment.
const RT_OPEN_MPLS: [u32; 6] = [2, 4, 8, 15, 30, 100];

/// The scenario grid behind [`rt_open_report`]: (workload × load × MPL)
/// open-load cells, the second workload 5× the run length of the first.
pub fn rt_open_scenarios(rc: &RunConfig) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for (label, id) in [
        ("W_CPU-inventory (C2~1)", 1u32),
        ("W_CPU-browsing (C2~15)", 3),
    ] {
        let rc = rc_for(id, rc);
        for load in [0.7, 0.9] {
            for &m in &RT_OPEN_MPLS {
                scenarios.push(Scenario {
                    row: format!("{label} load {load}"),
                    col: format!("MPL {m}"),
                    setup: setup(id),
                    exec: ExecSpec::Run {
                        mpl: MplSpec::Fixed(m),
                        policy: PolicyKind::Fifo,
                        arrivals: ArrivalSpec::OpenLoad(load),
                    },
                    rc: rc.clone(),
                });
            }
        }
    }
    scenarios
}

/// §3.2 (open system): mean response time vs. MPL at fixed load for a
/// low-variability (TPC-C) and a high-variability (TPC-W) workload.
pub fn rt_open_report(rc: &RunConfig, opts: &SweepOpts) -> String {
    let results = opts.run(rt_open_scenarios(rc));
    let cols: Vec<Col> = RT_OPEN_MPLS
        .iter()
        .map(|m| Col::new(format!("MPL {m}"), "mean_rt", format!("MPL {m} (ms)"), ms))
        .collect();
    format!(
        "§3.2 — open system (Poisson) mean response time vs MPL\n{}",
        pivot_table("workload", &results, &cols)
    )
}

/// Fig. 7: analytic throughput vs. MPL for 1–16 balanced disks, plus the
/// minimum MPLs for 80% and 95% of maximum throughput (the circles and
/// squares, which fall on straight lines).
pub fn fig7_report() -> String {
    let disk_counts = [1usize, 2, 3, 4, 8, 16];
    let mpls = [1u32, 2, 5, 10, 20, 40, 70, 100];
    let mut rows = Vec::new();
    for &d in &disk_counts {
        // Unit total demand, evenly striped: max throughput = d jobs/s.
        let net = ClosedNetwork::balanced(d, 1.0);
        let mut row = vec![format!("{d} disks")];
        for &m in &mpls {
            row.push(f2(net.throughput(m)));
        }
        // The paper's circles/squares use the *observed* maximum — the
        // throughput at the full client population (100) — as the 100%
        // mark; report those alongside the asymptotic-bound variant.
        let x100 = net.throughput(100);
        let against_observed = |frac: f64| -> u32 {
            (1..=100u32)
                .find(|&n| net.throughput(n) >= frac * x100)
                .unwrap_or(100)
        };
        row.push(against_observed(0.80).to_string());
        row.push(against_observed(0.95).to_string());
        let model = ThroughputModel::balanced(d);
        row.push(recommend::min_mpl_for_throughput(&model, 0.95).to_string());
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["model".to_string()];
    headers.extend(mpls.iter().map(|m| format!("X(MPL {m})")));
    headers.push("MPL@80% of X(100)".into());
    headers.push("MPL@95% of X(100)".into());
    headers.push("MPL@95% of bound".into());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "Fig. 7 — MVA analysis: throughput vs MPL by #disks (80%/95% loci are linear in #disks)\n{}",
        table(&headers_ref, &rows)
    )
}

/// Fig. 9: the continuous-time Markov chain of the flexible multiserver
/// queue with MPL = 2 — printed as its QBD generator blocks (the paper
/// draws the same transitions as a state diagram). Entries are rates; row
/// = source phase count `j` (in-service jobs in phase 1), column = target.
pub fn fig9_report() -> String {
    let h2 = H2::fit(1.0, 5.0);
    let fs = FlexServer::new(0.7, h2, 2);
    let (a0, a1, a2) = fs.repeating_blocks();
    let fmt_block = |name: &str, m: &xsched_queueing::Mat| -> String {
        let mut rows = Vec::new();
        for i in 0..m.rows() {
            let mut row = vec![format!("j={i}")];
            for j in 0..m.cols() {
                row.push(format!("{:+.3}", m[(i, j)]));
            }
            rows.push(row);
        }
        let mut headers = vec![name.to_string()];
        headers.extend((0..m.cols()).map(|j| format!("→ j={j}")));
        let hr: Vec<&str> = headers.iter().map(String::as_str).collect();
        table(&hr, &rows)
    };
    format!(
        "Fig. 9 — CTMC of the flexible multiserver queue (MPL = 2, H2 with C²=5, λ=0.7)\n\
         repeating QBD blocks for levels n ≥ 3 (λ = arrival, μ1 = {:.3}, μ2 = {:.3}, p = {:.3}):\n\n\
         {}\n{}\n{}\n\
         A0 = arrivals (level up), A1 = local (diagonal), A2 = departures with\n\
         head-of-line backfill (level down) — exactly the transition structure\n\
         the paper's Fig. 9 draws state by state.\n",
        h2.mu1,
        h2.mu2,
        h2.p,
        fmt_block("A0 (n -> n+1)", &a0),
        fmt_block("A1 (local)", &a1),
        fmt_block("A2 (n -> n-1)", &a2),
    )
}

/// Fig. 10: flexible-multiserver mean response time vs. MPL for
/// C² ∈ {{2, 5, 10, 15}} at loads 0.7 and 0.9, with the PS asymptote.
pub fn fig10_report() -> String {
    let mean_size = 0.1; // 100 ms mean service requirement
    let mpls = [1u32, 2, 5, 10, 15, 20, 25, 30, 35];
    let mut out = String::new();
    for load in [0.7, 0.9] {
        let lambda = load / mean_size;
        let ps = mg1::mg1_ps_response_time(lambda, mean_size);
        let mut rows = Vec::new();
        for c2 in [2.0, 5.0, 10.0, 15.0] {
            let h2 = H2::fit(mean_size, c2);
            let mut row = vec![format!("C2={c2}")];
            for &m in &mpls {
                let t = FlexServer::new(lambda, h2, m).mean_response_time();
                row.push(ms(t));
            }
            rows.push(row);
        }
        let mut ps_row = vec!["PS".to_string()];
        ps_row.extend(std::iter::repeat_n(ms(ps), mpls.len()));
        rows.push(ps_row);
        let mut headers: Vec<String> = vec!["job sizes".to_string()];
        headers.extend(mpls.iter().map(|m| format!("MPL {m} (ms)")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        out.push_str(&format!(
            "Fig. 10 — CTMC evaluation, load {load}: mean response time (ms) vs MPL\n{}\n",
            table(&headers_ref, &rows)
        ));
    }
    out
}

/// One controller-session scenario (§4.3) on setup `id`.
fn controller_scenario(
    row: impl Into<String>,
    col: impl Into<String>,
    id: u32,
    start: Option<u32>,
    rc: &RunConfig,
) -> Scenario {
    Scenario {
        row: row.into(),
        col: col.into(),
        setup: setup(id),
        exec: ExecSpec::Controller {
            targets: Targets::five_percent(),
            start,
        },
        rc: rc_for(id, rc),
    }
}

/// §4.3: controller sessions on a set of setups — jump-start value, final
/// MPL, iterations to convergence (paper: < 10 everywhere).
pub fn controller_report(rc: &RunConfig, ids: &[u32], opts: &SweepOpts) -> String {
    let scenarios: Vec<Scenario> = ids
        .iter()
        .map(|&id| controller_scenario(id.to_string(), "", id, None, rc))
        .collect();
    let results = opts.run(scenarios);
    format!(
        "§4.3 — controller convergence (5% targets)\n{}",
        pivot_table(
            "setup",
            &results,
            &[
                Col::metric("jumpstart_mpl", "jumpstart", f0),
                Col::metric("final_mpl", "final MPL", f0),
                Col::metric("iterations", "iterations", f1),
                Col::metric("converged", "converged (frac)", f2),
                Col::metric("reference_tput", "ref tput", f1),
            ],
        )
    )
}

/// Jump-start ablation: iterations to convergence starting from the
/// queueing-model value vs. cold-starting at MPL 1.
pub fn controller_ablation_report(rc: &RunConfig, ids: &[u32], opts: &SweepOpts) -> String {
    let scenarios: Vec<Scenario> = ids
        .iter()
        .flat_map(|&id| {
            [
                controller_scenario(id.to_string(), "jump", id, None, rc),
                controller_scenario(id.to_string(), "cold", id, Some(1), rc),
            ]
        })
        .collect();
    let results = opts.run(scenarios);
    format!(
        "Ablation — controller iterations: queueing jump-start vs cold start at MPL 1\n{}",
        pivot_table(
            "setup",
            &results,
            &[
                Col::new("jump", "jumpstart_mpl", "jumpstart MPL", f0),
                Col::new("jump", "iterations", "iters (jumpstart)", f1),
                Col::new("cold", "iterations", "iters (cold)", f1),
            ],
        )
    )
}

/// The chaos robustness rows: one `(label, spec)` per fault / traffic
/// shape. Shared by the report and the golden series snapshot so both
/// pin exactly the same sessions. All injectors wake at `onset`; the
/// traffic-side rows override think time so the closed population has
/// headroom to burst (a zero-think saturated system cannot arrive
/// faster).
pub fn chaos_specs(rc: &RunConfig) -> Vec<(&'static str, ChaosSpec)> {
    // Setup 1 runs ~150 txns/s, so the quick 8× session spans ~30
    // simulated seconds; the controller settles well inside 10 s, which
    // leaves a 15 s onset with a healthy post-onset observation span.
    let onset = 15.0;
    let session_txns = rc.measured_txns * 8;
    let base = ChaosSpec::quiet(onset, session_txns);
    vec![
        (
            "stall",
            ChaosSpec {
                faults: FaultSpec {
                    stall: Some(StallSpec {
                        p_per_lock: 0.02,
                        mean_secs: 2.0,
                    }),
                    ..Default::default()
                },
                ..base.clone()
            },
        ),
        (
            "disk_spike",
            ChaosSpec {
                faults: FaultSpec {
                    disk_spike: Some(SpikeSpec {
                        mean_on: 5.0,
                        mean_off: 10.0,
                        factor: 8.0,
                    }),
                    ..Default::default()
                },
                ..base.clone()
            },
        ),
        (
            "abort_storm",
            ChaosSpec {
                faults: FaultSpec {
                    abort_rate: 5.0,
                    ..Default::default()
                },
                ..base.clone()
            },
        ),
        (
            "burst",
            ChaosSpec {
                burst: Some(BurstSpec {
                    mean_on: 5.0,
                    mean_off: 5.0,
                    factor: 4.0,
                }),
                think: Some(Dist::exp(0.2)),
                ..base.clone()
            },
        ),
        (
            "flash_crowd",
            ChaosSpec {
                flash: Some(FlashSpec {
                    surge_mult: 8.0,
                    ramp_secs: 20.0,
                }),
                think: Some(Dist::exp(0.5)),
                ..base
            },
        ),
    ]
}

/// Robustness suite: controller sessions on setup 1 perturbed by each
/// chaos injector at its onset — reaction time (windows until the
/// controller re-settles), overshoot (peak MPL excursion past the new
/// fixed point), and the discarded-window count per fault type.
pub fn chaos_report(rc: &RunConfig, opts: &SweepOpts) -> String {
    let scenarios: Vec<Scenario> = chaos_specs(rc)
        .into_iter()
        .map(|(label, chaos)| Scenario {
            row: label.to_string(),
            col: String::new(),
            setup: setup(1),
            exec: ExecSpec::Chaos {
                chaos,
                targets: Targets::twenty_percent(),
                start: None,
            },
            rc: rc.clone(),
        })
        .collect();
    let results = opts.run(scenarios);
    format!(
        "Robustness — controller under chaos (setup 1, 20% targets, onset 15 s)\n{}",
        pivot_table(
            "fault",
            &results,
            &[
                Col::metric("reaction_windows", "reaction (win)", f1),
                Col::metric("post_onset_windows", "post-onset win", f1),
                Col::metric("overshoot", "overshoot", f1),
                Col::metric("peak_mpl", "peak MPL", f1),
                Col::metric("final_mpl", "final MPL", f1),
                Col::metric("discarded_windows", "discarded", f1),
                Col::metric("converged", "converged (frac)", f2),
            ],
        )
    )
}

/// Fig. 11: external prioritization across all 17 setups at a given
/// throughput-loss budget (0.05 for the top plot, 0.20 for the bottom).
pub fn fig11_report(rc: &RunConfig, loss: f64, opts: &SweepOpts) -> String {
    let scenarios: Vec<Scenario> = setup_ids()
        .map(|id| Scenario {
            row: id.to_string(),
            col: String::new(),
            setup: setup(id),
            exec: ExecSpec::PriorityAtLoss { loss },
            rc: rc_for(id, rc),
        })
        .collect();
    let results = opts.run(scenarios);

    let diffs: Vec<f64> = results.iter().map(|r| r.mean("differentiation")).collect();
    let penalties: Vec<f64> = results.iter().map(|r| r.mean("low_penalty")).collect();
    let gmean = |v: &[f64]| -> f64 {
        (v.iter().map(|x| x.max(1e-9).ln()).sum::<f64>() / v.len() as f64).exp()
    };
    format!(
        "Fig. 11 — external prioritization, {}% throughput-loss budget\n{}\nmean differentiation (geo): {:.1}x   mean low-priority penalty: {:.2}x\n",
        (loss * 100.0) as u32,
        pivot_table(
            "setup",
            &results,
            &[
                Col::metric("mpl", "MPL", f0),
                Col::metric("rt_high", "high RT s", f2),
                Col::metric("rt_low", "low RT s", f2),
                Col::metric("rt_noprio", "no-prio RT s", f2),
                Col::metric("mean_rt", "overall RT s", f2),
                Col::metric("differentiation", "low/high", f1),
                Col::metric("low_penalty", "low/noprio", f2),
            ],
        ),
        gmean(&diffs),
        penalties.iter().sum::<f64>() / penalties.len() as f64,
    )
}

/// One internal-vs-external comparison row set (Figs. 12–13 bars): the
/// DBMS-internal policy with no external limit, then external two-class
/// priority at three throughput-loss budgets.
fn internal_vs_external(
    internal_setup: Setup,
    internal_label: &str,
    rc: &RunConfig,
    opts: &SweepOpts,
) -> String {
    let id = internal_setup.id;
    let rc = rc_for(id, rc);
    let mut scenarios = vec![Scenario {
        row: internal_label.to_string(),
        col: String::new(),
        setup: internal_setup,
        exec: ExecSpec::Run {
            mpl: MplSpec::Unlimited,
            policy: PolicyKind::Fifo,
            arrivals: ArrivalSpec::Saturated,
        },
        rc: rc.clone(),
    }];
    // Resolve each loss budget's MPL once (deterministic in (setup, rc))
    // rather than per replication: repeating the search per seed would
    // cost ~10 extra simulations per cell and could average runs resolved
    // to different MPLs into one row.
    let tuner = xsched_core::Driver::new(setup(id)).with_config(rc.clone());
    scenarios.extend(
        [("ext95", 0.05), ("ext80", 0.20), ("ext100", 0.01)].map(|(label, loss)| Scenario {
            row: label.to_string(),
            col: String::new(),
            setup: setup(id),
            exec: ExecSpec::Run {
                mpl: MplSpec::Fixed(tuner.find_mpl_for_loss(loss).0),
                policy: PolicyKind::Priority,
                arrivals: ArrivalSpec::Saturated,
            },
            rc: rc.clone(),
        }),
    );
    let results = opts.run(scenarios);
    pivot_table(
        "scheme",
        &results,
        &[
            Col::metric("mpl", "MPL", f0),
            Col::metric("rt_high", "high RT s", f2),
            Col::metric("rt_low", "low RT s", f2),
            Col::metric("mean_rt", "mean RT s", f2),
            Col::metric("throughput", "tput", f1),
        ],
    )
}

/// Fig. 12: internal lock-queue prioritization (POW) vs external
/// scheduling on the lock-bound setup 1.
pub fn fig12_report(rc: &RunConfig, opts: &SweepOpts) -> String {
    let t = internal_vs_external(
        setup(1).map_cfg(|c| c.lock_policy = LockPriorityPolicy::PreemptOnWait),
        "internal (POW locks)",
        rc,
        opts,
    );
    format!("Fig. 12 — internal (POW) vs external prioritization, setup 1 (lock-bound)\n{t}")
}

/// Fig. 13: internal CPU prioritization (renice) vs external scheduling on
/// the CPU-bound setup 3.
pub fn fig13_report(rc: &RunConfig, opts: &SweepOpts) -> String {
    let t = internal_vs_external(
        setup(3).map_cfg(|c| c.cpu_policy = CpuPolicy::PrioritizeHigh),
        "internal (CPU prio)",
        rc,
        opts,
    );
    format!("Fig. 13 — internal (CPU) vs external prioritization, setup 3 (CPU-bound)\n{t}")
}

/// Ablation: external queue policies at the 5%-loss MPL — FIFO vs
/// two-class priority vs SJF (mean and per-class response times).
pub fn policy_ablation_report(rc: &RunConfig, opts: &SweepOpts) -> String {
    // The MPL search is deterministic in (setup, rc), so resolve it once
    // and pin the scenarios to the result instead of paying the
    // exponential+binary search in every policy × replication cell.
    let (mpl, _) = xsched_core::Driver::new(setup(1))
        .with_config(rc.clone())
        .find_mpl_for_loss(0.05);
    let scenarios: Vec<Scenario> = [
        ("FIFO", PolicyKind::Fifo),
        ("Priority", PolicyKind::Priority),
        ("SJF", PolicyKind::Sjf),
    ]
    .map(|(label, kind)| Scenario {
        row: label.to_string(),
        col: String::new(),
        setup: setup(1),
        exec: ExecSpec::Run {
            mpl: MplSpec::Fixed(mpl),
            policy: kind,
            arrivals: ArrivalSpec::Saturated,
        },
        rc: rc.clone(),
    })
    .into();
    let results = opts.run(scenarios);
    format!(
        "Ablation — external queue policies at the 5%-loss MPL ({mpl}) on setup 1\n{}",
        pivot_table(
            "policy",
            &results,
            &[
                Col::metric("mean_rt", "mean RT s", f2),
                Col::metric("rt_high", "high RT s", f2),
                Col::metric("rt_low", "low RT s", f2),
                Col::metric("p95_rt", "p95 RT s", f2),
                Col::metric("throughput", "tput", f1),
            ],
        )
    )
}

/// Ablation over the DBMS substrate features: group commit, asynchronous
/// dirty-page write-back, and deadlock timeout vs detection — all on the
/// lock-bound setup 1 at a fixed moderate MPL.
pub fn dbms_ablation_report(rc: &RunConfig, opts: &SweepOpts) -> String {
    use xsched_dbms::DeadlockStrategy;
    let mpl = 10;
    let variants: Vec<(&str, Setup)> = vec![
        ("baseline", setup(1)),
        ("group commit", setup(1).map_cfg(|c| c.group_commit = true)),
        (
            // 5% of touched pages ≈ 0.7 disk utilization at this
            // throughput; higher fractions would saturate the single
            // data disk with background writes.
            "writeback 5%",
            setup(1).map_cfg(|c| c.writeback_fraction = 0.05),
        ),
        (
            "lock timeout 0.5s",
            setup(1).map_cfg(|c| c.deadlock = DeadlockStrategy::Timeout { timeout: 0.5 }),
        ),
    ];
    let scenarios: Vec<Scenario> = variants
        .into_iter()
        .map(|(label, st)| Scenario {
            row: label.to_string(),
            col: String::new(),
            setup: st,
            exec: ExecSpec::Run {
                mpl: MplSpec::Fixed(mpl),
                policy: PolicyKind::Fifo,
                arrivals: ArrivalSpec::Saturated,
            },
            rc: rc.clone(),
        })
        .collect();
    let results = opts.run(scenarios);
    format!(
        "Ablation — DBMS substrate features (setup 1, MPL {mpl})\n{}",
        pivot_table(
            "variant",
            &results,
            &[
                Col::metric("throughput", "tput", f1),
                Col::metric("mean_rt", "mean RT s", f2),
                Col::metric("aborts_per_txn", "aborts/txn", f3),
                Col::metric("log_util", "log util", f2),
                Col::metric("disk_util", "disk util", f2),
            ],
        )
    )
}

/// QBD-vs-truncated-chain cross-check (accuracy of the matrix-geometric
/// solver against an exact finite solve).
pub fn qbd_crosscheck_report() -> String {
    let mut rows = Vec::new();
    for (c2, rho, mpl) in [(2.0, 0.7, 5u32), (15.0, 0.7, 10), (15.0, 0.9, 30)] {
        let h2 = H2::fit(0.1, c2);
        let lambda = rho / 0.1;
        let fs = FlexServer::new(lambda, h2, mpl);
        let qbd = fs.solve();
        let tr = xsched_queueing::ctmc::solve_truncated(&fs, 2_000);
        rows.push(vec![
            format!("C2={c2} rho={rho} MPL={mpl}"),
            ms(qbd.mean_response_time),
            ms(tr.mean_response_time),
            format!(
                "{:.2e}",
                (qbd.mean_response_time - tr.mean_response_time).abs() / tr.mean_response_time
            ),
            qbd.r_iterations.to_string(),
        ]);
    }
    format!(
        "Cross-check — matrix-geometric vs truncated chain\n{}",
        table(
            &["case", "QBD ms", "truncated ms", "rel err", "R iters"],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_reports_render() {
        for r in [
            table1_report(),
            table2_report(),
            c2_report(),
            fig7_report(),
            fig10_report(),
            qbd_crosscheck_report(),
        ] {
            assert!(r.lines().count() >= 4, "report too short:\n{r}");
        }
    }

    #[test]
    fn fig7_loci_are_linear_in_disks() {
        // Closed-form: min MPL for fraction f with K balanced stations is
        // ceil(f (K-1)/(1-f)) — check the computed squares follow it.
        for d in [2usize, 4, 8, 16] {
            let model = ThroughputModel::balanced(d);
            let m95 = recommend::min_mpl_for_throughput(&model, 0.95);
            let want = ((0.95 * (d as f64 - 1.0)) / 0.05).ceil() as u32;
            assert_eq!(m95, want, "{d} disks");
        }
    }

    #[test]
    fn fig10_high_c2_curves_decay_toward_ps() {
        let h2 = H2::fit(0.1, 15.0);
        let lambda = 7.0;
        let ps = mg1::mg1_ps_response_time(lambda, 0.1);
        let t1 = FlexServer::new(lambda, h2, 1).mean_response_time();
        let t35 = FlexServer::new(lambda, h2, 35).mean_response_time();
        assert!(t1 > 3.0 * ps, "FIFO-like end is far above PS");
        assert!((t35 - ps) / ps < 0.10, "MPL 35 is near PS");
    }

    #[test]
    fn quick_sim_reports_render() {
        let rc = RunConfig {
            warmup_txns: 50,
            measured_txns: 300,
            ..Default::default()
        };
        let opts = SweepOpts::default();
        let (r, curves) = throughput_curves(&[("s1", 1)], &[1, 5], &rc, &opts);
        assert!(r.contains("MPL"));
        assert_eq!(curves.len(), 1);
        assert_eq!(curves[0].len(), 2);
        assert!(curves[0][1] > curves[0][0], "MPL 5 beats MPL 1");
    }

    #[test]
    fn replicated_sweep_reports_confidence_intervals() {
        let rc = RunConfig {
            warmup_txns: 30,
            measured_txns: 150,
            ..Default::default()
        };
        let opts = SweepOpts {
            seeds: vec![42, 43, 44],
            threads: 0,
            ..Default::default()
        };
        let (r, _) = throughput_curves(&[("s1", 1)], &[5], &rc, &opts);
        assert!(r.contains('±'), "replicated table must carry CIs:\n{r}");
    }
}
