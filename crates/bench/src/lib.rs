#![warn(missing_docs)]
//! Benchmark harness regenerating every table and figure of the paper.
//!
//! [`experiments`] holds one function per table/figure; each returns a
//! plain-text report (the same rows/series the paper plots) so the
//! `figures` binary can print them and the integration tests can assert on
//! the underlying numbers. [`fmt`] has the small table/series formatters.
//!
//! Run `cargo run --release -p xsched-bench --bin figures -- all` to
//! regenerate everything (takes a few minutes), or name an individual
//! experiment (`fig2`, `fig7`, `fig11`, ...).

pub mod experiments;
pub mod fmt;

pub use experiments::*;
