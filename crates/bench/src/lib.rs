#![warn(missing_docs)]
//! Benchmark harness regenerating every table and figure of the paper.
//!
//! [`experiments`] holds one function per table/figure; each builds a
//! `SweepPlan` of scenario literals, executes it on all cores, and renders
//! a plain-text report through the shared [`table`] pivot builder (the
//! same rows/series the paper plots, with 95% confidence intervals when
//! replications are configured) so the `figures` binary can print them
//! and the integration tests can assert on the underlying numbers.
//! [`fmt`] has the low-level text-table formatters, [`cli`] the argument
//! parser for the `figures` binary.
//!
//! Run `cargo run --release -p xsched-bench --bin figures -- all` to
//! regenerate everything (takes a few minutes), or name individual
//! experiments (`fig2`, `fig7`, `fig11`, ...). `--quick` shortens runs,
//! `--replications 5` adds error bars, `--threads N` caps the worker
//! pool, and `--shard i/n` / `--merge files` split a sweep across
//! processes or hosts and reassemble it byte-identically (see
//! [`experiments::SweepMode`]).

pub mod cli;
pub mod experiments;
pub mod fmt;
pub mod table;

pub use experiments::*;
